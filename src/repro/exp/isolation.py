"""Inter-VM isolation experiment (footnote 1 of the paper).

"Partitioning of I/O pools ensures inter-VM isolation at hardware I/O
level."  The scenario: every VM *declares* a nominal I/O load and the
servers are dimensioned from those declarations; a *rogue* VM then
violates its contract, releasing jobs far beyond what it declared.
The victim VM keeps its declared behaviour.  Measured: victim deadline
misses as the rogue's actual rate grows.

Two service disciplines face the same arrival sequences:

* **I/O-GUARD R-channel** -- per-VM pools + budgeted EDF (G-Sched):
  the rogue can consume its own budget and otherwise-idle background
  slots, never the victim's budget; victim misses stay at zero at any
  rogue intensity.
* **Shared FIFO** (the baseline hardware structure) -- all requests
  interleave in arrival order; the victim's waits grow with the
  rogue's rate until its deadlines collapse.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.servers import minimum_budget
from repro.core.gsched import ServerSpec
from repro.core.manager import DegradationPolicy, QuarantineEvent, VirtualizationManager
from repro.core.priority_queue import FIFOQueue, PriorityQueue, QueueFullError
from repro.core.rchannel import RChannel
from repro.exp.reporting import render_table
from repro.faults.injectors import FaultController
from repro.faults.plan import FaultPlan, generate_fault_plan
from repro.faults.trace import FaultTrace
from repro.hw.devices import IODevice
from repro.metrics.backpressure import BackPressureReport
from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask, Job
from repro.tasks.taskset import TaskSet

VICTIM_VM = 0
ROGUE_VM = 1

#: Server period used for dimensioning (slots).
SERVER_PERIOD = 50


@dataclass
class IsolationResult:
    """Victim misses per discipline, per rogue intensity."""

    rogue_factors: List[float]
    #: discipline -> victim miss counts aligned with rogue_factors.
    victim_misses: Dict[str, List[int]]
    victim_jobs: int
    servers: List[Tuple[int, int, int]]  # (vm, pi, theta)

    def miss_curve(self, discipline: str) -> List[int]:
        return self.victim_misses[discipline]


def declared_tasks() -> TaskSet:
    """What both VMs promise: victim safety traffic + rogue nominal load."""
    return TaskSet(
        [
            IOTask(
                name="victim.brake", period=200, wcet=6, vm_id=VICTIM_VM,
                criticality=Criticality.SAFETY, payload_bytes=16,
            ),
            IOTask(
                name="victim.steer", period=500, wcet=15, vm_id=VICTIM_VM,
                criticality=Criticality.SAFETY, payload_bytes=32,
            ),
            IOTask(
                name="victim.watchdog", period=400, wcet=4, vm_id=VICTIM_VM,
                criticality=Criticality.SAFETY, payload_bytes=8,
            ),
            IOTask(
                name="rogue.nominal", period=250, wcet=25, vm_id=ROGUE_VM,
                criticality=Criticality.SYNTHETIC, payload_bytes=64,
            ),
        ],
        name="isolation.declared",
    )


def dimension_servers(declared: TaskSet) -> List[ServerSpec]:
    """Theorem-4-minimal budgets from the *declared* loads."""
    specs = []
    for vm_id, tasks in sorted(declared.by_vm().items()):
        theta = minimum_budget(SERVER_PERIOD, tasks)
        if theta is None:
            raise ValueError(
                f"declared load of VM {vm_id} is not servable at "
                f"Pi={SERVER_PERIOD}"
            )
        specs.append(ServerSpec(vm_id, SERVER_PERIOD, theta))
    return specs


def _releases(
    declared: TaskSet, rogue_factor: float, horizon: int, rng: RandomSource
):
    """Arrival sequence: declared releases + the rogue's excess flood.

    The rogue's *actual* inter-release separation is its declared period
    divided by ``rogue_factor`` -- a contract violation once the factor
    exceeds 1.
    """
    events = []
    for task in declared:
        period = task.period
        if task.vm_id == ROGUE_VM and rogue_factor > 1.0:
            period = max(1, int(round(task.period / rogue_factor)))
        phase = rng.randint(0, task.period - 1)
        index = 0
        release = phase
        while release < horizon:
            events.append((release, task, index))
            index += 1
            release = phase + index * period
    events.sort(key=lambda entry: entry[0])
    return events


def _run_ioguard(declared, servers, events, horizon):
    """Budgeted-EDF pools: the real R-channel, rogue pool included."""
    channel = RChannel(servers, pool_capacity=4096)
    cursor = 0
    victim_misses = 0
    for slot in range(horizon):
        while cursor < len(events) and events[cursor][0] <= slot:
            _r, task, index = events[cursor]
            channel.submit(task.job(release=events[cursor][0], index=index))
            cursor += 1
        channel.tick(slot)
        done = channel.execute_slot(slot)
        if (
            done is not None
            and done.task.vm_id == VICTIM_VM
            and slot + 1 > done.absolute_deadline
        ):
            victim_misses += 1
    # Victim jobs stuck in the pool past their deadlines also missed.
    for job in channel.pools[VICTIM_VM].queue.jobs():
        if job.absolute_deadline <= horizon:
            victim_misses += 1
    return victim_misses


def _run_fifo(events, horizon):
    """Single shared FIFO served one slot of work per slot."""
    queue = FIFOQueue(capacity=100_000)
    cursor = 0
    victim_misses = 0
    current = None
    for slot in range(horizon):
        while cursor < len(events) and events[cursor][0] <= slot:
            _r, task, index = events[cursor]
            queue.insert(task.job(release=events[cursor][0], index=index))
            cursor += 1
        if current is None and queue:
            current = queue.pop()
        if current is not None:
            current.execute(1)
            if current.remaining == 0:
                if (
                    current.task.vm_id == VICTIM_VM
                    and slot + 1 > current.absolute_deadline
                ):
                    victim_misses += 1
                current = None
    # Victim jobs still queued past their deadlines missed too.
    for job in queue.jobs():
        if job.task.vm_id == VICTIM_VM and job.absolute_deadline <= horizon:
            victim_misses += 1
    if (
        current is not None
        and current.task.vm_id == VICTIM_VM
        and current.absolute_deadline <= horizon
    ):
        victim_misses += 1
    return victim_misses


def run_isolation(
    *,
    rogue_factors=(1.0, 4.0, 8.0, 16.0),
    horizon_slots: int = 20_000,
    seed: int = 99,
) -> IsolationResult:
    """Sweep the rogue's contract violation; count victim misses."""
    declared = declared_tasks()
    servers = dimension_servers(declared)
    misses: Dict[str, List[int]] = {"ioguard-rchannel": [], "shared-fifo": []}
    victim_jobs = 0
    for factor in rogue_factors:
        if factor < 1.0:
            raise ValueError(
                f"rogue factor must be >= 1 (1 = contract kept), got {factor}"
            )
        rng = RandomSource(seed, f"iso{factor}")
        events = _releases(declared, factor, horizon_slots, rng)
        victim_jobs = sum(
            1
            for release, task, _i in events
            if task.vm_id == VICTIM_VM
            and release + task.deadline <= horizon_slots
        )
        misses["ioguard-rchannel"].append(
            _run_ioguard(declared, servers, events, horizon_slots)
        )
        misses["shared-fifo"].append(_run_fifo(events, horizon_slots))
    return IsolationResult(
        rogue_factors=list(rogue_factors),
        victim_misses=misses,
        victim_jobs=victim_jobs,
        servers=[(s.vm_id, s.pi, s.theta) for s in servers],
    )


# ---------------------------------------------------------------------------
# Fault-plan-driven isolation (the robustness layer's headline scenario)
# ---------------------------------------------------------------------------

#: Disciplines facing the fault plan.  ``ioguard`` is the R-channel with
#: containment (per-VM pools, budgeted EDF, quarantine policy);
#: ``rtxen-edf`` is RT-XEN-style software EDF over one shared queue (no
#: per-VM budgets, no containment); ``shared-fifo`` is the BV/Legacy
#: shared FIFO hardware structure.
FAULT_DISCIPLINES = ("ioguard", "rtxen-edf", "shared-fifo")

#: Hardware pool size per VM under I/O-GUARD, and the shared-queue size
#: the baselines get (same total buffering: 2 VMs x 64).
FAULT_POOL_CAPACITY = 64
FAULT_SHARED_CAPACITY = 128

_STALL_LIMIT = 3
_REJECT_LIMIT = 40


@dataclass
class FaultIsolationResult:
    """Outcome of one fault plan applied to every discipline."""

    plan: FaultPlan
    horizon_slots: int
    victim_jobs: int
    #: discipline -> victim deadline misses (late, rejected, or stranded).
    victim_misses: Dict[str, int]
    #: discipline -> SHA-256 over the completion/burn event stream.
    sim_trace_digests: Dict[str, str]
    fault_trace_jsonl: str
    fault_trace_digest: str
    backpressure: BackPressureReport
    quarantine_log: List[QuarantineEvent]
    storm_jobs: int
    storm_rejected: Dict[str, int] = field(default_factory=dict)
    blocked_slots: Dict[str, int] = field(default_factory=dict)


def fault_declared_tasks() -> TaskSet:
    """Declared loads with explicit device routing.

    The victim's safety traffic runs over the healthy ``eth0``; the
    rogue's nominal task polls ``sens1`` -- the device the fault plan
    stalls -- so a wedged sensor plus a babbling-idiot flood both
    originate on the rogue side of the partition.
    """
    declared = declared_tasks()
    tasks = []
    for task in declared:
        clone = task.renamed(task.name)
        clone.device = "eth0" if task.vm_id == VICTIM_VM else "sens1"
        tasks.append(clone)
    return TaskSet(tasks, name="isolation.faults.declared")


def build_isolation_fault_plan(seed: int, horizon_slots: int) -> FaultPlan:
    """The scenario's seed-derived plan: stall ``sens1``, storm the rogue."""
    return generate_fault_plan(
        seed,
        horizon_slots=horizon_slots,
        devices=("sens1",),
        storm_vms=(ROGUE_VM,),
        storm_jobs_per_slot=4,
        storm_device="sens1",
        name="isolation.faults",
    )


def _digest_lines(lines: List[str]) -> str:
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def _victim_miss(job: Job, horizon: int) -> bool:
    """A victim job whose deadline fell inside the horizon missed it."""
    return job.task.vm_id == VICTIM_VM and job.absolute_deadline <= horizon


def _run_ioguard_faults(servers, events, plan, horizon, obs_trace=None):
    """I/O-GUARD with containment: guarded executor + quarantine policy.

    ``obs_trace`` optionally attaches a
    :class:`~repro.sim.trace.TraceRecorder` to the manager so the run
    emits scheduler/pool observability events; ``None`` (the default)
    keeps the run on the untraced fast path, byte-identical to before.
    """
    trace = FaultTrace()
    devices = {
        "eth0": IODevice("eth0", service_cycles=100),
        "sens1": IODevice("sens1", service_cycles=100),
    }
    controller = FaultController(plan, devices=devices, trace=trace)
    policy = DegradationPolicy(
        stall_limit=_STALL_LIMIT, reject_limit=_REJECT_LIMIT
    )
    manager = VirtualizationManager(
        "io",
        TaskSet([], name="isolation.faults.predefined"),
        servers,
        pool_capacity=FAULT_POOL_CAPACITY,
        degradation=policy,
        trace=obs_trace,
    )
    sim_lines: List[str] = []
    quarantines_seen = 0

    def sync_quarantines() -> None:
        nonlocal quarantines_seen
        while quarantines_seen < len(policy.log):
            event = policy.log[quarantines_seen]
            trace.record(
                event.slot,
                "containment",
                event.target,
                f"quarantine-{event.category}",
                reason=event.reason,
            )
            quarantines_seen += 1

    def guard(job: Job, slot: int) -> bool:
        device = devices.get(job.task.device)
        if device is not None and device.stalled:
            trace.record(
                slot, "device-stall", job.task.device, "timeout", job=job.name
            )
            manager.report_device_stall(job.task.device, slot)
            sync_quarantines()
            sim_lines.append(f"{slot},burn,{job.name}")
            return False
        manager.report_device_service(job.task.device)
        return True

    victim_misses = 0
    storm_rejected = 0
    cursor = 0
    for slot in range(horizon):
        storm_jobs = controller.on_slot(slot)
        while cursor < len(events) and events[cursor][0] <= slot:
            _release, task, index = events[cursor]
            job = task.job(release=events[cursor][0], index=index)
            if not manager.submit(job, slot=slot) and _victim_miss(job, horizon):
                victim_misses += 1
            sync_quarantines()
            cursor += 1
        for job in storm_jobs:
            if not manager.submit(job, slot=slot):
                storm_rejected += 1
                trace.record(
                    slot, "queue-storm", f"vm{job.task.vm_id}", "reject",
                    job=job.name,
                )
            sync_quarantines()
        done = manager.execute_slot(slot, guard=guard)
        if done is not None:
            late = slot + 1 > done.absolute_deadline
            sim_lines.append(
                f"{slot},complete,{done.name},{'late' if late else 'ok'}"
            )
            if done.task.vm_id == VICTIM_VM and late:
                victim_misses += 1
    for job in manager.rchannel.pools[VICTIM_VM].queue.jobs():
        if _victim_miss(job, horizon):
            victim_misses += 1
    return {
        "victim_misses": victim_misses,
        "storm_rejected": storm_rejected,
        "blocked_slots": manager.rchannel.blocked_slots,
        "sim_digest": _digest_lines(sim_lines),
        "trace": trace,
        "backpressure": BackPressureReport.from_rchannel(manager.rchannel),
        "quarantine_log": list(policy.log),
    }


def _run_shared_queue_faults(queue_factory, events, plan, horizon):
    """A baseline without per-VM pools or containment.

    One shared queue; the head-of-queue job executes one slot at a time.
    A stalled device *wedges* the head (no timeout/quarantine), and the
    storm competes with the victim for the shared buffer -- the two
    failure modes I/O-GUARD's partitioning removes.
    """
    devices = {
        "eth0": IODevice("eth0", service_cycles=100),
        "sens1": IODevice("sens1", service_cycles=100),
    }
    controller = FaultController(plan, devices=devices, trace=FaultTrace())
    queue = queue_factory()
    sim_lines: List[str] = []
    victim_misses = 0
    storm_rejected = 0
    blocked = 0
    cursor = 0

    def offer(job: Job) -> bool:
        try:
            queue.insert(job)
        except QueueFullError:
            return False
        return True

    for slot in range(horizon):
        storm_jobs = controller.on_slot(slot)
        while cursor < len(events) and events[cursor][0] <= slot:
            _release, task, index = events[cursor]
            job = task.job(release=events[cursor][0], index=index)
            if not offer(job) and _victim_miss(job, horizon):
                victim_misses += 1
            cursor += 1
        for job in storm_jobs:
            if not offer(job):
                storm_rejected += 1
        job = queue.peek()
        if job is None:
            continue
        device = devices.get(job.task.device)
        if device is not None and device.stalled:
            # No guarded path: the head blocks and the slot is lost.
            blocked += 1
            sim_lines.append(f"{slot},burn,{job.name}")
            continue
        job.execute(1)
        if job.remaining == 0:
            if isinstance(queue, FIFOQueue):
                queue.pop()
            else:
                queue.remove(job)
            late = slot + 1 > job.absolute_deadline
            sim_lines.append(
                f"{slot},complete,{job.name},{'late' if late else 'ok'}"
            )
            if job.task.vm_id == VICTIM_VM and late:
                victim_misses += 1
    for job in queue.jobs():
        if _victim_miss(job, horizon):
            victim_misses += 1
    return {
        "victim_misses": victim_misses,
        "storm_rejected": storm_rejected,
        "blocked_slots": blocked,
        "sim_digest": _digest_lines(sim_lines),
    }


def run_fault_isolation(
    *,
    seed: int = 2021,
    horizon_slots: int = 8_000,
    plan: Optional[FaultPlan] = None,
    obs_trace=None,
) -> FaultIsolationResult:
    """Apply one seeded fault plan to I/O-GUARD and the baselines.

    The same arrival sequence and the same fault plan hit every
    discipline; only the hardware structure and the containment differ.
    Determinism contract: identical ``(seed, plan)`` yields identical
    fault-trace and per-discipline simulation-trace digests.

    ``obs_trace`` (a :class:`~repro.sim.trace.TraceRecorder`) attaches
    observability instrumentation to the I/O-GUARD run only -- the
    baselines model hardware without tracing taps.  Tracing never
    perturbs the run: results with and without it are identical.
    """
    declared = fault_declared_tasks()
    servers = dimension_servers(declared)
    if plan is None:
        plan = build_isolation_fault_plan(seed, horizon_slots)
    rng = RandomSource(seed, "isolation.faults.releases")
    events = _releases(declared, 1.0, horizon_slots, rng)
    victim_jobs = sum(
        1
        for release, task, _i in events
        if task.vm_id == VICTIM_VM and release + task.deadline <= horizon_slots
    )
    storm_jobs = sum(
        fault.jobs_per_slot * fault.window.duration_slots
        for fault in plan.storms
    )

    ioguard = _run_ioguard_faults(
        servers, events, plan, horizon_slots, obs_trace=obs_trace
    )
    rtxen = _run_shared_queue_faults(
        lambda: PriorityQueue(capacity=FAULT_SHARED_CAPACITY, name="rtxen.q"),
        events, plan, horizon_slots,
    )
    fifo = _run_shared_queue_faults(
        lambda: FIFOQueue(capacity=FAULT_SHARED_CAPACITY, name="fifo.q"),
        events, plan, horizon_slots,
    )
    runs = {"ioguard": ioguard, "rtxen-edf": rtxen, "shared-fifo": fifo}
    trace: FaultTrace = ioguard["trace"]
    return FaultIsolationResult(
        plan=plan,
        horizon_slots=horizon_slots,
        victim_jobs=victim_jobs,
        victim_misses={d: runs[d]["victim_misses"] for d in FAULT_DISCIPLINES},
        sim_trace_digests={d: runs[d]["sim_digest"] for d in FAULT_DISCIPLINES},
        fault_trace_jsonl=trace.to_jsonl(),
        fault_trace_digest=trace.digest(),
        backpressure=ioguard["backpressure"],
        quarantine_log=ioguard["quarantine_log"],
        storm_jobs=storm_jobs,
        storm_rejected={d: runs[d]["storm_rejected"] for d in FAULT_DISCIPLINES},
        blocked_slots={d: runs[d]["blocked_slots"] for d in FAULT_DISCIPLINES},
    )


def render_fault_isolation(result: FaultIsolationResult) -> str:
    rows = [
        (
            discipline,
            result.victim_misses[discipline],
            result.storm_rejected[discipline],
            result.blocked_slots[discipline],
            result.sim_trace_digests[discipline][:12],
        )
        for discipline in FAULT_DISCIPLINES
    ]
    table = render_table(
        ["discipline", "victim misses", "storm rejects", "burned slots",
         "sim digest"],
        rows,
        title=(
            f"Victim-VM deadline misses under fault plan "
            f"{result.plan.digest()[:12]} ({len(result.plan)} faults, "
            f"{result.storm_jobs} storm jobs, {result.victim_jobs} victim "
            f"jobs, horizon {result.horizon_slots})"
        ),
    )
    lines = [table, ""]
    lines.append(f"fault plan digest:  {result.plan.digest()}")
    lines.append(f"fault trace digest: {result.fault_trace_digest}")
    for event in result.quarantine_log:
        lines.append(
            f"quarantine @{event.slot}: {event.category} {event.target} "
            f"({event.reason})"
        )
    for pressure in result.backpressure.pools:
        lines.append(
            f"pool vm{pressure.vm_id}: submitted={pressure.submitted} "
            f"rejected={pressure.rejected} dropped={pressure.dropped} "
            f"peak={pressure.peak_occupancy}/{pressure.capacity} "
            f"max_streak={pressure.max_reject_streak}"
        )
    return "\n".join(lines)


def render_isolation(result: IsolationResult) -> str:
    rows = [
        (discipline, *result.victim_misses[discipline])
        for discipline in sorted(result.victim_misses)
    ]
    headers = ["discipline"] + [f"rogue x{f:g}" for f in result.rogue_factors]
    table = render_table(
        headers,
        rows,
        title=(
            "Victim-VM deadline misses under a contract-violating rogue "
            f"({result.victim_jobs} victim jobs per cell; servers "
            f"{result.servers})"
        ),
    )
    return table
