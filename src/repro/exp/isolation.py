"""Inter-VM isolation experiment (footnote 1 of the paper).

"Partitioning of I/O pools ensures inter-VM isolation at hardware I/O
level."  The scenario: every VM *declares* a nominal I/O load and the
servers are dimensioned from those declarations; a *rogue* VM then
violates its contract, releasing jobs far beyond what it declared.
The victim VM keeps its declared behaviour.  Measured: victim deadline
misses as the rogue's actual rate grows.

Two service disciplines face the same arrival sequences:

* **I/O-GUARD R-channel** -- per-VM pools + budgeted EDF (G-Sched):
  the rogue can consume its own budget and otherwise-idle background
  slots, never the victim's budget; victim misses stay at zero at any
  rogue intensity.
* **Shared FIFO** (the baseline hardware structure) -- all requests
  interleave in arrival order; the victim's waits grow with the
  rogue's rate until its deadlines collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.servers import minimum_budget
from repro.core.gsched import ServerSpec
from repro.core.priority_queue import FIFOQueue
from repro.core.rchannel import RChannel
from repro.exp.reporting import render_table
from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask
from repro.tasks.taskset import TaskSet

VICTIM_VM = 0
ROGUE_VM = 1

#: Server period used for dimensioning (slots).
SERVER_PERIOD = 50


@dataclass
class IsolationResult:
    """Victim misses per discipline, per rogue intensity."""

    rogue_factors: List[float]
    #: discipline -> victim miss counts aligned with rogue_factors.
    victim_misses: Dict[str, List[int]]
    victim_jobs: int
    servers: List[Tuple[int, int, int]]  # (vm, pi, theta)

    def miss_curve(self, discipline: str) -> List[int]:
        return self.victim_misses[discipline]


def declared_tasks() -> TaskSet:
    """What both VMs promise: victim safety traffic + rogue nominal load."""
    return TaskSet(
        [
            IOTask(
                name="victim.brake", period=200, wcet=6, vm_id=VICTIM_VM,
                criticality=Criticality.SAFETY, payload_bytes=16,
            ),
            IOTask(
                name="victim.steer", period=500, wcet=15, vm_id=VICTIM_VM,
                criticality=Criticality.SAFETY, payload_bytes=32,
            ),
            IOTask(
                name="victim.watchdog", period=400, wcet=4, vm_id=VICTIM_VM,
                criticality=Criticality.SAFETY, payload_bytes=8,
            ),
            IOTask(
                name="rogue.nominal", period=250, wcet=25, vm_id=ROGUE_VM,
                criticality=Criticality.SYNTHETIC, payload_bytes=64,
            ),
        ],
        name="isolation.declared",
    )


def dimension_servers(declared: TaskSet) -> List[ServerSpec]:
    """Theorem-4-minimal budgets from the *declared* loads."""
    specs = []
    for vm_id, tasks in sorted(declared.by_vm().items()):
        theta = minimum_budget(SERVER_PERIOD, tasks)
        if theta is None:
            raise ValueError(
                f"declared load of VM {vm_id} is not servable at "
                f"Pi={SERVER_PERIOD}"
            )
        specs.append(ServerSpec(vm_id, SERVER_PERIOD, theta))
    return specs


def _releases(
    declared: TaskSet, rogue_factor: float, horizon: int, rng: RandomSource
):
    """Arrival sequence: declared releases + the rogue's excess flood.

    The rogue's *actual* inter-release separation is its declared period
    divided by ``rogue_factor`` -- a contract violation once the factor
    exceeds 1.
    """
    events = []
    for task in declared:
        period = task.period
        if task.vm_id == ROGUE_VM and rogue_factor > 1.0:
            period = max(1, int(round(task.period / rogue_factor)))
        phase = rng.randint(0, task.period - 1)
        index = 0
        release = phase
        while release < horizon:
            events.append((release, task, index))
            index += 1
            release = phase + index * period
    events.sort(key=lambda entry: entry[0])
    return events


def _run_ioguard(declared, servers, events, horizon):
    """Budgeted-EDF pools: the real R-channel, rogue pool included."""
    channel = RChannel(servers, pool_capacity=4096)
    cursor = 0
    victim_misses = 0
    for slot in range(horizon):
        while cursor < len(events) and events[cursor][0] <= slot:
            _r, task, index = events[cursor]
            channel.submit(task.job(release=events[cursor][0], index=index))
            cursor += 1
        channel.tick(slot)
        done = channel.execute_slot(slot)
        if (
            done is not None
            and done.task.vm_id == VICTIM_VM
            and slot + 1 > done.absolute_deadline
        ):
            victim_misses += 1
    # Victim jobs stuck in the pool past their deadlines also missed.
    for job in channel.pools[VICTIM_VM].queue.jobs():
        if job.absolute_deadline <= horizon:
            victim_misses += 1
    return victim_misses


def _run_fifo(events, horizon):
    """Single shared FIFO served one slot of work per slot."""
    queue = FIFOQueue(capacity=100_000)
    cursor = 0
    victim_misses = 0
    current = None
    for slot in range(horizon):
        while cursor < len(events) and events[cursor][0] <= slot:
            _r, task, index = events[cursor]
            queue.insert(task.job(release=events[cursor][0], index=index))
            cursor += 1
        if current is None and queue:
            current = queue.pop()
        if current is not None:
            current.execute(1)
            if current.remaining == 0:
                if (
                    current.task.vm_id == VICTIM_VM
                    and slot + 1 > current.absolute_deadline
                ):
                    victim_misses += 1
                current = None
    # Victim jobs still queued past their deadlines missed too.
    for job in queue.jobs():
        if job.task.vm_id == VICTIM_VM and job.absolute_deadline <= horizon:
            victim_misses += 1
    if (
        current is not None
        and current.task.vm_id == VICTIM_VM
        and current.absolute_deadline <= horizon
    ):
        victim_misses += 1
    return victim_misses


def run_isolation(
    *,
    rogue_factors=(1.0, 4.0, 8.0, 16.0),
    horizon_slots: int = 20_000,
    seed: int = 99,
) -> IsolationResult:
    """Sweep the rogue's contract violation; count victim misses."""
    declared = declared_tasks()
    servers = dimension_servers(declared)
    misses: Dict[str, List[int]] = {"ioguard-rchannel": [], "shared-fifo": []}
    victim_jobs = 0
    for factor in rogue_factors:
        if factor < 1.0:
            raise ValueError(
                f"rogue factor must be >= 1 (1 = contract kept), got {factor}"
            )
        rng = RandomSource(seed, f"iso{factor}")
        events = _releases(declared, factor, horizon_slots, rng)
        victim_jobs = sum(
            1
            for release, task, _i in events
            if task.vm_id == VICTIM_VM
            and release + task.deadline <= horizon_slots
        )
        misses["ioguard-rchannel"].append(
            _run_ioguard(declared, servers, events, horizon_slots)
        )
        misses["shared-fifo"].append(_run_fifo(events, horizon_slots))
    return IsolationResult(
        rogue_factors=list(rogue_factors),
        victim_misses=misses,
        victim_jobs=victim_jobs,
        servers=[(s.vm_id, s.pi, s.theta) for s in servers],
    )


def render_isolation(result: IsolationResult) -> str:
    rows = [
        (discipline, *result.victim_misses[discipline])
        for discipline in sorted(result.victim_misses)
    ]
    headers = ["discipline"] + [f"rogue x{f:g}" for f in result.rogue_factors]
    table = render_table(
        headers,
        rows,
        title=(
            "Victim-VM deadline misses under a contract-violating rogue "
            f"({result.victim_jobs} victim jobs per cell; servers "
            f"{result.servers})"
        ),
    )
    return table
