"""Fig. 7: case-study success ratio and I/O throughput sweep.

Reproduces the experimental protocol of Sec. V-C at reduced scale (the
paper runs 1000 x 100-second executions; a Python reproduction runs
configurable trials x sub-second horizons -- the *shape* of the curves
is the reproduction target, see EXPERIMENTS.md):

* 20 safety + 20 function automotive tasks (~40 % utilization),
* synthetic padding to each target utilization in the sweep,
* groups of 4 and 8 activated VMs,
* systems: BS|Legacy, BS|RT-XEN, BS|BV, I/O-GUARD-40, I/O-GUARD-70,
* identical workload draws across systems within a trial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.baselines import (
    BlueVisorSystem,
    IOGuardSystem,
    IOVirtSystem,
    LegacySystem,
    RTXenSystem,
    TrialConfig,
    prepare_workload,
)
from repro.exp.reporting import render_table
from repro.metrics.success import SweepPoint, aggregate
from repro.sim.rng import RandomSource
from repro.tasks import build_case_study_taskset, pad_to_target_utilization

#: Default sweep grid, the paper's 40..100 % in 5 % steps.
DEFAULT_UTILIZATIONS = tuple(round(0.40 + 0.05 * i, 2) for i in range(13))


def _env_scale() -> float:
    """REPRO_SCALE environment knob: scales trials and horizon."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass
class CaseStudyConfig:
    """Sweep parameters for the Fig. 7 reproduction."""

    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS
    vm_groups: Sequence[int] = (4, 8)
    trials: int = 10
    horizon_slots: int = 50_000
    seed: int = 2021  # the paper's publication year, for the record
    #: Apply the REPRO_SCALE env knob to trials/horizon.
    use_env_scale: bool = True

    def effective(self) -> "CaseStudyConfig":
        """Config after applying the environment scale factor."""
        if not self.use_env_scale:
            return self
        scale = _env_scale()
        if scale == 1.0:
            return self
        return CaseStudyConfig(
            utilizations=self.utilizations,
            vm_groups=self.vm_groups,
            trials=max(1, int(round(self.trials * scale))),
            horizon_slots=max(10_000, int(round(self.horizon_slots * scale))),
            seed=self.seed,
            use_env_scale=False,
        )


def default_systems() -> List[IOVirtSystem]:
    """The five systems of Fig. 7."""
    return [
        LegacySystem(),
        RTXenSystem(),
        BlueVisorSystem(),
        IOGuardSystem(0.4),
        IOGuardSystem(0.7),
    ]


@dataclass
class CaseStudyResult:
    """All aggregated sweep points, keyed by VM group."""

    config: CaseStudyConfig
    #: vm_count -> list of SweepPoint (system x utilization)
    groups: Dict[int, List[SweepPoint]] = field(default_factory=dict)

    def points(self, vm_count: int, system: str) -> List[SweepPoint]:
        return [
            point
            for point in self.groups[vm_count]
            if point.system == system
        ]

    def success_curve(self, vm_count: int, system: str) -> Dict[float, float]:
        return {
            point.target_utilization: point.success_ratio
            for point in self.points(vm_count, system)
        }

    def throughput_curve(self, vm_count: int, system: str) -> Dict[float, float]:
        return {
            point.target_utilization: point.mean_throughput_mbps
            for point in self.points(vm_count, system)
        }


def run_case_study(
    config: CaseStudyConfig = None,
    systems: List[IOVirtSystem] = None,
) -> CaseStudyResult:
    """Run the full sweep: groups x utilizations x systems x trials."""
    config = (config or CaseStudyConfig()).effective()
    systems = systems if systems is not None else default_systems()
    trial_config = TrialConfig(horizon_slots=config.horizon_slots)
    result = CaseStudyResult(config=config)
    for vm_count in config.vm_groups:
        base = build_case_study_taskset(vm_count=vm_count)
        points: List[SweepPoint] = []
        for system in systems:
            per_util: Dict[float, list] = {}
            for utilization in config.utilizations:
                trials = []
                for trial in range(config.trials):
                    # Workload draws are keyed by (seed, vm, util, trial)
                    # only -- identical across systems, as in the paper.
                    workload_rng = RandomSource(
                        config.seed + trial, f"wl.{vm_count}.{utilization}"
                    )
                    padded = pad_to_target_utilization(
                        base,
                        utilization,
                        workload_rng.spawn("pad"),
                        vm_count=vm_count,
                    )
                    workload = prepare_workload(
                        padded,
                        trial_config,
                        workload_rng.spawn("draws"),
                        target_utilization=utilization,
                    )
                    system_rng = RandomSource(
                        config.seed + trial,
                        f"sys.{system.name}.{vm_count}.{utilization}",
                    )
                    trials.append(system.run_trial(workload, system_rng))
                per_util[utilization] = trials
            for utilization in config.utilizations:
                points.append(aggregate(per_util[utilization]))
        result.groups[vm_count] = points
    return result


def render_fig7(result: CaseStudyResult) -> str:
    """Render the Fig. 7(a)/(b)/(c) series as text tables."""
    sections = []
    for vm_count, points in sorted(result.groups.items()):
        rows = [
            (
                point.system,
                point.target_utilization,
                point.success_ratio,
                point.mean_throughput_mbps,
                point.mean_miss_ratio,
            )
            for point in points
        ]
        sections.append(
            render_table(
                ["system", "target U", "success ratio", "throughput Mbps", "miss ratio"],
                rows,
                title=(
                    f"Fig. 7 -- {vm_count}-VM group "
                    f"({result.config.trials} trials x "
                    f"{result.config.horizon_slots} slots)"
                ),
            )
        )
    return "\n\n".join(sections)
