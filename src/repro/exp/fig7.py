"""Fig. 7: case-study success ratio and I/O throughput sweep.

Reproduces the experimental protocol of Sec. V-C at reduced scale (the
paper runs 1000 x 100-second executions; a Python reproduction runs
configurable trials x sub-second horizons -- the *shape* of the curves
is the reproduction target, see EXPERIMENTS.md):

* 20 safety + 20 function automotive tasks (~40 % utilization),
* synthetic padding to each target utilization in the sweep,
* groups of 4 and 8 activated VMs,
* systems: BS|Legacy, BS|RT-XEN, BS|BV, I/O-GUARD-40, I/O-GUARD-70,
* identical workload draws across systems within a trial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.baselines import (
    BlueVisorSystem,
    IOGuardSystem,
    IOVirtSystem,
    LegacySystem,
    RTXenSystem,
    TrialConfig,
    prepare_workload,
)
from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.metrics.success import SweepPoint, aggregate
from repro.sim.rng import RandomSource
from repro.tasks import build_case_study_taskset, pad_to_target_utilization
from repro.tasks.taskset import TaskSet

#: Default sweep grid, the paper's 40..100 % in 5 % steps.
DEFAULT_UTILIZATIONS = tuple(round(0.40 + 0.05 * i, 2) for i in range(13))


def _env_scale() -> float:
    """REPRO_SCALE environment knob: scales trials and horizon."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass
class CaseStudyConfig:
    """Sweep parameters for the Fig. 7 reproduction."""

    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS
    vm_groups: Sequence[int] = (4, 8)
    trials: int = 10
    horizon_slots: int = 50_000
    seed: int = 2021  # the paper's publication year, for the record
    #: Apply the REPRO_SCALE env knob to trials/horizon.
    use_env_scale: bool = True

    def effective(self) -> "CaseStudyConfig":
        """Config after applying the environment scale factor."""
        if not self.use_env_scale:
            return self
        scale = _env_scale()
        if scale == 1.0:
            return self
        return CaseStudyConfig(
            utilizations=self.utilizations,
            vm_groups=self.vm_groups,
            trials=max(1, int(round(self.trials * scale))),
            horizon_slots=max(10_000, int(round(self.horizon_slots * scale))),
            seed=self.seed,
            use_env_scale=False,
        )


def default_systems() -> List[IOVirtSystem]:
    """The five systems of Fig. 7."""
    return [
        LegacySystem(),
        RTXenSystem(),
        BlueVisorSystem(),
        IOGuardSystem(0.4),
        IOGuardSystem(0.7),
    ]


@dataclass
class CaseStudyResult:
    """All aggregated sweep points, keyed by VM group."""

    config: CaseStudyConfig
    #: vm_count -> list of SweepPoint (system x utilization)
    groups: Dict[int, List[SweepPoint]] = field(default_factory=dict)

    def points(self, vm_count: int, system: str) -> List[SweepPoint]:
        return [
            point
            for point in self.groups[vm_count]
            if point.system == system
        ]

    def success_curve(self, vm_count: int, system: str) -> Dict[float, float]:
        return {
            point.target_utilization: point.success_ratio
            for point in self.points(vm_count, system)
        }

    def throughput_curve(self, vm_count: int, system: str) -> Dict[float, float]:
        return {
            point.target_utilization: point.mean_throughput_mbps
            for point in self.points(vm_count, system)
        }


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of the Fig. 7 sweep: a (vm group, system,
    utilization) point with all its trials.

    Everything stochastic inside a cell derives from ``(seed + trial,
    stream name)`` where the stream name encodes the cell coordinates,
    so cells share no random state: they can run in any process, in any
    order, and reproduce the serial results bit for bit.  Cells are
    frozen dataclasses of primitives plus the system object, which keeps
    them picklable for the parallel runner.
    """

    seed: int
    vm_count: int
    utilization: float
    trials: int
    horizon_slots: int
    system: IOVirtSystem


@lru_cache(maxsize=8)
def _cached_base_taskset(vm_count: int) -> TaskSet:
    """Per-process memo of the deterministic 40-task case-study set.

    ``build_case_study_taskset`` draws no randomness and the padding /
    workload steps never mutate the base set, so sharing one instance
    across cells (as the serial loop always did) is safe.
    """
    return build_case_study_taskset(vm_count=vm_count)


def run_sweep_cell(cell: SweepCell) -> SweepPoint:
    """Execute one sweep cell: ``cell.trials`` paired trials, aggregated.

    Module-level (not a closure) so the parallel runner can pickle it to
    worker processes; the serial path calls the very same function.
    """
    base = _cached_base_taskset(cell.vm_count)
    trial_config = TrialConfig(horizon_slots=cell.horizon_slots)
    trials = []
    for trial in range(cell.trials):
        # Workload draws are keyed by (seed, vm, util, trial)
        # only -- identical across systems, as in the paper.
        workload_rng = RandomSource(
            cell.seed + trial, f"wl.{cell.vm_count}.{cell.utilization}"
        )
        padded = pad_to_target_utilization(
            base,
            cell.utilization,
            workload_rng.spawn("pad"),
            vm_count=cell.vm_count,
        )
        workload = prepare_workload(
            padded,
            trial_config,
            workload_rng.spawn("draws"),
            target_utilization=cell.utilization,
        )
        system_rng = RandomSource(
            cell.seed + trial,
            f"sys.{cell.system.name}.{cell.vm_count}.{cell.utilization}",
        )
        trials.append(cell.system.run_trial(workload, system_rng))
    return aggregate(trials)


def sweep_cells(
    config: CaseStudyConfig, systems: List[IOVirtSystem]
) -> List[SweepCell]:
    """All cells of the sweep, in the canonical (group, system, U) order."""
    return [
        SweepCell(
            seed=config.seed,
            vm_count=vm_count,
            utilization=utilization,
            trials=config.trials,
            horizon_slots=config.horizon_slots,
            system=system,
        )
        for vm_count in config.vm_groups
        for system in systems
        for utilization in config.utilizations
    ]


def run_case_study(
    config: CaseStudyConfig = None,
    systems: List[IOVirtSystem] = None,
    *,
    jobs: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> CaseStudyResult:
    """Run the full sweep: groups x utilizations x systems x trials.

    ``jobs``/``runner`` select the execution backend (see
    :mod:`repro.exp.runner`); results are identical for every worker
    count because each :class:`SweepCell` is seeded independently.
    """
    config = (config or CaseStudyConfig()).effective()
    systems = systems if systems is not None else default_systems()
    runner = runner if runner is not None else ExperimentRunner(jobs)
    cells = sweep_cells(config, systems)
    points = runner.map(run_sweep_cell, cells, label="fig7")
    result = CaseStudyResult(config=config)
    for cell, point in zip(cells, points):
        result.groups.setdefault(cell.vm_count, []).append(point)
    return result


def render_fig7(result: CaseStudyResult) -> str:
    """Render the Fig. 7(a)/(b)/(c) series as text tables."""
    sections = []
    for vm_count, points in sorted(result.groups.items()):
        rows = [
            (
                point.system,
                point.target_utilization,
                point.success_ratio,
                point.mean_throughput_mbps,
                point.mean_miss_ratio,
            )
            for point in points
        ]
        sections.append(
            render_table(
                ["system", "target U", "success ratio", "throughput Mbps", "miss ratio"],
                rows,
                title=(
                    f"Fig. 7 -- {vm_count}-VM group "
                    f"({result.config.trials} trials x "
                    f"{result.config.horizon_slots} slots)"
                ),
            )
        )
    return "\n\n".join(sections)
