"""Experiment drivers: one module per table/figure of the paper.

Each driver regenerates its artefact from the library and renders the
same rows/series the paper reports:

* :mod:`repro.exp.fig6` -- run-time software overhead (memory footprint),
* :mod:`repro.exp.table1` -- hardware overhead on FPGA,
* :mod:`repro.exp.fig7` -- case-study success ratio + I/O throughput
  sweep over target utilization for 4-VM and 8-VM groups,
* :mod:`repro.exp.fig8` -- scalability (area, power, Fmax vs eta),
* :mod:`repro.exp.reporting` -- plain-text table rendering.

Run everything with ``python -m repro.exp`` (see ``__main__``).
"""

from repro.exp.fig6 import fig6_report, render_fig6
from repro.exp.table1 import table1_report, render_table1
from repro.exp.fig7 import CaseStudyConfig, run_case_study, render_fig7
from repro.exp.fig8 import fig8_report, render_fig8
from repro.exp.predictability import (
    PredictabilityResult,
    render_predictability,
    run_predictability,
)
from repro.exp.acceptance import (
    AcceptanceResult,
    render_acceptance,
    run_acceptance,
)
from repro.exp.isolation import (
    IsolationResult,
    render_isolation,
    run_isolation,
)
from repro.exp.export import (
    export_fig7_csv,
    export_fig7_json,
    export_fig8_csv,
    export_predictability_csv,
)
from repro.exp.weighted import (
    WeightedResult,
    render_weighted,
    run_weighted,
)
from repro.exp.reporting import render_table

__all__ = [
    "AcceptanceResult",
    "CaseStudyConfig",
    "PredictabilityResult",
    "WeightedResult",
    "export_fig7_csv",
    "export_fig7_json",
    "export_fig8_csv",
    "export_predictability_csv",
    "IsolationResult",
    "fig6_report",
    "fig8_report",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_acceptance",
    "render_isolation",
    "render_predictability",
    "render_weighted",
    "render_table",
    "render_table1",
    "run_case_study",
    "run_acceptance",
    "run_isolation",
    "run_predictability",
    "run_weighted",
    "table1_report",
]
