"""Table I: hardware overhead on FPGA."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exp.reporting import render_table
from repro.hwcost.models import relative_to, table1_rows
from repro.hwcost.resources import ResourceUsage


def table1_report(vm_count: int = 16, io_count: int = 2) -> List[Tuple[str, ResourceUsage]]:
    """The six Table I rows for the given hypervisor configuration."""
    return table1_rows(vm_count=vm_count, io_count=io_count)


def table1_ratios() -> Dict[str, Dict[str, float]]:
    """The paper's prose comparisons of "Proposed" vs the processors."""
    proposed = dict(table1_report())["proposed"]
    return {
        "vs_microblaze": relative_to("microblaze", proposed),
        "vs_riscv": relative_to("riscv", proposed),
    }


def render_table1(vm_count: int = 16, io_count: int = 2) -> str:
    rows = [
        (name, u.luts, u.registers, u.dsp, u.ram_kb, u.power_mw)
        for name, u in table1_report(vm_count, io_count)
    ]
    table = render_table(
        ["design", "LUTs", "Registers", "DSP", "RAM (KB)", "Power (mW)"],
        rows,
        title=(
            "Table I -- hardware overhead (implemented on FPGA), "
            f"hypervisor configured for {vm_count} VMs / {io_count} I/Os"
        ),
    )
    lines = [table, ""]
    for anchor, ratios in table1_ratios().items():
        pretty = ", ".join(f"{k}={v * 100:.1f}%" for k, v in ratios.items())
        lines.append(f"proposed {anchor}: {pretty}")
    return "\n".join(lines)
