"""Fig. 8: scalability of area, power and maximum frequency vs eta."""

from __future__ import annotations

from typing import List

from repro.exp.reporting import render_table
from repro.hwcost.scaling import ScalingPoint, scaling_sweep


def fig8_report(eta_max: int = 5) -> List[ScalingPoint]:
    if eta_max < 0:
        raise ValueError(f"eta_max must be >= 0, got {eta_max}")
    return scaling_sweep(range(0, eta_max + 1))


def render_fig8(eta_max: int = 5) -> str:
    points = fig8_report(eta_max)
    area_rows = [
        (
            p.eta,
            p.vm_count,
            p.legacy_area,
            p.ioguard_area,
            p.area_overhead * 100,
        )
        for p in points
    ]
    power_rows = [
        (p.eta, p.vm_count, p.legacy.power_mw, p.ioguard.power_mw)
        for p in points
    ]
    fmax_rows = [
        (p.eta, p.vm_count, p.legacy_fmax_mhz, p.ioguard_fmax_mhz)
        for p in points
    ]
    return "\n\n".join(
        [
            render_table(
                ["eta", "VMs", "legacy area", "ioguard area", "overhead %"],
                area_rows,
                title="Fig. 8(a) -- normalised area consumption",
            ),
            render_table(
                ["eta", "VMs", "legacy mW", "ioguard mW"],
                power_rows,
                title="Fig. 8(b) -- power consumption",
            ),
            render_table(
                ["eta", "VMs", "legacy MHz", "hypervisor MHz"],
                fmax_rows,
                title="Fig. 8(c) -- maximum frequency",
            ),
        ]
    )
