"""Acceptance-ratio experiment: the classic schedulability-test figure.

For each utilization level, draw many random task sets and report the
fraction each test admits under a fixed server -- comparing:

* **theorem4** -- the paper's pseudo-polynomial exact-over-sbf test,
* **linear** -- the sufficient test built on the proof's linear supply
  bound (cheaper, strictly more pessimistic),
* **bandwidth** -- the naive necessary condition ``U <= Theta/Pi``
  (an upper envelope no sound test can exceed).

Expected shape: bandwidth >= theorem4 >= linear at every utilization,
with theorem4 tracking bandwidth closely at low utilization and the
linear test falling away first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.batched import lsched_schedulable_batch
from repro.analysis.linear_test import lsched_schedulable_linear
from repro.analysis.lsched_test import lsched_schedulable
from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.tasks.generators import generate_random_taskset


@dataclass
class AcceptancePoint:
    """Acceptance ratios of all tests at one utilization level."""

    utilization: float
    samples: int
    ratios: Dict[str, float]


@dataclass(frozen=True)
class AcceptanceCell:
    """One utilization level of the sweep: an independent, picklable unit.

    Task-set draws are keyed by ``seed + sample index`` and a name
    encoding the cell's utilization, exactly as in the serial loop, so
    parallel execution reproduces serial ratios bit for bit.

    ``engine`` selects the Theorem-4 implementation: ``"batched"``
    submits the cell's whole column of task sets as one
    :func:`~repro.analysis.batched.lsched_schedulable_batch` call,
    anything else dispatches :func:`lsched_schedulable` per sample.
    Verdicts are bit-identical either way.
    """

    pi: int
    theta: int
    utilization: float
    samples: int
    task_count: int
    seed: int
    period_min: int
    period_max: int
    implicit_deadlines: bool
    engine: Optional[str] = None


def run_acceptance_cell(cell: AcceptanceCell) -> AcceptancePoint:
    """Evaluate all three tests over one utilization level's samples."""
    bandwidth = cell.theta / cell.pi
    counts = {"theorem4": 0, "linear": 0, "bandwidth": 0}
    tasksets = [
        generate_random_taskset(
            cell.seed + index,
            task_count=cell.task_count,
            total_utilization=cell.utilization,
            period_min=cell.period_min,
            period_max=cell.period_max,
            implicit_deadlines=cell.implicit_deadlines,
            name=f"acc.u{cell.utilization}.s{index}",
        )
        for index in range(cell.samples)
    ]
    if cell.engine == "batched":
        verdicts = lsched_schedulable_batch(
            [(cell.pi, cell.theta, tasks) for tasks in tasksets]
        )
    else:
        verdicts = [
            lsched_schedulable(cell.pi, cell.theta, tasks, engine=cell.engine)
            for tasks in tasksets
        ]
    for tasks, verdict in zip(tasksets, verdicts):
        if tasks.utilization <= bandwidth:
            counts["bandwidth"] += 1
        if verdict.schedulable:
            counts["theorem4"] += 1
        if lsched_schedulable_linear(cell.pi, cell.theta, tasks).schedulable:
            counts["linear"] += 1
    return AcceptancePoint(
        utilization=cell.utilization,
        samples=cell.samples,
        ratios={name: count / cell.samples for name, count in counts.items()},
    )


@dataclass
class AcceptanceResult:
    server: Tuple[int, int]
    points: List[AcceptancePoint]

    def curve(self, test: str) -> Dict[float, float]:
        return {p.utilization: p.ratios[test] for p in self.points}


def run_acceptance(
    *,
    pi: int = 20,
    theta: int = 14,
    utilizations: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.65, 0.7),
    samples: int = 50,
    task_count: int = 5,
    seed: int = 2021,
    period_min: int = 40,
    period_max: int = 400,
    implicit_deadlines: bool = True,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> AcceptanceResult:
    """Sweep utilization; return acceptance ratios per test.

    Utilization levels fan out over the :mod:`repro.exp.runner` backend
    when ``jobs``/``runner`` ask for parallelism; each level's draws are
    independently seeded, so the ratios never depend on worker count.
    ``engine`` is forwarded to every cell (see :class:`AcceptanceCell`);
    the ratios are engine-independent by the batch parity contract.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    runner = runner if runner is not None else ExperimentRunner(jobs)
    cells = [
        AcceptanceCell(
            pi=pi,
            theta=theta,
            utilization=utilization,
            samples=samples,
            task_count=task_count,
            seed=seed,
            period_min=period_min,
            period_max=period_max,
            implicit_deadlines=implicit_deadlines,
            engine=engine,
        )
        for utilization in utilizations
    ]
    points = runner.map(run_acceptance_cell, cells, label="acceptance")
    return AcceptanceResult(server=(pi, theta), points=points)


def render_acceptance(result: AcceptanceResult) -> str:
    rows = [
        (
            point.utilization,
            point.ratios["bandwidth"],
            point.ratios["theorem4"],
            point.ratios["linear"],
        )
        for point in result.points
    ]
    pi, theta = result.server
    return render_table(
        ["utilization", "bandwidth bound", "Theorem 4", "linear sufficient"],
        rows,
        title=(
            f"Acceptance ratio under server (Pi={pi}, Theta={theta}), "
            f"{result.points[0].samples if result.points else 0} sets/point"
        ),
    )
