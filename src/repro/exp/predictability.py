"""Predictability experiment: response-time distributions per system.

The paper's motivation (Sec. I, Fig. 1) is that conventional
virtualization adds "significant communication latency and timing
variance" to I/O operations.  The evaluation reports aggregate success
ratios; this experiment exposes the underlying distributions directly:
per-job response times of the safety/function tasks at a fixed target
utilization, summarised as mean / p95 / p99 / peak-to-peak jitter.

Expected shape: I/O-GUARD's distributions are tight (slot-quantised EDF
service, short driver path) while the baselines spread out with load --
RT-XEN the widest (VMM quantum + backend queueing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines import (
    IOVirtSystem,
    TrialConfig,
    prepare_workload,
)
from repro.exp.fig7 import default_systems
from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.metrics.stats import LatencyStats, summarize
from repro.sim.rng import RandomSource
from repro.tasks import build_case_study_taskset, pad_to_target_utilization


@dataclass
class PredictabilityResult:
    """Per-system response-time statistics at one utilization.

    Two views:

    * ``stats`` -- the pooled per-job response distribution (how long do
      I/Os take at all);
    * ``per_task_jitter`` -- for each system, the peak-to-peak response
      variation of every individual task, summarised over tasks.  This
      is *the* predictability metric: a time-triggered P-channel task
      repeats identically every hyper-period (jitter 0), while a task
      fighting a FIFO queue sees its response wander with the queue.
    """

    target_utilization: float
    vm_count: int
    horizon_slots: int
    #: system name -> latency statistics over all counted jobs.
    stats: Dict[str, LatencyStats]
    #: system name -> statistics of per-task peak-to-peak jitter.
    per_task_jitter: Dict[str, LatencyStats]

    def jitter_of(self, system: str) -> float:
        """Mean per-task peak-to-peak jitter of one system (slots)."""
        return self.per_task_jitter[system].mean

    def worst_task_jitter(self, system: str) -> float:
        return self.per_task_jitter[system].maximum


@dataclass(frozen=True)
class PredictabilityCell:
    """One trial of the predictability experiment (all systems).

    The workload is drawn once from the trial's own seeded stream and
    shared across systems (the paper's paired-comparison requirement);
    nothing crosses trial boundaries, so trials parallelize freely.
    """

    trial: int
    seed: int
    target_utilization: float
    vm_count: int
    horizon_slots: int
    systems: Tuple[IOVirtSystem, ...]


def run_predictability_cell(
    cell: PredictabilityCell,
) -> Dict[str, Tuple[List[float], Dict[str, List[float]]]]:
    """One trial: per-system ``(pooled samples, per-task samples)``."""
    base = build_case_study_taskset(vm_count=cell.vm_count)
    config = TrialConfig(
        horizon_slots=cell.horizon_slots, collect_responses=True
    )
    rng = RandomSource(
        cell.seed + cell.trial,
        f"pred.{cell.vm_count}.{cell.target_utilization}",
    )
    padded = pad_to_target_utilization(
        base, cell.target_utilization, rng.spawn("pad"),
        vm_count=cell.vm_count,
    )
    workload = prepare_workload(
        padded, config, rng.spawn("wl"),
        target_utilization=cell.target_utilization,
    )
    out: Dict[str, Tuple[List[float], Dict[str, List[float]]]] = {}
    for system in cell.systems:
        result = system.run_trial(workload, rng.spawn(system.name))
        out[system.name] = (result.response_samples, result.response_by_task)
    return out


def run_predictability(
    *,
    target_utilization: float = 0.6,
    vm_count: int = 4,
    trials: int = 3,
    horizon_slots: int = 30_000,
    seed: int = 2021,
    systems: Optional[List[IOVirtSystem]] = None,
    jobs: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> PredictabilityResult:
    """Collect response samples for every system at one load level.

    Trials fan out over the :mod:`repro.exp.runner` backend; samples are
    merged back in trial order, so the statistics are identical for any
    worker count.
    """
    if not 0 < target_utilization:
        raise ValueError(
            f"target utilization must be positive, got {target_utilization}"
        )
    systems = systems if systems is not None else default_systems()
    runner = runner if runner is not None else ExperimentRunner(jobs)
    cells = [
        PredictabilityCell(
            trial=trial,
            seed=seed,
            target_utilization=target_utilization,
            vm_count=vm_count,
            horizon_slots=horizon_slots,
            systems=tuple(systems),
        )
        for trial in range(trials)
    ]
    per_trial = runner.map(
        run_predictability_cell, cells, label="predictability"
    )
    samples: Dict[str, List[float]] = {system.name: [] for system in systems}
    by_task: Dict[str, Dict[str, List[float]]] = {
        system.name: {} for system in systems
    }
    for trial_result in per_trial:
        for system in systems:
            pooled, per_task = trial_result[system.name]
            samples[system.name].extend(pooled)
            for task_name, values in per_task.items():
                by_task[system.name].setdefault(task_name, []).extend(values)
    stats = {
        name: summarize(values) for name, values in samples.items() if values
    }
    per_task_jitter = {}
    for name, tasks in by_task.items():
        jitters = [
            max(values) - min(values)
            for values in tasks.values()
            if len(values) >= 2
        ]
        if jitters:
            per_task_jitter[name] = summarize(jitters)
    return PredictabilityResult(
        target_utilization=target_utilization,
        vm_count=vm_count,
        horizon_slots=horizon_slots,
        stats=stats,
        per_task_jitter=per_task_jitter,
    )


def render_predictability(result: PredictabilityResult) -> str:
    rows = []
    for system in sorted(result.stats):
        stats = result.stats[system]
        jitter = result.per_task_jitter.get(system)
        rows.append(
            (
                system,
                stats.count,
                stats.mean,
                stats.p99,
                stats.maximum,
                jitter.mean if jitter else 0.0,
                jitter.maximum if jitter else 0.0,
            )
        )
    return render_table(
        [
            "system",
            "jobs",
            "resp mean",
            "resp p99",
            "resp max",
            "task jitter mean",
            "task jitter max",
        ],
        rows,
        title=(
            "Response time and per-task jitter (slots) at target "
            f"utilization {result.target_utilization:.0%}, "
            f"{result.vm_count} VMs"
        ),
    )
