"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats get 3 significant decimals unless they
    are integral.
    """
    formatted_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(divider)
    for row in formatted_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)
