"""Synthesis sweep and benchmark: designs the analysis layer verifies.

``python -m repro.exp synth`` runs a pinned set of synthesis scenarios
-- the hand-configured example workloads plus a harmonic fast-path case
and a precedence-constrained table case -- through
:func:`repro.api.synthesize` under **every** analysis engine, and
asserts the redesign contract:

* **feasible**: every synthesized design passes its Theorem-2 and
  Theorem-4 verification, re-checked here with the ``"scalar"``
  reference engine (the oracle the search used is not trusted to grade
  its own homework);
* **no worse than the integrator**: ``sum Theta/Pi`` is at or below the
  hand-written example baseline where one exists, and at or below the
  policy designer's seed everywhere;
* **deterministic**: the canonical payload (engine field excluded) is
  byte-identical across engines, solver backends and ``--jobs`` worker
  counts.

``synth-bench`` times the same sweep and gates the search *effort*
(oracle calls, pruned nodes) rather than wall clock -- call counts are
host-independent, so CI can pin them exactly.
:func:`write_synth_bench_history` records the run as the committed
``BENCH_synth.json`` (schema checked by
:func:`validate_synth_bench_schema` on both sides, mirroring
``BENCH_analysis.json``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import ENGINES
from repro.analysis.gsched_test import gsched_schedulable
from repro.analysis.lsched_test import lsched_schedulable
from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.synth.solvers import SOLVERS, solver_available
from repro.tasks.task import IOTask, TaskKind

#: Version of the committed ``BENCH_synth.json`` record; bump when its
#: structure changes, and keep :func:`validate_synth_bench_schema` in step.
SYNTH_BENCH_SCHEMA_VERSION = 1

#: Search-effort ceiling the bench gate enforces (total oracle calls
#: across the whole sweep, one engine).  Oracle calls are deterministic,
#: so this is an exact regression pin, not a noisy wall-clock bound.
SYNTH_BENCH_MAX_ORACLE_CALLS = 200


def _admission_control_config():
    """The ``examples/admission_control.py`` workload, servers left open.

    The example hand-writes ``(Pi=20, Theta=8)`` + ``(Pi=20, Theta=6)``
    (bandwidth 0.7) for the workload its admission sequence admits;
    synthesis must match or beat that.
    """
    from repro.api import SystemConfig

    return SystemConfig(
        name="admission-control",
        table_pattern=[1, 0, 0, 1, 0, 0, 0, 0, 0, 0],
        tasks=[
            IOTask(name="steering_assist", period=100, wcet=8, vm_id=0),
            IOTask(name="park_sensors", period=200, wcet=20, vm_id=0),
            IOTask(name="media_stream", period=250, wcet=25, vm_id=1),
            IOTask(name="nav_updates", period=500, wcet=30, vm_id=1),
        ],
    )


def _quickstart_config():
    """The ``examples/quickstart.py`` workload (auto-designed servers)."""
    from repro.api import SystemConfig

    return SystemConfig(
        name="quickstart",
        tasks=[
            IOTask(
                name="sensor_poll",
                period=50,
                wcet=4,
                vm_id=0,
                kind=TaskKind.PREDEFINED,
                device="spi0",
            ),
            IOTask(name="vm0_command", period=80, wcet=6, vm_id=0),
            IOTask(name="vm1_telemetry", period=120, wcet=10, vm_id=1),
            IOTask(name="vm1_logging", period=200, wcet=12, vm_id=1),
        ],
    )


def _harmonic_config():
    """Harmonic implicit-deadline VMs: the closed-form fast-path regime."""
    from repro.api import SystemConfig

    return SystemConfig(
        name="harmonic",
        table_pattern=[1, 0, 0, 0, 0, 0, 0, 0],
        tasks=[
            IOTask(name="h0_fast", period=8, wcet=1, vm_id=0),
            IOTask(name="h0_mid", period=16, wcet=2, vm_id=0),
            IOTask(name="h0_slow", period=32, wcet=2, vm_id=0),
            IOTask(name="h1_fast", period=16, wcet=1, vm_id=1),
            IOTask(name="h1_slow", period=64, wcet=6, vm_id=1),
        ],
    )


def _constrained_table_config():
    """Slot-table synthesis under a sense->act time-lag constraint."""
    from repro.api import SystemConfig, TableConstraint

    return SystemConfig(
        name="constrained-table",
        tasks=[
            IOTask(
                name="sense",
                period=20,
                wcet=2,
                deadline=10,
                vm_id=0,
                kind=TaskKind.PREDEFINED,
                device="lidar",
            ),
            IOTask(
                name="act",
                period=20,
                wcet=1,
                vm_id=0,
                kind=TaskKind.PREDEFINED,
                device="canbus",
            ),
            IOTask(name="control_loop", period=100, wcet=5, vm_id=0),
        ],
        table_constraints=[
            TableConstraint("sense", "act", min_lag=2, max_lag=12)
        ],
    )


#: Pinned sweep: (scenario name, config builder, hand-written baseline
#: bandwidth or None).  ``None`` gates against the policy designer's
#: seed instead (recorded in every report as ``seed_bandwidth``).
#: Immutable on purpose: worker processes read it (IOL009).
SYNTH_SCENARIOS: Tuple[Tuple[str, object, Optional[float]], ...] = (
    ("admission-control", _admission_control_config, 8 / 20 + 6 / 20),
    ("quickstart", _quickstart_config, None),
    ("harmonic", _harmonic_config, None),
    ("constrained-table", _constrained_table_config, None),
)


def scenario_names() -> Tuple[str, ...]:
    return tuple(name for name, _builder, _baseline in SYNTH_SCENARIOS)


def _scenario(name: str) -> Tuple[object, Optional[float]]:
    for scenario, builder, baseline in SYNTH_SCENARIOS:
        if scenario == name:
            return builder, baseline
    raise KeyError(f"unknown synthesis scenario {name!r}")


@dataclass(frozen=True)
class SynthCell:
    """One (scenario, engine, solver) synthesis run."""

    scenario: str
    engine: str
    solver: str


@dataclass
class SynthCellResult:
    """Picklable outcome of one cell (no numpy state crosses workers)."""

    scenario: str
    engine: str
    solver: str
    schedulable: bool
    scalar_verified: bool
    bandwidth: float
    seed_bandwidth: Optional[float]
    baseline_bandwidth: Optional[float]
    hyperperiod: int
    servers: List[Tuple[int, int, int]]
    oracle_calls: int
    pruned_nodes: int
    nodes_expanded: int
    fast_path_vms: int
    improved: bool
    payload_digest: str
    elapsed_seconds: float

    @property
    def bandwidth_ok(self) -> bool:
        """``sum Theta/Pi`` at or below every applicable baseline."""
        limits = [
            limit
            for limit in (self.baseline_bandwidth, self.seed_bandwidth)
            if limit is not None
        ]
        return all(self.bandwidth <= limit + 1e-12 for limit in limits)


def run_synth_cell(cell: SynthCell) -> SynthCellResult:
    """Synthesize one scenario and independently re-verify it.

    The scalar re-check below is the differential half of the contract:
    the searched design must pass the *reference* engine's Theorem-2 and
    Theorem-4 tests, not just the (vectorized/batched) oracle that
    steered the search.
    """
    from repro.api import synthesize

    builder, baseline = _scenario(cell.scenario)
    config = builder()
    started = time.perf_counter()  # iolint: disable=IOL003 -- host-side benchmark timing
    report = synthesize(config, engine=cell.engine, solver=cell.solver)
    elapsed = time.perf_counter() - started  # iolint: disable=IOL003 -- host-side benchmark timing

    scalar_verified = bool(report.schedulable)
    if report.schedulable:
        from repro.tasks.taskset import TaskSet

        by_vm = TaskSet(list(config.tasks), name=config.name).runtime().by_vm()
        pairs = report.server_pairs()
        if pairs:
            scalar_verified &= gsched_schedulable(
                report.table, pairs, engine="scalar"
            ).schedulable
        for spec in report.servers:
            tasks = by_vm.get(spec.vm_id)
            if tasks is None:
                continue
            scalar_verified &= lsched_schedulable(
                spec.pi, spec.theta, tasks, engine="scalar"
            ).schedulable

    payload = report.to_payload()
    # The engine is the one field *allowed* to differ across cells; the
    # digest pins everything else byte-for-byte.
    payload.pop("engine")
    digest = json.dumps(payload, sort_keys=True)
    return SynthCellResult(
        scenario=cell.scenario,
        engine=cell.engine,
        solver=cell.solver,
        schedulable=report.schedulable,
        scalar_verified=scalar_verified,
        bandwidth=report.bandwidth,
        seed_bandwidth=report.seed_bandwidth,
        baseline_bandwidth=baseline,
        hyperperiod=report.table.total_slots,
        servers=[
            (spec.vm_id, spec.pi, spec.theta) for spec in report.servers
        ],
        oracle_calls=report.stats.oracle_calls,
        pruned_nodes=report.stats.pruned_nodes,
        nodes_expanded=report.stats.nodes_expanded,
        fast_path_vms=report.fast_path_vms,
        improved=report.improved,
        payload_digest=digest,
        elapsed_seconds=elapsed,
    )


@dataclass
class SynthSweepResult:
    """Every cell of the sweep plus the invariants CI asserts on."""

    cells: List[SynthCellResult]
    solvers: List[str]

    def for_scenario(self, scenario: str) -> List[SynthCellResult]:
        return [cell for cell in self.cells if cell.scenario == scenario]

    @property
    def all_feasible(self) -> bool:
        return all(cell.schedulable for cell in self.cells)

    @property
    def all_scalar_verified(self) -> bool:
        return all(cell.scalar_verified for cell in self.cells)

    @property
    def all_bandwidth_ok(self) -> bool:
        return all(cell.bandwidth_ok for cell in self.cells)

    @property
    def outputs_identical(self) -> bool:
        """One design per scenario across every engine and solver."""
        for scenario in scenario_names():
            digests = {
                cell.payload_digest for cell in self.for_scenario(scenario)
            }
            if len(digests) > 1:
                return False
        return True

    @property
    def total_oracle_calls(self) -> int:
        """Search effort of one engine's pass (they are identical)."""
        return sum(
            cell.oracle_calls
            for cell in self.cells
            if cell.engine == "batched" and cell.solver == "python"
        )

    @property
    def ok(self) -> bool:
        return (
            self.all_feasible
            and self.all_scalar_verified
            and self.all_bandwidth_ok
            and self.outputs_identical
        )


def run_synth_sweep(
    *,
    engines: Sequence[str] = ENGINES,
    solvers: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> SynthSweepResult:
    """The pinned sweep: every scenario x engine (x available solver).

    The optional CP-SAT backend joins automatically when importable --
    its designs must match the pure-python backend's byte for byte
    (lex-min w.r.t. the same canonical model), so CI runs green with or
    without it installed.
    """
    if solvers is None:
        solvers = [name for name in SOLVERS if solver_available(name)]
    runner = runner if runner is not None else ExperimentRunner(1)
    cells = [
        SynthCell(scenario=scenario, engine=engine, solver=solver)
        for scenario in scenario_names()
        for engine in engines
        for solver in solvers
    ]
    results = runner.map(run_synth_cell, cells, label="synth")
    return SynthSweepResult(cells=results, solvers=list(solvers))


def render_synth_sweep(result: SynthSweepResult) -> str:
    """Deterministic rendering (no timing: stdout is byte-compared)."""
    rows = []
    for scenario in scenario_names():
        cells = result.for_scenario(scenario)
        cell = cells[0]
        baseline = (
            cell.baseline_bandwidth
            if cell.baseline_bandwidth is not None
            else cell.seed_bandwidth
        )
        rows.append(
            (
                scenario,
                cell.hyperperiod,
                len(cell.servers),
                cell.bandwidth,
                baseline if baseline is not None else "-",
                cell.oracle_calls,
                cell.pruned_nodes,
                cell.fast_path_vms,
                "yes" if all(c.scalar_verified for c in cells) else "NO",
            )
        )
    table = render_table(
        [
            "scenario",
            "H",
            "servers",
            "bandwidth",
            "baseline",
            "oracle",
            "pruned",
            "fastpath",
            "verified",
        ],
        rows,
        title=(
            "Bandwidth-minimal synthesis "
            f"(engines x solvers: {len(result.cells)} runs, "
            f"solvers: {', '.join(result.solvers)})"
        ),
    )
    lines = [table, ""]
    lines.append(
        "designs identical across engines/solvers: "
        + ("yes" if result.outputs_identical else "NO - BACKENDS DISAGREE")
    )
    lines.append(
        "scalar re-verification: "
        + ("pass" if result.all_scalar_verified else "FAIL")
    )
    lines.append(
        "bandwidth at or below baselines: "
        + ("yes" if result.all_bandwidth_ok else "NO - REGRESSION")
    )
    return "\n".join(lines)


# -- BENCH_synth.json history record -----------------------------------------


def synth_bench_record(result: SynthSweepResult) -> Dict[str, object]:
    """The schema-stable record committed as ``BENCH_synth.json``.

    Search-effort counters (oracle calls, pruned nodes) are
    deterministic and compared exactly; wall time is recorded for
    humans but never gated.
    """
    scenarios: Dict[str, object] = {}
    for scenario in scenario_names():
        cells = result.for_scenario(scenario)
        cell = next(
            (
                c
                for c in cells
                if c.engine == "batched" and c.solver == "python"
            ),
            cells[0],
        )
        scenarios[scenario] = {
            "hyperperiod": cell.hyperperiod,
            "servers": [list(entry) for entry in cell.servers],
            "bandwidth": cell.bandwidth,
            "seed_bandwidth": cell.seed_bandwidth,
            "baseline_bandwidth": cell.baseline_bandwidth,
            "oracle_calls": cell.oracle_calls,
            "pruned_nodes": cell.pruned_nodes,
            "nodes_expanded": cell.nodes_expanded,
            "fast_path_vms": cell.fast_path_vms,
            "improved": cell.improved,
            "elapsed_seconds": cell.elapsed_seconds,
        }
    return {
        "schema_version": SYNTH_BENCH_SCHEMA_VERSION,
        "scenarios": scenarios,
        "solvers": list(result.solvers),
        "total_oracle_calls": result.total_oracle_calls,
        "outputs_identical": result.outputs_identical,
        "all_scalar_verified": result.all_scalar_verified,
        "all_bandwidth_ok": result.all_bandwidth_ok,
    }


def write_synth_bench_history(
    result: SynthSweepResult, path: Path
) -> Path:
    record = synth_bench_record(result)
    problems = validate_synth_bench_schema(record)
    if problems:
        raise ValueError(
            "refusing to write an invalid bench record: " + "; ".join(problems)
        )
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


_SCENARIO_KEYS = (
    "hyperperiod",
    "servers",
    "bandwidth",
    "oracle_calls",
    "pruned_nodes",
    "nodes_expanded",
    "fast_path_vms",
    "improved",
    "elapsed_seconds",
)


def validate_synth_bench_schema(doc: object) -> List[str]:
    """Structural check of a ``BENCH_synth.json`` document.

    Returns a list of human-readable problems; empty means valid.  Used
    by CI against both the committed baseline and a fresh run.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema_version") != SYNTH_BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SYNTH_BENCH_SCHEMA_VERSION}"
        )
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("missing non-empty 'scenarios' object")
    else:
        for name, entry in scenarios.items():
            if not isinstance(entry, dict):
                problems.append(f"scenario {name!r} is not an object")
                continue
            for key in _SCENARIO_KEYS:
                if key not in entry:
                    problems.append(f"scenario {name!r} lacks {key!r}")
    solvers = doc.get("solvers")
    if not isinstance(solvers, list) or "python" not in solvers:
        problems.append("'solvers' must be a list including 'python'")
    if not isinstance(doc.get("total_oracle_calls"), int):
        problems.append("missing integer 'total_oracle_calls'")
    for key in (
        "outputs_identical",
        "all_scalar_verified",
        "all_bandwidth_ok",
    ):
        if not isinstance(doc.get(key), bool):
            problems.append(f"missing boolean {key!r}")
    return problems
