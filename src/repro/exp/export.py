"""Result export: CSV and JSON writers for the experiment outputs.

Downstream users plot the sweeps with their own tooling; these writers
flatten the experiment results to stable, documented schemas.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Union

from repro.analysis.cache import cache_stats
from repro.exp.fig7 import CaseStudyResult
from repro.exp.fig8 import fig8_report
from repro.exp.predictability import PredictabilityResult
from repro.exp.runner import TimingSummary

PathLike = Union[str, Path]


def export_timing_json(
    summary: TimingSummary,
    path: PathLike,
    *,
    include_cache_stats: bool = True,
) -> Path:
    """Machine-readable account of an experiment run's wall-clock cost.

    Schema: ``{"jobs", "total_seconds", "phases": [{"label", "items",
    "jobs", "elapsed_seconds", "items_per_second"}, ...],
    "analysis_caches": {name: {hits, misses, currsize, maxsize}}}``.
    The cache section reflects the coordinating process only -- worker
    processes hold their own cache state.
    """
    path = Path(path)
    payload = summary.as_dict()
    if include_cache_stats:
        payload["analysis_caches"] = cache_stats()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def export_fig7_csv(result: CaseStudyResult, path: PathLike) -> Path:
    """One row per (vm_group, system, utilization) sweep cell."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "vm_count",
                "system",
                "target_utilization",
                "trials",
                "success_ratio",
                "throughput_mbps_mean",
                "throughput_mbps_min",
                "throughput_mbps_max",
                "miss_ratio_mean",
            ]
        )
        for vm_count, points in sorted(result.groups.items()):
            for point in points:
                writer.writerow(
                    [
                        vm_count,
                        point.system,
                        point.target_utilization,
                        point.trials,
                        point.success_ratio,
                        point.mean_throughput_mbps,
                        point.min_throughput_mbps,
                        point.max_throughput_mbps,
                        point.mean_miss_ratio,
                    ]
                )
    return path


def export_fig7_json(result: CaseStudyResult, path: PathLike) -> Path:
    """Nested JSON: groups -> systems -> utilization curves."""
    path = Path(path)
    payload = {
        "config": {
            "trials": result.config.trials,
            "horizon_slots": result.config.horizon_slots,
            "seed": result.config.seed,
            "utilizations": list(result.config.utilizations),
        },
        "groups": {},
    }
    for vm_count, points in sorted(result.groups.items()):
        systems = {}
        for point in points:
            entry = systems.setdefault(
                point.system, {"utilization": [], "success_ratio": [], "throughput_mbps": []}
            )
            entry["utilization"].append(point.target_utilization)
            entry["success_ratio"].append(point.success_ratio)
            entry["throughput_mbps"].append(point.mean_throughput_mbps)
        payload["groups"][str(vm_count)] = systems
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def export_fig8_csv(path: PathLike, eta_max: int = 5) -> Path:
    """One row per eta of the scalability sweep."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "eta",
                "vm_count",
                "legacy_area",
                "ioguard_area",
                "area_overhead",
                "legacy_power_mw",
                "ioguard_power_mw",
                "legacy_fmax_mhz",
                "ioguard_fmax_mhz",
            ]
        )
        for point in fig8_report(eta_max):
            writer.writerow(
                [
                    point.eta,
                    point.vm_count,
                    point.legacy_area,
                    point.ioguard_area,
                    point.area_overhead,
                    point.legacy.power_mw,
                    point.ioguard.power_mw,
                    point.legacy_fmax_mhz,
                    point.ioguard_fmax_mhz,
                ]
            )
    return path


def export_predictability_csv(
    result: PredictabilityResult, path: PathLike
) -> Path:
    """One row per system with distribution + jitter statistics."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "system",
                "jobs",
                "resp_mean",
                "resp_p95",
                "resp_p99",
                "resp_max",
                "task_jitter_mean",
                "task_jitter_max",
            ]
        )
        for system in sorted(result.stats):
            stats = result.stats[system]
            jitter = result.per_task_jitter.get(system)
            writer.writerow(
                [
                    system,
                    stats.count,
                    stats.mean,
                    stats.p95,
                    stats.p99,
                    stats.maximum,
                    jitter.mean if jitter else 0.0,
                    jitter.maximum if jitter else 0.0,
                ]
            )
    return path


def read_csv_rows(path: PathLike) -> List[dict]:
    """Small helper for round-trip tests and notebooks."""
    with Path(path).open() as handle:
        return list(csv.DictReader(handle))
