"""Parallel experiment execution: deterministic fan-out over worker processes.

The sweep experiments (:mod:`repro.exp.fig7`, ``acceptance``,
``predictability``) decompose into *cells* -- independent units such as
one (vm group, system, utilization) point with its trials -- whose only
inputs are a cell spec and seeds derived from the experiment seed.
Nothing stochastic is shared between cells (every draw comes from a
:class:`~repro.sim.rng.RandomSource` keyed by the cell's own
coordinates), so cells may execute in any order, in any process, and
still produce bit-identical results.

:class:`ExperimentRunner` exploits exactly that contract:

* ``jobs=1`` (the default) runs cells inline -- the reference serial
  path;
* ``jobs>1`` fans cells out over a ``concurrent.futures``
  ``ProcessPoolExecutor`` and reassembles results **in submission
  order**, so the output is independent of worker count and completion
  order.  ``jobs=0`` means "one worker per CPU".

The worker count resolves with the precedence *explicit argument* >
``REPRO_JOBS`` environment variable > serial.  Cell functions and specs
must be picklable (module-level functions, plain dataclasses) for the
parallel path; the serial path has no such requirement, which is why it
remains the default.

Progress/ETA lines go to ``stderr`` (never ``stdout``, which carries the
rendered tables), and every mapped phase is timed into a
:class:`TimingSummary` whose :meth:`TimingSummary.as_dict` feeds the
machine-readable ``timing.json`` artefact of ``python -m repro.exp
export``.
"""

from __future__ import annotations

# iolint: disable-file=IOL003 -- host-side wall-clock timing only (progress
# ETA lines on stderr and the timing.json artefact); never feeds simulated
# state, traces, or analysis results.

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment knob consulted when no explicit ``jobs`` is given,
#: mirroring ``REPRO_SCALE``.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` > 1 (serial).

    ``0`` (from either source) requests one worker per available CPU.
    Negative counts are rejected.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass(frozen=True)
class PhaseTiming:
    """Wall-clock record of one mapped phase.

    With runner profiling enabled the phase additionally carries the
    per-cell wall times and the memoization-kernel hit/miss deltas
    accumulated across its cells; both stay ``None`` otherwise so the
    ``timing.json`` schema is unchanged for non-profiled runs.
    """

    label: str
    items: int
    jobs: int
    elapsed_seconds: float
    cell_seconds: Optional[Sequence[float]] = None
    kernel_stats: Optional[Dict[str, Dict[str, int]]] = None

    @property
    def items_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.items / self.elapsed_seconds

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "label": self.label,
            "items": self.items,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "items_per_second": self.items_per_second,
        }
        if self.cell_seconds is not None:
            payload["cell_seconds"] = list(self.cell_seconds)
        if self.kernel_stats is not None:
            payload["kernel_stats"] = {
                name: dict(stats)
                for name, stats in sorted(self.kernel_stats.items())
            }
        return payload


@dataclass
class TimingSummary:
    """Machine-readable account of where an experiment run spent time."""

    jobs: int
    phases: List[PhaseTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(phase.elapsed_seconds for phase in self.phases)

    def add(self, phase: PhaseTiming) -> None:
        self.phases.append(phase)

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "total_seconds": self.total_seconds,
            "phases": [phase.as_dict() for phase in self.phases],
        }


class ProgressReporter:
    """Throttled progress/ETA lines on a text stream.

    One line per report -- plain ``label: done/total | elapsed | eta`` --
    so output stays readable in logs and CI transcripts (no carriage
    returns, no terminal control sequences).
    """

    def __init__(
        self,
        label: str,
        total: int,
        stream=None,
        min_interval_seconds: float = 1.0,
    ):
        self.label = label
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_seconds = min_interval_seconds
        self._started = time.perf_counter()
        self._last_report = 0.0
        self._done = 0

    def advance(self, count: int = 1) -> None:
        self._done += count
        now = time.perf_counter()
        finished = self._done >= self.total
        if not finished and now - self._last_report < self.min_interval_seconds:
            return
        self._last_report = now
        elapsed = now - self._started
        if self._done > 0 and not finished:
            eta = elapsed / self._done * (self.total - self._done)
            eta_text = f" | eta {eta:6.1f}s"
        else:
            eta_text = ""
        percent = 100.0 * self._done / self.total if self.total else 100.0
        print(
            f"{self.label}: {self._done}/{self.total} "
            f"({percent:3.0f}%) | elapsed {elapsed:6.1f}s{eta_text}",
            file=self.stream,
        )


class ExperimentRunner:
    """Order-preserving map over experiment cells, serial or parallel.

    Parameters
    ----------
    jobs:
        Worker processes; resolved via :func:`resolve_jobs` (``None``
        consults ``REPRO_JOBS``, ``1`` is serial, ``0`` is per-CPU).
    progress:
        ``True``/``False`` force progress reporting on or off; ``None``
        enables it only when ``stream`` is a TTY.
    stream:
        Destination for progress lines (default ``sys.stderr``).
    profile:
        Record per-cell wall time and memoization-kernel hit/miss
        deltas into each :class:`PhaseTiming` (the ``timing.json``
        keys ``cell_seconds`` / ``kernel_stats``).  Profiling wraps
        the cell function, so cells must tolerate the extra frame;
        results are unchanged -- only the timing record grows.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        progress: Optional[bool] = None,
        stream=None,
        profile: bool = False,
    ):
        self.jobs = resolve_jobs(jobs)
        self.stream = stream if stream is not None else sys.stderr
        if progress is None:
            progress = bool(getattr(self.stream, "isatty", lambda: False)())
        self.progress = progress
        self.profile = profile
        self.timing = TimingSummary(jobs=self.jobs)

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        *,
        label: str = "cells",
    ) -> List[ResultT]:
        """Apply ``fn`` to every item; results are in item order.

        The parallel path requires ``fn`` and the items to be picklable;
        any worker exception propagates to the caller (the remaining
        futures are cancelled by pool shutdown).  The serial path and the
        parallel path run the *same* cell function, so ``jobs`` can never
        change results -- only wall-clock time.
        """
        items = list(items)
        reporter = (
            ProgressReporter(label, len(items), stream=self.stream)
            if self.progress and items
            else None
        )
        call = _TimedCall(fn) if self.profile else fn
        started = time.perf_counter()
        workers = min(self.jobs, len(items)) if items else 0
        if workers <= 1:
            results = []
            for item in items:
                results.append(call(item))
                if reporter:
                    reporter.advance()
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(call, item) for item in items]
                if reporter:
                    for _ in as_completed(futures):
                        reporter.advance()
                # Reassembly in submission order makes the output
                # independent of completion order.
                results = [future.result() for future in futures]
        cell_seconds: Optional[List[float]] = None
        kernel_stats: Optional[Dict[str, Dict[str, int]]] = None
        if self.profile:
            profiles: List[_CellProfile] = results  # type: ignore[assignment]
            results = [profile.result for profile in profiles]
            cell_seconds = [profile.elapsed_seconds for profile in profiles]
            kernel_stats = {}
            for profile in profiles:
                for name, delta in profile.kernel_delta.items():
                    merged = kernel_stats.setdefault(
                        name, {"hits": 0, "misses": 0}
                    )
                    merged["hits"] += delta.get("hits", 0)
                    merged["misses"] += delta.get("misses", 0)
        self.timing.add(
            PhaseTiming(
                label=label,
                items=len(items),
                jobs=workers if workers > 0 else 1,
                elapsed_seconds=time.perf_counter() - started,
                cell_seconds=cell_seconds,
                kernel_stats=kernel_stats,
            )
        )
        return results

    def starmap(
        self,
        fn: Callable[..., ResultT],
        items: Iterable[Sequence],
        *,
        label: str = "cells",
    ) -> List[ResultT]:
        """:meth:`map` over argument tuples (picklable convenience)."""
        return self.map(_StarCall(fn), [tuple(item) for item in items], label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentRunner(jobs={self.jobs})"


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas cannot cross processes)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, args: Sequence):
        return self.fn(*args)


@dataclass(frozen=True)
class _CellProfile:
    """One profiled cell: wall time, kernel-cache delta, and the result."""

    elapsed_seconds: float
    kernel_delta: Dict[str, Dict[str, int]]
    result: object


class _TimedCall:
    """Picklable profiling wrapper: times ``fn`` and diffs kernel caches.

    The cache delta is measured inside the executing process, so the
    parallel path attributes each worker's memoization traffic to the
    cell that caused it (workers hold independent cache state).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, item):
        from repro.analysis.cache import cache_stats

        before = cache_stats()
        started = time.perf_counter()
        result = self.fn(item)
        elapsed = time.perf_counter() - started
        delta: Dict[str, Dict[str, int]] = {}
        for name, stats in cache_stats().items():
            prior = before.get(name, {})
            hits = stats["hits"] - prior.get("hits", 0)
            misses = stats["misses"] - prior.get("misses", 0)
            if hits or misses:
                delta[name] = {"hits": hits, "misses": misses}
        return _CellProfile(
            elapsed_seconds=elapsed, kernel_delta=delta, result=result
        )
