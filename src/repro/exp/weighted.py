"""Weighted schedulability: acceptance across the server design space.

The acceptance-ratio figure fixes one server; system designers pick
``(Pi, Theta)``.  This experiment maps acceptance over the whole design
plane (server bandwidth x task utilization) and condenses each
bandwidth row into the standard *weighted schedulability* score

    W(bw) = sum_u u * accept(u, bw) / sum_u u

which weights high-utilization task sets more (they are the ones worth
fielding).  Expected shape: W grows monotonically with the server
bandwidth and, for a fixed bandwidth, shorter server periods beat
longer ones (smaller blackout ``2*(Pi - Theta)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.lsched_test import lsched_schedulable
from repro.exp.reporting import render_table
from repro.tasks.generators import generate_random_taskset


@dataclass
class WeightedResult:
    """Acceptance grid plus weighted scores per server."""

    servers: List[Tuple[int, int]]
    utilizations: List[float]
    samples: int
    #: (pi, theta) -> {utilization: acceptance ratio}
    grid: Dict[Tuple[int, int], Dict[float, float]]

    def weighted_score(self, server: Tuple[int, int]) -> float:
        """The weighted-schedulability condensation of one server row."""
        row = self.grid[server]
        numerator = sum(u * row[u] for u in self.utilizations)
        denominator = sum(self.utilizations)
        return numerator / denominator if denominator else 0.0

    def scores(self) -> Dict[Tuple[int, int], float]:
        return {server: self.weighted_score(server) for server in self.servers}


def run_weighted(
    *,
    servers: Sequence[Tuple[int, int]] = (
        (10, 5), (20, 10), (40, 20),   # 50% bandwidth, growing period
        (10, 7), (20, 14), (40, 28),   # 70% bandwidth, growing period
    ),
    utilizations: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6),
    samples: int = 30,
    task_count: int = 5,
    seed: int = 2021,
    period_min: int = 40,
    period_max: int = 400,
) -> WeightedResult:
    """Evaluate Theorem-4 acceptance over the server design plane.

    The same random task sets are reused for every server (paired
    comparison), so differences between rows are purely the server's.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    servers = [tuple(server) for server in servers]
    tasksets = {
        utilization: [
            generate_random_taskset(
                seed + index,
                task_count=task_count,
                total_utilization=utilization,
                period_min=period_min,
                period_max=period_max,
                name=f"w.u{utilization}.s{index}",
            )
            for index in range(samples)
        ]
        for utilization in utilizations
    }
    grid: Dict[Tuple[int, int], Dict[float, float]] = {}
    for pi, theta in servers:
        row: Dict[float, float] = {}
        for utilization in utilizations:
            accepted = sum(
                1
                for tasks in tasksets[utilization]
                if lsched_schedulable(pi, theta, tasks).schedulable
            )
            row[utilization] = accepted / samples
        grid[(pi, theta)] = row
    return WeightedResult(
        servers=list(servers),
        utilizations=list(utilizations),
        samples=samples,
        grid=grid,
    )


def render_weighted(result: WeightedResult) -> str:
    rows = []
    for server in result.servers:
        pi, theta = server
        row = result.grid[server]
        rows.append(
            (
                f"({pi},{theta})",
                f"{theta / pi:.2f}",
                *(row[u] for u in result.utilizations),
                result.weighted_score(server),
            )
        )
    headers = (
        ["server", "bw"]
        + [f"U={u:g}" for u in result.utilizations]
        + ["weighted"]
    )
    return render_table(
        headers,
        rows,
        title=(
            "Weighted schedulability over the server design plane "
            f"({result.samples} task sets per cell)"
        ),
    )
