"""Schedule timeline inspection: who held each slot, as text.

A debugging/teaching utility: run a hypervisor configuration for a
window and print the slot-by-slot schedule -- P-channel bursts,
R-channel grants per VM, idle slots -- in the style of a Gantt strip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.gsched import ServerSpec
from repro.core.pchannel import PChannel
from repro.core.rchannel import RChannel
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import Job
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class SlotRecord:
    """What happened in one slot."""

    slot: int
    #: "P" (pre-defined), "R" (run-time), "." (idle)
    channel: str
    task_name: str = ""
    vm_id: Optional[int] = None
    budgeted: Optional[bool] = None


class ScheduleTracer:
    """Slot-stepped execution with a full per-slot record."""

    def __init__(
        self,
        predefined: TaskSet,
        servers: List[ServerSpec],
        table: Optional[TimeSlotTable] = None,
    ):
        self.pchannel = PChannel(predefined, table=table)
        self.rchannel = RChannel(servers)
        self.records: List[SlotRecord] = []

    def submit(self, job: Job) -> bool:
        return self.rchannel.submit(job)

    def step(self, slot: int) -> SlotRecord:
        self.rchannel.tick(slot)
        if self.pchannel.occupies(slot):
            task = self.pchannel.table.task_at(slot)
            self.pchannel.execute_slot(slot)
            record = SlotRecord(
                slot=slot, channel="P", task_name=task.name if task else ""
            )
        else:
            staged_by_vm = {
                vm: pool.shadow.task.name
                for vm, pool in self.rchannel.pools.items()
                if pool.shadow is not None
            }
            self.rchannel.execute_slot(slot)
            allocation = self.rchannel.last_allocation
            if allocation is None:
                record = SlotRecord(slot=slot, channel=".")
            else:
                record = SlotRecord(
                    slot=slot,
                    channel="R",
                    task_name=staged_by_vm.get(allocation.vm_id, ""),
                    vm_id=allocation.vm_id,
                    budgeted=allocation.budgeted,
                )
        self.records.append(record)
        return record

    def run(self, horizon: int, releases: List[Tuple[int, Job]]) -> None:
        """Step ``horizon`` slots, submitting ``releases`` on schedule."""
        ordered = sorted(releases, key=lambda pair: pair[0])
        cursor = 0
        for slot in range(horizon):
            while cursor < len(ordered) and ordered[cursor][0] <= slot:
                self.submit(ordered[cursor][1])
                cursor += 1
            self.step(slot)

    # -- rendering ------------------------------------------------------------

    def strip(self, start: int = 0, end: Optional[int] = None) -> str:
        """One character per slot: P=pre-defined, 0-9=VM grant, .=idle,
        lowercase letters for background (non-budgeted) grants."""
        window = self.records[start:end]
        chars = []
        for record in window:
            if record.channel == "P":
                chars.append("P")
            elif record.channel == ".":
                chars.append(".")
            else:
                vm = record.vm_id if record.vm_id is not None else 0
                if record.budgeted:
                    chars.append(str(vm % 10))
                else:
                    chars.append("abcdefghij"[vm % 10])
        return "".join(chars)

    def utilization_summary(self) -> Dict[str, float]:
        """Share of slots per channel over the traced window."""
        total = len(self.records)
        if total == 0:
            return {"P": 0.0, "R": 0.0, "idle": 0.0}
        p_slots = sum(1 for r in self.records if r.channel == "P")
        r_slots = sum(1 for r in self.records if r.channel == "R")
        return {
            "P": p_slots / total,
            "R": r_slots / total,
            "idle": (total - p_slots - r_slots) / total,
        }

    def grants_by_vm(self) -> Dict[int, Tuple[int, int]]:
        """vm -> (budgeted, background) slot counts."""
        grants: Dict[int, Tuple[int, int]] = {}
        for record in self.records:
            if record.channel != "R" or record.vm_id is None:
                continue
            budgeted, background = grants.get(record.vm_id, (0, 0))
            if record.budgeted:
                budgeted += 1
            else:
                background += 1
            grants[record.vm_id] = (budgeted, background)
        return grants
