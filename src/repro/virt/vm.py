"""Guest virtual machine container.

Binds a VM identity to its task set, its software stack model, and
run-time statistics.  The system models (``repro.baselines``) use the VM
as the unit of isolation accounting: per-VM deadline misses, releases
and rejections roll up here.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.tasks.task import Job
from repro.tasks.taskset import TaskSet
from repro.virt.stack import SoftwareStackModel, stack_for


class VirtualMachine:
    """One guest VM with its tasks and per-VM accounting."""

    def __init__(
        self,
        vm_id: int,
        tasks: TaskSet,
        stack: Optional[SoftwareStackModel] = None,
        system: str = "ioguard",
    ):
        self.vm_id = vm_id
        self.tasks = tasks
        self.stack = stack if stack is not None else stack_for(system)
        for task in tasks:
            if task.vm_id != vm_id:
                raise ValueError(
                    f"task {task.name!r} belongs to VM {task.vm_id}, "
                    f"not VM {vm_id}"
                )
        self.jobs_released = 0
        self.jobs_completed = 0
        self.jobs_missed = 0
        self.jobs_rejected = 0
        #: Buffered jobs the hypervisor discarded when it quarantined
        #: this VM (graceful degradation, not silent loss).
        self.jobs_dropped = 0
        #: Slot at which the degradation policy quarantined this VM;
        #: None while the VM is in good standing.
        self.quarantined_at: Optional[int] = None
        self.completed_jobs: List[Job] = []

    # -- accounting --------------------------------------------------------

    def record_release(self) -> None:
        self.jobs_released += 1

    def record_rejection(self) -> None:
        self.jobs_rejected += 1

    def record_quarantine(self, slot: int, dropped_jobs: int = 0) -> None:
        """The hypervisor quarantined this VM at ``slot``."""
        if self.quarantined_at is None:
            self.quarantined_at = slot
        self.jobs_dropped += dropped_jobs

    @property
    def is_quarantined(self) -> bool:
        return self.quarantined_at is not None

    def record_completion(self, job: Job) -> None:
        if job.task.vm_id != self.vm_id:
            raise ValueError(
                f"job {job.name} of VM {job.task.vm_id} reported to VM "
                f"{self.vm_id}"
            )
        self.jobs_completed += 1
        self.completed_jobs.append(job)
        if job.met_deadline() is False:
            self.jobs_missed += 1

    @property
    def utilization(self) -> float:
        return self.tasks.utilization

    @property
    def miss_ratio(self) -> float:
        if self.jobs_completed == 0:
            return 0.0
        return self.jobs_missed / self.jobs_completed

    def stats(self) -> Dict[str, float]:
        return {
            "vm_id": self.vm_id,
            "released": self.jobs_released,
            "completed": self.jobs_completed,
            "missed": self.jobs_missed,
            "rejected": self.jobs_rejected,
            "dropped": self.jobs_dropped,
            "quarantined": 1.0 if self.is_quarantined else 0.0,
            "utilization": self.utilization,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualMachine(vm={self.vm_id}, tasks={len(self.tasks)}, "
            f"stack={self.stack.name!r})"
        )
