"""Run-time software memory footprints (Fig. 6).

The paper evaluates software overhead "using the run-time memory
footprint, with specific consideration of hypervisor, OS kernel and I/O
drivers", split into BSS, data and text segments.  We model each
component's segments and compose systems from components, anchoring the
totals to the figures the paper reports in prose:

* BS|RT-XEN adds 61 KB (+129.8 %) over the legacy system for the
  hypervisor + kernel pair -- so the legacy fully-featured FreeRTOS
  kernel is ~47 KB and the Xen+RT-patch stack ~61 KB on top of a
  modified kernel;
* hardware-assisted systems (BS|BV, I/O-GUARD) move virtualization into
  hardware; I/O-GUARD "entirely eliminated the software overhead of the
  VMM by directly running the kernels on the processors";
* per-driver footprints shrink monotonically RT-XEN > Legacy > BV >
  I/O-GUARD because I/O-GUARD "integrates the low-level I/O drivers into
  the hardware".

All sizes in bytes; derivations are per-component comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

KB = 1024

#: System labels used across the reproduction.
SYSTEMS = ("legacy", "rt-xen", "bv", "ioguard")

#: Driver set shown in Fig. 6.
DRIVER_SET = ("spi", "ethernet", "uart", "can")


@dataclass(frozen=True)
class Footprint:
    """BSS/data/text segment sizes of one software component."""

    text: int
    data: int
    bss: int

    def __post_init__(self):
        if self.text < 0 or self.data < 0 or self.bss < 0:
            raise ValueError(f"negative segment size in {self!r}")

    @property
    def total(self) -> int:
        return self.text + self.data + self.bss

    @property
    def total_kb(self) -> float:
        return self.total / KB

    def __add__(self, other: "Footprint") -> "Footprint":
        return Footprint(
            text=self.text + other.text,
            data=self.data + other.data,
            bss=self.bss + other.bss,
        )


ZERO = Footprint(0, 0, 0)

#: Software hypervisor / VMM footprint per system.
HYPERVISOR_FOOTPRINTS: Dict[str, Footprint] = {
    # No virtualization layer at all.
    "legacy": ZERO,
    # Xen + RT patches + I/O enhancement: 56 KB, which together with the
    # +5 KB guest-kernel para-virtualization glue reproduces the paper's
    # "+61 KB (129.8%)" overhead over the 47 KB legacy kernel.
    "rt-xen": Footprint(text=42 * KB, data=int(7.5 * KB), bss=int(6.5 * KB)),
    # BlueVisor: virtualization in hardware, but a thin software VMM
    # stub remains on each core for trap handling and configuration.
    "bv": Footprint(text=6 * KB, data=2 * KB, bss=1 * KB),
    # I/O-GUARD: kernels run bare-metal with full privileges -- zero
    # software hypervisor.
    "ioguard": ZERO,
}

#: Guest OS kernel footprint per system (FreeRTOS v10.4 flavoured).
KERNEL_FOOTPRINTS: Dict[str, Footprint] = {
    # Fully-featured legacy kernel, excluding I/O drivers: ~47 KB.
    "legacy": Footprint(text=35 * KB, data=6 * KB, bss=6 * KB),
    # Para-virtualized guest: legacy kernel + grant tables/event
    # channels glue.
    "rt-xen": Footprint(text=38 * KB, data=7 * KB, bss=7 * KB),
    # I/O management partially moved to hardware; kernel shrinks.
    "bv": Footprint(text=31 * KB, data=5 * KB, bss=5 * KB),
    # I/O manager removed entirely (Fig. 3(b)); the kernel keeps only
    # scheduling/IPC/memory subsystems.
    "ioguard": Footprint(text=27 * KB, data=4 * KB, bss=4 * KB),
}

#: Per-driver footprints, system x protocol.  Ratios follow Fig. 6's
#: qualitative ordering; absolute scale follows typical embedded driver
#: sizes (Ethernet stacks dominate, GPIO-class drivers are tiny).
IO_DRIVER_FOOTPRINTS: Dict[str, Dict[str, Footprint]] = {
    "legacy": {
        "spi": Footprint(text=3 * KB, data=int(0.6 * KB), bss=int(0.6 * KB)),
        "ethernet": Footprint(text=12 * KB, data=2 * KB, bss=3 * KB),
        "uart": Footprint(text=2 * KB, data=int(0.4 * KB), bss=int(0.4 * KB)),
        "can": Footprint(text=5 * KB, data=1 * KB, bss=int(1.5 * KB)),
    },
    # Split front-end/back-end drivers double-buffer state in both
    # domains: consistently the largest (Obs 1: "BS|RT-XEN always
    # sustained the most significant software overhead").
    "rt-xen": {
        "spi": Footprint(text=5 * KB, data=1 * KB, bss=1 * KB),
        "ethernet": Footprint(text=18 * KB, data=3 * KB, bss=4 * KB),
        "uart": Footprint(text=int(3.5 * KB), data=int(0.7 * KB), bss=int(0.7 * KB)),
        "can": Footprint(text=8 * KB, data=int(1.5 * KB), bss=2 * KB),
    },
    # BlueVisor forwards to the hardware hypervisor but keeps software
    # I/O management in the VMM stub.
    "bv": {
        "spi": Footprint(text=int(1.6 * KB), data=int(0.3 * KB), bss=int(0.3 * KB)),
        "ethernet": Footprint(text=6 * KB, data=1 * KB, bss=int(1.5 * KB)),
        "uart": Footprint(text=int(1.2 * KB), data=int(0.2 * KB), bss=int(0.2 * KB)),
        "can": Footprint(text=int(2.6 * KB), data=int(0.5 * KB), bss=int(0.7 * KB)),
    },
    # I/O-GUARD drivers "only forward the I/O requests to the
    # hypervisor" (Sec. II-A): a queue write plus a doorbell.
    "ioguard": {
        "spi": Footprint(text=int(0.6 * KB), data=int(0.1 * KB), bss=int(0.1 * KB)),
        "ethernet": Footprint(text=int(1.1 * KB), data=int(0.2 * KB), bss=int(0.3 * KB)),
        "uart": Footprint(text=int(0.5 * KB), data=int(0.1 * KB), bss=int(0.1 * KB)),
        "can": Footprint(text=int(0.8 * KB), data=int(0.1 * KB), bss=int(0.2 * KB)),
    },
}


@dataclass
class FootprintReport:
    """Fig. 6 contents for one system."""

    system: str
    hypervisor: Footprint
    kernel: Footprint
    drivers: Dict[str, Footprint]

    @property
    def core_total(self) -> int:
        """Hypervisor + kernel bytes (the +129.8 % comparison basis)."""
        return self.hypervisor.total + self.kernel.total

    @property
    def grand_total(self) -> int:
        return self.core_total + sum(fp.total for fp in self.drivers.values())

    def rows(self) -> List[tuple]:
        """(component, text, data, bss, total) rows for table rendering."""
        rows = [
            ("hypervisor",) + _segments(self.hypervisor),
            ("os-kernel",) + _segments(self.kernel),
        ]
        for protocol in sorted(self.drivers):
            rows.append((f"driver-{protocol}",) + _segments(self.drivers[protocol]))
        return rows


def _segments(fp: Footprint) -> tuple:
    return (fp.text, fp.data, fp.bss, fp.total)


def system_footprints(
    system: str, drivers: tuple = DRIVER_SET
) -> FootprintReport:
    """Compose the Fig. 6 footprint report for one system."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")
    driver_map = {}
    for protocol in drivers:
        try:
            driver_map[protocol] = IO_DRIVER_FOOTPRINTS[system][protocol]
        except KeyError:
            raise KeyError(
                f"no footprint for driver {protocol!r} on {system!r}; "
                f"available: {sorted(IO_DRIVER_FOOTPRINTS[system])}"
            ) from None
    return FootprintReport(
        system=system,
        hypervisor=HYPERVISOR_FOOTPRINTS[system],
        kernel=KERNEL_FOOTPRINTS[system],
        drivers=driver_map,
    )


def overhead_vs_legacy(system: str) -> float:
    """Core (hypervisor+kernel) overhead relative to the legacy system."""
    legacy = system_footprints("legacy").core_total
    other = system_footprints(system).core_total
    return (other - legacy) / legacy
