"""Software-level models: guest stacks, VMM, drivers, footprints.

I/O-GUARD restructures the software level (Sec. II-A): the VMM is
removed, RTOSs run bare-metal with full privileges, and the OS I/O
manager is replaced by thin para-virtual drivers that only forward
requests to the hardware hypervisor.  This package models the *costs* of
each software organisation:

* :mod:`repro.virt.footprint` -- static memory-footprint accounting per
  component and system (reproduces Fig. 6),
* :mod:`repro.virt.stack` -- per-I/O-operation software path timing for
  each system architecture (feeds the case-study simulations),
* :mod:`repro.virt.vm` -- guest VM containers binding tasks to a stack,
* :mod:`repro.virt.vmm` -- the software VMM model used by the RT-Xen
  baseline (trap costs, scheduling quantum, backend service).
"""

from repro.virt.footprint import (
    Footprint,
    FootprintReport,
    IO_DRIVER_FOOTPRINTS,
    system_footprints,
)
from repro.virt.stack import SoftwareStackModel, STACK_MODELS, stack_for
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import SoftwareVMM

__all__ = [
    "Footprint",
    "FootprintReport",
    "IO_DRIVER_FOOTPRINTS",
    "STACK_MODELS",
    "SoftwareStackModel",
    "SoftwareVMM",
    "VirtualMachine",
    "stack_for",
    "system_footprints",
]
