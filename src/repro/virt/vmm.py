"""Software VMM model for the BS|RT-XEN baseline.

RT-Xen schedules virtual CPUs with a server-based real-time policy (RTDS:
budget + period per vCPU) and routes guest I/O through a driver domain.
For I/O timing the consequential behaviours are:

* requests issued while the guest's vCPU has exhausted its budget wait
  for the next replenishment (budget-induced blackout),
* the driver domain serialises backend processing: per-request service
  adds to a single queue shared by all VMs,
* every request/response pair pays trap-and-switch overhead (carried by
  :mod:`repro.virt.stack`).

The model works in scheduler slots, matching the system simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class VCpuServer:
    """RTDS-style budget/period pair for one VM's vCPU, in slots."""

    vm_id: int
    budget: int
    period: int

    def __post_init__(self):
        if self.period < 1 or not 0 < self.budget <= self.period:
            raise ValueError(
                f"invalid vCPU server vm={self.vm_id}: "
                f"budget={self.budget}, period={self.period}"
            )


class SoftwareVMM:
    """Budget accounting + backend queue for the RT-Xen system model."""

    def __init__(self, servers: List[VCpuServer], backend_cycles_per_op: int = 1200):
        if backend_cycles_per_op < 0:
            raise ValueError(
                f"backend cost must be >= 0, got {backend_cycles_per_op}"
            )
        self._servers: Dict[int, VCpuServer] = {}
        self._budget: Dict[int, int] = {}
        for server in servers:
            if server.vm_id in self._servers:
                raise ValueError(f"duplicate vCPU server for VM {server.vm_id}")
            self._servers[server.vm_id] = server
            self._budget[server.vm_id] = server.budget
        self.backend_cycles_per_op = backend_cycles_per_op
        self.backend_ops = 0
        self.budget_stalls = 0

    def tick(self, slot: int) -> None:
        """Replenish vCPU budgets at period boundaries."""
        for vm_id, server in self._servers.items():
            if slot % server.period == 0:
                self._budget[vm_id] = server.budget

    def can_dispatch(self, vm_id: int) -> bool:
        """Whether the VM's vCPU currently holds budget to issue I/O."""
        if vm_id not in self._servers:
            raise KeyError(f"no vCPU server for VM {vm_id}")
        return self._budget[vm_id] > 0

    def consume(self, vm_id: int, slots: int = 1) -> None:
        """Charge vCPU budget for guest-side I/O processing."""
        if not self.can_dispatch(vm_id):
            self.budget_stalls += 1
            return
        self._budget[vm_id] = max(0, self._budget[vm_id] - slots)

    def next_dispatch_slot(self, vm_id: int, slot: int) -> int:
        """Earliest slot at/after ``slot`` when the VM can issue I/O.

        With remaining budget that is the current slot; otherwise the
        next period boundary.
        """
        if self.can_dispatch(vm_id):
            return slot
        period = self._servers[vm_id].period
        self.budget_stalls += 1
        return ((slot // period) + 1) * period

    def backend_service(self) -> int:
        """Cycles of driver-domain processing for one operation."""
        self.backend_ops += 1
        return self.backend_cycles_per_op

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoftwareVMM(vms={sorted(self._servers)}, ops={self.backend_ops})"
