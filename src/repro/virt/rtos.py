"""Guest RTOS kernel model (Fig. 3 of the paper).

The paper modifies FreeRTOS: in the legacy organisation (Fig. 3(a)) an
application's I/O request crosses the kernel -- syscall entry, the I/O
manager (queueing, buffer management, driver demultiplexing), the
low-level driver -- while in I/O-GUARD (Fig. 3(b)) the application calls
a thin user-level driver that "only forwards the I/O requests to the
hypervisor", bypassing the kernel entirely.

The model is structural: a kernel is a composition of *services*, each
with a cycle cost and a footprint contribution, and an I/O path is an
ordered list of services.  This ties the timing numbers of
:mod:`repro.virt.stack` and the byte counts of
:mod:`repro.virt.footprint` to one explicit structure, and lets tests
assert the architecture claims (the I/O-GUARD path never enters the
kernel; removing the I/O manager shrinks the kernel) rather than just
the constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class KernelService:
    """One kernel component: its per-invocation cost and code size."""

    name: str
    cycles: int
    text_bytes: int
    #: Whether the service executes in privileged (kernel) mode.
    privileged: bool = True

    def __post_init__(self):
        if self.cycles < 0 or self.text_bytes < 0:
            raise ValueError(f"negative cost in service {self.name!r}")


#: Shared service catalog (costs in cycles at 100 MHz, sizes in bytes).
SERVICES: Dict[str, KernelService] = {
    "syscall_entry": KernelService("syscall_entry", cycles=80, text_bytes=600),
    "scheduler": KernelService("scheduler", cycles=150, text_bytes=9_000),
    "io_manager": KernelService("io_manager", cycles=400, text_bytes=11_000),
    "buffer_mgmt": KernelService("buffer_mgmt", cycles=120, text_bytes=4_500),
    "low_level_driver": KernelService(
        "low_level_driver", cycles=300, text_bytes=12_000
    ),
    "ipc": KernelService("ipc", cycles=90, text_bytes=5_000),
    "memory_mgmt": KernelService("memory_mgmt", cycles=0, text_bytes=7_000),
    "timers": KernelService("timers", cycles=0, text_bytes=3_500),
    # The I/O-GUARD user-level driver: builds a descriptor and rings the
    # hypervisor doorbell.  Unprivileged -- no kernel crossing.
    "forwarding_driver": KernelService(
        "forwarding_driver", cycles=90, text_bytes=1_200, privileged=False
    ),
}


@dataclass
class RTOSKernel:
    """A kernel build: which services are compiled in, which I/O path."""

    name: str
    services: List[str]
    io_path: List[str]

    def __post_init__(self):
        for service in self.services + self.io_path:
            if service not in SERVICES:
                raise KeyError(
                    f"unknown kernel service {service!r}; "
                    f"known: {sorted(SERVICES)}"
                )
        for service in self.io_path:
            if SERVICES[service].privileged and service not in self.services:
                raise ValueError(
                    f"I/O path uses privileged service {service!r} that is "
                    f"not compiled into kernel {self.name!r}"
                )

    # -- structure queries ----------------------------------------------------

    def io_request_cycles(self) -> int:
        """Cycles from the application call to the request leaving."""
        return sum(SERVICES[name].cycles for name in self.io_path)

    def kernel_text_bytes(self) -> int:
        """Privileged code size (the kernel's text segment)."""
        return sum(
            SERVICES[name].text_bytes
            for name in self.services
            if SERVICES[name].privileged
        )

    def io_path_enters_kernel(self) -> bool:
        """Whether any privileged service sits on the I/O path."""
        return any(SERVICES[name].privileged for name in self.io_path)

    def kernel_crossings_per_io(self) -> int:
        """Mode switches: one entry/exit pair per privileged stretch."""
        crossings = 0
        in_kernel = False
        for name in self.io_path:
            privileged = SERVICES[name].privileged
            if privileged and not in_kernel:
                crossings += 1
            in_kernel = privileged
        return crossings


def legacy_kernel() -> RTOSKernel:
    """Fig. 3(a): full kernel; I/O goes through the I/O manager."""
    return RTOSKernel(
        name="legacy",
        services=[
            "syscall_entry", "scheduler", "io_manager", "buffer_mgmt",
            "low_level_driver", "ipc", "memory_mgmt", "timers",
        ],
        io_path=[
            "syscall_entry", "io_manager", "buffer_mgmt", "low_level_driver",
        ],
    )


def ioguard_kernel() -> RTOSKernel:
    """Fig. 3(b): I/O manager removed; the path is one user-level call."""
    return RTOSKernel(
        name="ioguard",
        services=["scheduler", "ipc", "memory_mgmt", "timers", "syscall_entry"],
        io_path=["forwarding_driver"],
    )


def compare_kernels() -> Dict[str, Tuple[int, int, int]]:
    """(io cycles, kernel text, crossings) per organisation."""
    result = {}
    for kernel in (legacy_kernel(), ioguard_kernel()):
        result[kernel.name] = (
            kernel.io_request_cycles(),
            kernel.kernel_text_bytes(),
            kernel.kernel_crossings_per_io(),
        )
    return result
