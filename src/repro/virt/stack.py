"""Per-operation software-path timing for each system architecture.

Every I/O request crosses a different software stack depending on the
system (Fig. 1 vs Fig. 2): guest OS, virtual hardware, VMM, routers.
The model charges each request a *request-path cost* (cycles of software
execution between the application call and the request reaching the I/O
subsystem) and a symmetric *response-path cost*; the VMM-based stack
additionally delays requests to the next VMM scheduling quantum.

Costs are in platform cycles at 100 MHz; component values follow the
published overhead characterisations the paper builds on (trap-and-
emulate round trips cost microseconds; para-virtual forwarding costs
tens of cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class SoftwareStackModel:
    """Timing description of one system's software I/O path."""

    name: str
    #: Application -> I/O subsystem software cycles (fixed part).
    request_path_cycles: int
    #: I/O subsystem -> application software cycles.
    response_path_cycles: int
    #: Relative jitter on the software path (scheduling noise inside the
    #: guest/VMM), as a fraction of the fixed cost.
    path_jitter: float
    #: VMM scheduling quantum in cycles; requests issued mid-quantum
    #: wait for the VMM's next I/O dispatch (0 = no VMM batching).
    vmm_quantum_cycles: int
    #: Extra software cycles per operation that scale with system load
    #: (cache/TLB pressure from co-running VMs).
    load_sensitivity_cycles: int

    def request_delay(self, load: float, rng: RandomSource) -> float:
        """Sample the software delay for one request at a given load."""
        return self._path_delay(self.request_path_cycles, load, rng)

    def response_delay(self, load: float, rng: RandomSource) -> float:
        """Sample the software delay for one response at a given load."""
        return self._path_delay(self.response_path_cycles, load, rng)

    def _path_delay(self, base: int, load: float, rng: RandomSource) -> float:
        if load < 0:
            raise ValueError(f"negative load: {load}")
        delay = base + self.load_sensitivity_cycles * min(load, 1.5)
        if self.path_jitter > 0:
            delay *= 1.0 + rng.uniform(0, self.path_jitter)
        if self.vmm_quantum_cycles > 0:
            # Uniform residual of the VMM dispatch quantum.
            delay += rng.uniform(0, self.vmm_quantum_cycles)
        return delay

    def worst_request_delay(self, load: float) -> float:
        """Deterministic upper envelope of :meth:`request_delay`."""
        delay = self.request_path_cycles + self.load_sensitivity_cycles * min(
            load, 1.5
        )
        delay *= 1.0 + self.path_jitter
        return delay + self.vmm_quantum_cycles


#: The four evaluated software organisations.
STACK_MODELS: Dict[str, SoftwareStackModel] = {
    # Legacy: syscall + kernel I/O manager + low-level driver, no
    # virtualization layers.
    "legacy": SoftwareStackModel(
        name="legacy",
        request_path_cycles=850,
        response_path_cycles=600,
        path_jitter=0.20,
        vmm_quantum_cycles=0,
        load_sensitivity_cycles=400,
    ),
    # RT-Xen: guest kernel + trap into VMM + backend driver domain.
    # Trap-and-return alone is ~1-2 us (100-200 cycles x privilege
    # switches); the backend adds a scheduling quantum (1 ms default
    # RTDS quantum scaled down to the 100 MHz platform: 10 us = 1000
    # cycles of dispatch granularity).
    "rt-xen": SoftwareStackModel(
        name="rt-xen",
        request_path_cycles=3600,
        response_path_cycles=2400,
        path_jitter=0.35,
        vmm_quantum_cycles=1000,
        load_sensitivity_cycles=1500,
    ),
    # BlueVisor: requests forwarded to the hardware hypervisor by a thin
    # stub; no trap, small fixed cost.
    "bv": SoftwareStackModel(
        name="bv",
        request_path_cycles=300,
        response_path_cycles=250,
        path_jitter=0.10,
        vmm_quantum_cycles=0,
        load_sensitivity_cycles=150,
    ),
    # I/O-GUARD: para-virtual driver writes the request descriptor and
    # rings a doorbell -- "the implementation of I/O drivers is
    # straightforward, as they only forward the I/O requests" (Sec. II-A).
    "ioguard": SoftwareStackModel(
        name="ioguard",
        request_path_cycles=90,
        response_path_cycles=80,
        path_jitter=0.05,
        vmm_quantum_cycles=0,
        load_sensitivity_cycles=40,
    ),
}


def stack_for(system: str) -> SoftwareStackModel:
    """Look up a stack model, with a helpful error for typos."""
    try:
        return STACK_MODELS[system]
    except KeyError:
        raise KeyError(
            f"unknown system {system!r}; expected one of {sorted(STACK_MODELS)}"
        ) from None
