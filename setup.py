"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP-517 editable installs fail on ``bdist_wheel``.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` work offline;
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
