#!/usr/bin/env python3
"""Reduced-scale Fig. 7 case study (Sec. V-C of the paper).

Runs the automotive workload (20 safety + 20 function tasks plus
synthetic padding) across all five systems at a handful of target
utilizations and prints success ratios and throughput.  The full sweep
lives in ``benchmarks/test_bench_fig7.py`` and ``python -m repro.exp
fig7``; this example keeps the runtime to roughly a minute.
"""

from repro.exp.fig7 import CaseStudyConfig, render_fig7, run_case_study


def main() -> None:
    config = CaseStudyConfig(
        utilizations=(0.40, 0.60, 0.70, 0.80, 1.00),
        vm_groups=(4,),
        trials=4,
        horizon_slots=30_000,
        use_env_scale=False,
    )
    result = run_case_study(config)
    print(render_fig7(result))

    print("\nExpected shape checks (paper Obs 3 / Obs 4):")
    io70 = result.success_curve(4, "ioguard-70")
    io40 = result.success_curve(4, "ioguard-40")
    rtxen = result.success_curve(4, "rt-xen")
    bv = result.success_curve(4, "bv")
    print(f"  I/O-GUARD-70 success at U=1.0: {io70[1.0]:.2f} (stays high)")
    print(f"  I/O-GUARD-40 success at U=1.0: {io40[1.0]:.2f}")
    print(f"  RT-XEN success at U=0.8:       {rtxen[0.8]:.2f} (past its cliff)")
    print(f"  BV success at U=0.8:           {bv[0.8]:.2f} (past its cliff)")


if __name__ == "__main__":
    main()
