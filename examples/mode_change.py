#!/usr/bin/env python3
"""Mode changes and schedule inspection.

A vehicle transitions from *cruise* to *parking* mode: the pre-defined
I/O schedule swaps atomically at a hyper-period boundary while sporadic
R-channel traffic keeps flowing.  The schedule tracer renders the
slot-by-slot timeline so the swap is visible.
"""

from repro.core import ServerSpec
from repro.core.modes import Mode, ModeManager
from repro.core.rchannel import RChannel
from repro.exp.schedule_trace import ScheduleTracer
from repro.tasks import IOTask, TaskKind, TaskSet


def predefined(name, period, wcet):
    return IOTask(name=name, period=period, wcet=wcet, kind=TaskKind.PREDEFINED)


def main() -> None:
    # -- two operating modes ------------------------------------------------
    cruise = Mode.build(
        "cruise",
        TaskSet([predefined("radar_sweep", 20, 3),
                 predefined("lane_cam", 40, 5)]),
    )
    parking = Mode.build(
        "parking",
        TaskSet([predefined("sonar_ring", 10, 2),
                 predefined("rear_cam", 40, 8)]),
    )
    # Server (10, 3): worst-case blackout 2*(10-3)=14 slots, short
    # enough for the 25-slot-deadline sporadic diagnostics below.
    servers = [ServerSpec(0, 10, 3)]
    manager = ModeManager(
        {"cruise": cruise, "parking": parking},
        initial="cruise",
        servers=servers,
    )
    print(f"modes validated against servers {[(s.pi, s.theta) for s in servers]}")
    print(f"cruise table:  H={cruise.table.total_slots}, "
          f"F={cruise.table.free_slots}")
    print(f"parking table: H={parking.table.total_slots}, "
          f"F={parking.table.free_slots}")

    # -- run with sporadic traffic and a mode change at slot 30 -------------
    rchannel = RChannel(servers)
    sporadic = IOTask(name="diag_query", period=25, wcet=2, vm_id=0)
    strip = []
    completed = []
    horizon = 120
    for slot in range(horizon):
        if slot == 30:
            change = manager.request_mode("parking", slot)
            print(f"\nslot {slot}: requested parking mode "
                  f"(effective at slot {change.effective_slot})")
        swapped = manager.tick(slot)
        if swapped:
            print(f"slot {slot}: >>> now in {swapped} mode <<<")
        if slot % sporadic.period == 0:
            rchannel.submit(sporadic.job(release=slot, index=slot // 25))
        rchannel.tick(slot)
        if manager.occupies(slot):
            job = manager.execute_slot(slot)
            strip.append("P")
        else:
            job = rchannel.execute_slot(slot)
            strip.append("R" if job or rchannel.last_allocation else ".")
        if job is not None:
            completed.append(job)

    print("\nslot timeline (P=pre-defined, R=run-time grant, .=idle):")
    for start in range(0, horizon, 40):
        print(f"  {start:4d}: {''.join(strip[start:start + 40])}")

    misses = [job for job in completed if job.met_deadline() is False]
    print(f"\ncompleted {len(completed)} jobs across the transition, "
          f"misses: {len(misses)}")
    assert not misses
    print("mode change demo OK")


if __name__ == "__main__":
    main()
