#!/usr/bin/env python3
"""Schedulability analysis walkthrough (Sec. IV of the paper).

Demonstrates every analytic piece on a worked example, all imported
from the ``repro.api`` facade:

* the Time Slot Table sigma* and its supply bound function (Eqs. 1-2),
* periodic-server supply (Eq. 8) and demand (Eqs. 3, 9),
* the G-Sched test (Theorems 1 + 2) with the pseudo-polynomial horizon,
* the L-Sched test (Theorems 3 + 4) and minimum-budget server design,
* an acceptance-ratio experiment: the fraction of random task systems
  each test admits as utilization grows (the classic schedulability
  plot), run on both analysis engines to show they agree.
"""

import time

from repro.api import (
    TimeSlotTable,
    dbf_server,
    dbf_sporadic,
    generate_random_taskset,
    gsched_schedulable,
    gsched_schedulable_exact,
    lsched_schedulable,
    minimum_budget,
    sbf_server,
    sbf_sigma,
    theorem2_bound,
    theorem4_bound,
    use_engine,
)


def slot_table_demo() -> TimeSlotTable:
    print("=== Time Slot Table sigma* ===")
    # A 20-slot hyper-period with 6 slots taken by P-channel jobs.
    table = TimeSlotTable.from_pattern(
        [1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 1, 0, 0]
    )
    print(f"H={table.total_slots}, F={table.free_slots}")
    for t in (0, 5, 10, 20, 45):
        print(f"  sbf(sigma, {t:2d}) = {sbf_sigma(table, t)}")
    return table


def server_functions_demo() -> None:
    print("\n=== Periodic server Gamma = (Pi=10, Theta=4) ===")
    for t in (0, 6, 10, 16, 25, 40):
        print(
            f"  t={t:2d}: sbf={sbf_server(10, 4, t):2d}  "
            f"dbf={dbf_server(10, 4, t):2d}"
        )


def gsched_demo(table: TimeSlotTable) -> None:
    print("\n=== G-Sched: Theorems 1 and 2 ===")
    servers = [(10, 3), (14, 4)]
    bound = theorem2_bound(table, servers)
    fast = gsched_schedulable(table, servers)
    exact = gsched_schedulable_exact(table, servers)
    print(f"  servers={servers}, Theorem-2 horizon={bound}")
    print(f"  Theorem 2 verdict: {fast.schedulable} (checked t < {fast.horizon})")
    print(f"  Theorem 1 verdict: {exact.schedulable} (checked t <= {exact.horizon})")
    assert fast.schedulable == exact.schedulable


def lsched_demo() -> None:
    print("\n=== L-Sched: Theorems 3, 4 and server design ===")
    tasks = generate_random_taskset(
        seed=7, task_count=4, total_utilization=0.25, name="vm0"
    )
    for task in tasks:
        print(
            f"  {task.name}: T={task.period} C={task.wcet} D={task.deadline} "
            f"(dbf at D: {dbf_sporadic(task, task.deadline)})"
        )
    pi = 20
    theta = minimum_budget(pi, tasks)
    print(f"  minimum budget for Pi={pi}: Theta={theta}")
    result = lsched_schedulable(pi, theta, tasks)
    print(
        f"  Theorem 4 verdict with ({pi}, {theta}): {result.schedulable} "
        f"(horizon {theorem4_bound(pi, theta, tasks)})"
    )
    tight = lsched_schedulable(pi, theta - 1, tasks) if theta > 1 else None
    if tight is not None:
        print(f"  with Theta={theta - 1}: {tight.schedulable} (minimality check)")


def acceptance_ratio_experiment() -> None:
    """The classic acceptance plot, run once per analysis engine.

    The vectorized engine (QPA descent + numpy step-point sweeps) must
    agree with the scalar reference on every single verdict; it earns
    its keep on the larger near-boundary systems.
    """
    print("\n=== Acceptance ratio vs utilization (Theorem 4) ===")
    pi, theta = 20, 14  # a 70%-bandwidth server
    samples = 40
    for engine_name in ("scalar", "vectorized"):
        started = time.perf_counter()
        rows = []
        with use_engine(engine_name):
            for utilization in (0.3, 0.4, 0.5, 0.6, 0.7):
                accepted = 0
                for seed in range(samples):
                    tasks = generate_random_taskset(
                        seed=1000 + seed,
                        task_count=5,
                        total_utilization=utilization,
                        name=f"u{utilization}s{seed}",
                    )
                    if lsched_schedulable(pi, theta, tasks).schedulable:
                        accepted += 1
                rows.append((utilization, accepted))
        elapsed = time.perf_counter() - started
        print(f"  engine={engine_name} ({elapsed * 1000:.1f} ms):")
        for utilization, accepted in rows:
            print(
                f"    U={utilization:.1f}: accepted {accepted}/{samples} "
                f"({100 * accepted / samples:.0f}%)"
            )


def main() -> None:
    table = slot_table_demo()
    server_functions_demo()
    gsched_demo(table)
    lsched_demo()
    acceptance_ratio_experiment()
    print("\nschedulability walkthrough complete")


if __name__ == "__main__":
    main()
