#!/usr/bin/env python3
"""Software overhead: Fig. 6 plus the structural kernel comparison.

Renders the run-time memory-footprint table (Fig. 6) and then drills
into *why* the numbers differ, using the structural RTOS model: the
legacy I/O path crosses the kernel (syscall, I/O manager, buffers,
driver) while the I/O-GUARD path is a single unprivileged forwarding
call (Fig. 3(a) vs 3(b)).
"""

from repro.exp.fig6 import render_fig6
from repro.virt.rtos import compare_kernels, ioguard_kernel, legacy_kernel


def main() -> None:
    print(render_fig6())

    print("\nStructural comparison of the I/O path (Fig. 3):")
    legacy = legacy_kernel()
    ioguard = ioguard_kernel()
    print(f"  legacy path:   {' -> '.join(legacy.io_path)}")
    print(f"  ioguard path:  {' -> '.join(ioguard.io_path)}")
    comparison = compare_kernels()
    for name, (cycles, text, crossings) in comparison.items():
        print(
            f"  {name:8s} I/O path {cycles:4d} cycles, kernel text "
            f"{text / 1024:5.1f} KB, {crossings} kernel crossing(s) per I/O"
        )

    legacy_cycles = comparison["legacy"][0]
    ioguard_cycles = comparison["ioguard"][0]
    print(
        f"\nthe forwarding driver is {legacy_cycles / ioguard_cycles:.1f}x "
        "cheaper per request and never enters the kernel"
    )
    assert ioguard_cycles < legacy_cycles
    assert not ioguard.io_path_enters_kernel()
    print("software overhead walkthrough OK")


if __name__ == "__main__":
    main()
