#!/usr/bin/env python3
"""Quickstart: build an I/O-GUARD system, prove it schedulable, run it.

Walks the three core steps a user of the library takes, all through the
``repro.api`` facade:

1. describe the I/O workload (pre-defined + run-time tasks),
2. run the schedulability analysis (Sec. IV of the paper),
3. execute the hypervisor and confirm the analysis held.
"""

from repro.api import (
    Criticality,
    IOTask,
    SystemConfig,
    TaskKind,
    analyze,
    build_system,
    simulate,
)


def build_tasks() -> list:
    """Two VMs sharing one SPI device.

    VM 0 runs a pre-defined (P-channel) periodic sensor poll plus a
    sporadic command task; VM 1 runs two sporadic tasks.  Units are
    hypervisor time slots (10 us at the default configuration).
    """
    return [
        IOTask(
            name="sensor_poll",
            period=50,
            wcet=4,
            vm_id=0,
            kind=TaskKind.PREDEFINED,
            criticality=Criticality.SAFETY,
            device="spi0",
            payload_bytes=16,
        ),
        IOTask(
            name="vm0_command",
            period=80,
            wcet=6,
            vm_id=0,
            kind=TaskKind.RUNTIME,
            criticality=Criticality.SAFETY,
            device="spi0",
            payload_bytes=32,
        ),
        IOTask(
            name="vm1_telemetry",
            period=120,
            wcet=10,
            vm_id=1,
            kind=TaskKind.RUNTIME,
            criticality=Criticality.FUNCTION,
            device="spi0",
            payload_bytes=64,
        ),
        IOTask(
            name="vm1_logging",
            period=200,
            wcet=12,
            vm_id=1,
            kind=TaskKind.RUNTIME,
            criticality=Criticality.FUNCTION,
            device="spi0",
            payload_bytes=64,
        ),
    ]


def main() -> None:
    # -- step 1: describe the system ---------------------------------------
    # SPI is slow (10 MHz SCLK): one small transaction takes ~1200 cycles
    # end to end, so this device needs a 2000-cycle (20 us) slot -- the
    # simulation validates this budget when attaching the device.
    config = SystemConfig(
        tasks=build_tasks(), name="quickstart", cycles_per_slot=2_000
    )
    system = build_system(config)
    print(f"task set: {system.tasks.summary()}")

    # -- step 2: analysis (Theorems 2 + 4) ---------------------------------
    report = analyze(system)
    print(report.summary())
    assert report.schedulable, report.reason
    print(
        "designed servers: "
        f"{[(s.vm_id, s.pi, s.theta) for s in system.servers]}"
    )

    # -- step 3: run 2000 slots (20 ms) with periodic run-time releases ----
    run = simulate(system, horizon=2_000)
    print(run.summary())
    assert bool(run), "analysis promised schedulability; simulation disagrees"
    print("quickstart OK: analysis verdict confirmed by execution")


if __name__ == "__main__":
    main()
