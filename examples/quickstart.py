#!/usr/bin/env python3
"""Quickstart: build an I/O-GUARD system, prove it schedulable, run it.

Walks the three core steps a user of the library takes:

1. describe the I/O workload (pre-defined + run-time tasks),
2. run the schedulability analysis (Sec. IV of the paper),
3. execute the hypervisor and confirm the analysis held.
"""

from repro.analysis import analyze_system
from repro.core import (
    HypervisorConfig,
    IOGuardHypervisor,
    ServerSpec,
    VirtualizationDriver,
)
from repro.hw import EchoDevice, SPIController
from repro.tasks import Criticality, IOTask, TaskKind, TaskSet


def build_taskset() -> TaskSet:
    """Two VMs sharing one SPI device.

    VM 0 runs a pre-defined (P-channel) periodic sensor poll plus a
    sporadic command task; VM 1 runs two sporadic tasks.  Units are
    hypervisor time slots (10 us at the default configuration).
    """
    return TaskSet(
        [
            IOTask(
                name="sensor_poll",
                period=50,
                wcet=4,
                vm_id=0,
                kind=TaskKind.PREDEFINED,
                criticality=Criticality.SAFETY,
                device="spi0",
                payload_bytes=16,
            ),
            IOTask(
                name="vm0_command",
                period=80,
                wcet=6,
                vm_id=0,
                kind=TaskKind.RUNTIME,
                criticality=Criticality.SAFETY,
                device="spi0",
                payload_bytes=32,
            ),
            IOTask(
                name="vm1_telemetry",
                period=120,
                wcet=10,
                vm_id=1,
                kind=TaskKind.RUNTIME,
                criticality=Criticality.FUNCTION,
                device="spi0",
                payload_bytes=64,
            ),
            IOTask(
                name="vm1_logging",
                period=200,
                wcet=12,
                vm_id=1,
                kind=TaskKind.RUNTIME,
                criticality=Criticality.FUNCTION,
                device="spi0",
                payload_bytes=64,
            ),
        ],
        name="quickstart",
    )


def main() -> None:
    taskset = build_taskset()
    print(f"task set: {taskset.summary()}")

    # -- step 1: analysis (Theorems 2 + 4) ---------------------------------
    verdict = analyze_system(taskset)
    print(f"schedulable: {verdict.schedulable}")
    assert verdict.schedulable, verdict.reason
    servers = [
        ServerSpec(vm_id, pi, theta)
        for vm_id, (pi, theta) in sorted(verdict.design.servers.items())
    ]
    print(f"designed servers: {[(s.vm_id, s.pi, s.theta) for s in servers]}")

    # -- step 2: build the hypervisor --------------------------------------
    # SPI is slow (10 MHz SCLK): one small transaction takes ~1200 cycles
    # end to end, so this device needs a 2000-cycle (20 us) slot -- the
    # hypervisor validates this budget at attach time.
    hypervisor = IOGuardHypervisor(HypervisorConfig(cycles_per_slot=2_000))
    driver = VirtualizationDriver(SPIController("spi0"), EchoDevice("eeprom"))
    hypervisor.attach_device(
        "spi0", driver, taskset.predefined(), servers
    )

    # -- step 3: run 2000 slots (20 ms) with periodic run-time releases ----
    horizon = 2_000
    releases = []
    for task in taskset.runtime():
        k = 0
        while k * task.period < horizon:
            releases.append((k * task.period, task, k))
            k += 1
    releases.sort(key=lambda entry: entry[0])
    cursor = 0
    for slot in range(horizon):
        while cursor < len(releases) and releases[cursor][0] == slot:
            _slot, task, index = releases[cursor]
            hypervisor.submit(task.job(release=slot, index=index))
            cursor += 1
        hypervisor.step(slot)

    completed = hypervisor.completed_jobs
    misses = [job for job in completed if job.met_deadline() is False]
    print(f"completed {len(completed)} jobs, deadline misses: {len(misses)}")
    assert not misses, "analysis promised schedulability; simulation disagrees"
    print("quickstart OK: analysis verdict confirmed by execution")


if __name__ == "__main__":
    main()
