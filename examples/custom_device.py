#!/usr/bin/env python3
"""Extending the library: a custom I/O controller and device.

Shows the extension points a downstream user has:

* subclass :class:`~repro.hw.controller.IOController` for a new link
  protocol (here: a LIN bus at 19.2 kbit/s),
* subclass :class:`~repro.hw.devices.IODevice` for device-side behaviour
  (a window-lift actuator that acks commands),
* attach both to the hypervisor through a standard
  :class:`~repro.core.driver.VirtualizationDriver` and run traffic.
"""

from repro.core import (
    HypervisorConfig,
    IOGuardHypervisor,
    ServerSpec,
    VirtualizationDriver,
)
from repro.core.driver import DRIVER_CODE_BYTES
from repro.hw import ActuatorDevice, IOController
from repro.tasks import Criticality, IOTask, TaskKind, TaskSet


class LINController(IOController):
    """LIN bus: single-wire automotive link at 19.2 kbit/s."""

    bitrate_bps = 19_200
    overhead_cycles = 45
    frame_overhead_bytes = 4  # sync + PID + checksum
    protocol = "lin"


def main() -> None:
    # Register a footprint for the new protocol's driver code bank.
    DRIVER_CODE_BYTES.setdefault("lin", 2 * 1024)

    controller = LINController("lin0")
    window_lift = ActuatorDevice("window_lift", service_cycles=300)
    driver = VirtualizationDriver(controller, window_lift)

    payload = 8
    wcet_cycles = driver.wcet_cycles(payload)
    print(f"LIN operation WCET for {payload} B: {wcet_cycles} cycles")

    # LIN is very slow: request + ack of an 8-byte frame serialises for
    # ~750k cycles (7.5 ms), so this device runs with a coarse ~10 ms
    # slot.
    slot = 1_048_576
    assert driver.fits_slot(payload, slot)
    hypervisor = IOGuardHypervisor(HypervisorConfig(cycles_per_slot=slot))

    tasks = TaskSet(
        [
            IOTask(
                name="window_command",
                period=30,  # ~300 ms at this slot size
                wcet=1,
                vm_id=0,
                kind=TaskKind.RUNTIME,
                criticality=Criticality.FUNCTION,
                device="lin0",
                payload_bytes=payload,
            )
        ],
        name="lin-demo",
    )
    hypervisor.attach_device(
        "lin0",
        driver,
        tasks.predefined(),
        [ServerSpec(vm_id=0, pi=10, theta=5)],
    )

    task = tasks["window_command"]
    for slot_index in range(300):
        if slot_index % task.period == 0:
            hypervisor.submit(
                task.job(release=slot_index, index=slot_index // task.period)
            )
        hypervisor.step(slot_index)
        # Drive the device model alongside the scheduler so the
        # controller statistics accumulate.
        if hypervisor.completed_jobs and hypervisor.completed_jobs[-1].metadata.get(
            "driven"
        ) is None:
            job = hypervisor.completed_jobs[-1]
            driver.execute_operation(job.task.payload_bytes)
            job.metadata["driven"] = True

    completed = hypervisor.completed_jobs
    misses = [job for job in completed if job.met_deadline() is False]
    print(
        f"completed {len(completed)} window commands, misses: {len(misses)}, "
        f"controller moved {controller.bytes_moved} B in "
        f"{controller.transfers} transfers"
    )
    assert not misses
    print("custom device demo OK")


if __name__ == "__main__":
    main()
