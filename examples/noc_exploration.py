#!/usr/bin/env python3
"""Flit-level NoC exploration.

Drives the event-driven mesh network directly (the substrate the legacy
baseline's contention behaviour is calibrated against):

* XY-routed delivery across the 5x5 mesh,
* hotspot congestion toward the I/O corner as load rises,
* calibration of the closed-form latency model and a comparison of its
  predictions against the event-driven measurements.
"""

from repro.noc import (
    MeshTopology,
    NocNetwork,
    Packet,
    PacketKind,
    calibrate_latency_model,
    xy_route,
)
from repro.sim import Simulator, Timeout
from repro.sim.rng import RandomSource


def basic_delivery() -> None:
    print("=== XY routing across a 5x5 mesh ===")
    mesh = MeshTopology(5, 5)
    route = xy_route(mesh, (0, 0), (4, 3))
    print(f"route (0,0)->(4,3): {route} ({len(route) - 1} hops)")

    sim = Simulator()
    network = NocNetwork(sim, topology=mesh)
    for payload in (4, 64, 256):
        packet = Packet(
            source=(0, 0),
            destination=(4, 3),
            kind=PacketKind.REQUEST,
            payload_bytes=payload,
        )
        network.inject(packet)
    sim.run()
    for record in network.delivered:
        print(
            f"  {record.packet.payload_bytes:4d} B "
            f"({record.packet.flit_count:3d} flits): "
            f"{record.total_latency:.0f} cycles over {record.hops} hops"
        )


def hotspot_congestion() -> None:
    print("\n=== Hotspot congestion toward the I/O corner ===")
    rng = RandomSource(11, "hotspot")
    for load in (0.2, 0.5, 0.8):
        sim = Simulator()
        mesh = MeshTopology(5, 5)
        network = NocNetwork(sim, topology=mesh)
        hotspot = (4, 4)
        sources = [node for node in mesh.nodes() if node != hotspot]
        flits = 1 + 64 // 4
        hold = network.router_latency + flits
        gap = hold / load

        def injector():
            for _ in range(400):
                yield Timeout(max(1.0, rng.expovariate(1.0 / gap)))
                network.inject(
                    Packet(
                        source=rng.choice(sources),
                        destination=hotspot,
                        kind=PacketKind.REQUEST,
                        payload_bytes=64,
                    )
                )

        sim.process(injector(), name="injector")
        sim.run()
        print(
            f"  load={load:.1f}: mean latency {network.mean_latency():7.1f}, "
            f"max {network.max_latency():7.1f}, "
            f"mean queueing {network.mean_queueing():6.1f} cycles"
        )


def model_vs_measurement() -> None:
    print("\n=== Closed-form model vs event-driven measurement ===")
    model = calibrate_latency_model(seed=3, packets_per_load=200)
    print(f"calibrated contention gain: {model.contention_gain:.3f}")
    flits = 1 + 64 // 4
    for load in (0.1, 0.4, 0.7):
        prediction = model.mean_latency(hops=8, flits=flits, load=load)
        print(f"  load={load:.1f}: predicted 8-hop latency {prediction:.0f} cycles")


def main() -> None:
    basic_delivery()
    hotspot_congestion()
    model_vs_measurement()
    print("\nNoC exploration complete")


if __name__ == "__main__":
    main()
