#!/usr/bin/env python3
"""Online admission control over the two-layer scheduler.

A mode change in a vehicle (entering a parking-assist mode, starting a
diagnostic session) registers new sporadic I/O tasks at run time.  The
admission controller re-runs the Theorem-4 test per request, so admitted
sets always keep the full Sec. IV guarantee -- and the guarantee is then
*demonstrated* by executing the admitted workload on the hypervisor
R-channel without a single deadline miss.
"""

from repro.core import ServerSpec
from repro.core.admission import AdmissionController
from repro.core.rchannel import RChannel
from repro.core.timeslot import TimeSlotTable
from repro.tasks import IOTask


def main() -> None:
    # A hypervisor configuration with a half-loaded P-channel table and
    # two VMs: a 40%-bandwidth control VM and a 30%-bandwidth infotainment
    # VM (slots of 10 us).
    table = TimeSlotTable.from_pattern([1, 0, 0, 1, 0, 0, 0, 0, 0, 0])
    servers = [ServerSpec(0, 20, 8), ServerSpec(1, 20, 6)]
    controller = AdmissionController(table, servers)

    requests = [
        IOTask(name="steering_assist", period=100, wcet=8, vm_id=0),
        IOTask(name="park_sensors", period=200, wcet=20, vm_id=0),
        IOTask(name="camera_feed", period=150, wcet=45, vm_id=0),  # too heavy
        IOTask(name="media_stream", period=250, wcet=25, vm_id=1),
        IOTask(name="nav_updates", period=500, wcet=30, vm_id=1),
        IOTask(name="voice_assist", period=200, wcet=40, vm_id=1),  # too heavy
    ]
    print("admission sequence:")
    for task in requests:
        decision = controller.try_admit(task)
        verdict = "ADMIT " if decision.admitted else "REJECT"
        print(f"  {verdict} {task.name:16s} "
              f"(T={task.period}, C={task.wcet}, VM{task.vm_id}) "
              f"- {decision.reason}")

    print(
        f"\nadmitted {controller.admitted_count}, "
        f"rejected {controller.rejected_count}"
    )
    for vm_id in (0, 1):
        print(
            f"  VM{vm_id}: utilization "
            f"{controller.vm_utilization(vm_id):.3f} under server "
            f"{controller.server_of(vm_id).pi, controller.server_of(vm_id).theta}"
        )

    # -- prove it: run the admitted workload on the R-channel -------------
    rchannel = RChannel(servers)
    admitted = [
        task
        for vm_id in (0, 1)
        for task in controller.admitted_tasks(vm_id)
    ]
    horizon = 2_000
    releases = []
    for task in admitted:
        k = 0
        while k * task.period < horizon:
            releases.append((k * task.period, task, k))
            k += 1
    releases.sort(key=lambda entry: entry[0])
    cursor = 0
    misses = 0
    completed = 0
    for slot in range(horizon):
        while cursor < len(releases) and releases[cursor][0] == slot:
            _s, task, index = releases[cursor]
            rchannel.submit(task.job(release=slot, index=index))
            cursor += 1
        rchannel.tick(slot)
        # Only free slots of the table reach the R-channel.
        if table.is_free(slot):
            job = rchannel.execute_slot(slot)
            if job is not None:
                completed += 1
                if slot + 1 > job.absolute_deadline:
                    misses += 1
    print(f"\nexecuted admitted set: {completed} jobs, {misses} misses")
    assert misses == 0, "admission promised schedulability"
    print("admission control demo OK")


if __name__ == "__main__":
    main()
