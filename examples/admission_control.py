#!/usr/bin/env python3
"""Online admission control over the two-layer scheduler.

A mode change in a vehicle (entering a parking-assist mode, starting a
diagnostic session) registers new sporadic I/O tasks at run time.  The
``repro.api`` facade routes each request through the incremental
Theorem-4 admission test, so admitted sets always keep the full Sec. IV
guarantee -- and the guarantee is then *demonstrated* by executing the
admitted workload on the hypervisor without a single deadline miss.
"""

from repro.api import (
    IOTask,
    ServerConfig,
    SystemConfig,
    admit,
    build_system,
    simulate,
)


def main() -> None:
    # A hypervisor configuration with a half-loaded P-channel table and
    # two VMs: a 40%-bandwidth control VM and a 30%-bandwidth infotainment
    # VM (slots of 10 us).
    system = build_system(
        SystemConfig(
            name="admission-demo",
            table_pattern=[1, 0, 0, 1, 0, 0, 0, 0, 0, 0],
            servers=[ServerConfig(0, 20, 8), ServerConfig(1, 20, 6)],
        )
    )

    requests = [
        IOTask(name="steering_assist", period=100, wcet=8, vm_id=0),
        IOTask(name="park_sensors", period=200, wcet=20, vm_id=0),
        IOTask(name="camera_feed", period=150, wcet=45, vm_id=0),  # too heavy
        IOTask(name="media_stream", period=250, wcet=25, vm_id=1),
        IOTask(name="nav_updates", period=500, wcet=30, vm_id=1),
        IOTask(name="voice_assist", period=200, wcet=40, vm_id=1),  # too heavy
    ]
    print("admission sequence:")
    for task in requests:
        decision = admit(system, task)
        verdict = "ADMIT " if decision.schedulable else "REJECT"
        print(f"  {verdict} {task.name:16s} "
              f"(T={task.period}, C={task.wcet}, VM{task.vm_id}) "
              f"- {decision.reason}")

    controller = system.controller
    print(
        f"\nadmitted {controller.admitted_count}, "
        f"rejected {controller.rejected_count}"
    )
    for vm_id in (0, 1):
        server = system.server_for(vm_id)
        print(
            f"  VM{vm_id}: utilization "
            f"{controller.vm_utilization(vm_id):.3f} under server "
            f"{server.pi, server.theta}"
        )

    # -- prove it: run the admitted workload -------------------------------
    run = simulate(system, horizon=2_000)
    print(
        f"\nexecuted admitted set: {run.completed} jobs, "
        f"{run.deadline_misses} misses"
    )
    assert bool(run), "admission promised schedulability"
    print("admission control demo OK")


if __name__ == "__main__":
    main()
