#!/usr/bin/env python3
"""Worst-case NoC latency bounds for a sensor-fusion flow set.

The hypervisor guarantees I/O scheduling; the request still has to
cross the mesh.  This example registers the I/O flows of a small
sensor-fusion deployment, computes each flow's static worst-case
latency (link-contention bound), identifies the bottleneck link, and
validates the bounds against the event-driven network under maximum
pressure.
"""

from repro.noc import (
    Flow,
    MeshTopology,
    NocContentionAnalysis,
    NocNetwork,
    Packet,
    PacketKind,
)
from repro.sim import Simulator, Timeout


def build_flows():
    """Four processors streaming toward the hypervisor at (4, 4)."""
    return [
        Flow("lidar", source=(0, 0), destination=(4, 4), payload_bytes=256),
        Flow("radar", source=(0, 4), destination=(4, 4), payload_bytes=64),
        Flow("camera", source=(2, 0), destination=(4, 4), payload_bytes=512),
        Flow("imu", source=(4, 0), destination=(4, 4), payload_bytes=16),
    ]


def main() -> None:
    mesh = MeshTopology(5, 5)
    analysis = NocContentionAnalysis(topology=mesh)
    flows = build_flows()
    for flow in flows:
        analysis.add_flow(flow)

    print("static worst-case latency bounds (cycles):")
    bounds = analysis.all_bounds()
    for name, bound in sorted(bounds.items()):
        print(
            f"  {name:7s} hops={bound.hops} base={bound.base_cycles:4d} "
            f"interference={bound.interference_cycles:4d} "
            f"WCL={bound.worst_case_cycles:4d}"
        )
    link, sharers = analysis.bottleneck_link()
    print(f"bottleneck link {link[0]}->{link[1]} shared by {sharers}")

    # -- validate against the event network at maximum pressure ------------
    sim = Simulator()
    network = NocNetwork(sim, topology=mesh)
    worst = {flow.name: 0.0 for flow in flows}

    def sender(flow):
        for _ in range(40):
            packet = Packet(
                source=flow.source,
                destination=flow.destination,
                kind=PacketKind.REQUEST,
                payload_bytes=flow.payload_bytes,
            )
            done = {"flag": False}
            network.inject(packet, on_delivered=lambda p: done.update(flag=True))
            while not done["flag"]:
                yield Timeout(1)
            worst[flow.name] = max(worst[flow.name], packet.latency)

    for flow in flows:
        sim.process(sender(flow), name=flow.name)
    sim.run()

    print("\nobserved worst latency vs bound:")
    for flow in flows:
        bound = bounds[flow.name].worst_case_cycles
        observed = worst[flow.name]
        print(
            f"  {flow.name:7s} observed={observed:6.0f}  bound={bound:4d}  "
            f"({100 * observed / bound:5.1f}% of bound)"
        )
        assert observed <= bound, flow.name
    print("\nall observations within their static bounds - NoC analysis OK")


if __name__ == "__main__":
    main()
