"""Unit tests for the memory-footprint model (Fig. 6)."""

import pytest

from repro.virt.footprint import (
    DRIVER_SET,
    Footprint,
    IO_DRIVER_FOOTPRINTS,
    SYSTEMS,
    overhead_vs_legacy,
    system_footprints,
)


class TestFootprint:
    def test_total(self):
        fp = Footprint(text=100, data=20, bss=30)
        assert fp.total == 150
        assert fp.total_kb == pytest.approx(150 / 1024)

    def test_addition(self):
        a = Footprint(1, 2, 3)
        b = Footprint(10, 20, 30)
        assert (a + b).total == 66

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Footprint(-1, 0, 0)


class TestSystemFootprints:
    def test_all_systems_compose(self):
        for system in SYSTEMS:
            report = system_footprints(system)
            assert set(report.drivers) == set(DRIVER_SET)
            assert report.grand_total > 0

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            system_footprints("vmware")

    def test_unknown_driver(self):
        with pytest.raises(KeyError):
            system_footprints("legacy", drivers=("pcie",))

    def test_rows_shape(self):
        rows = system_footprints("legacy").rows()
        assert rows[0][0] == "hypervisor"
        assert rows[1][0] == "os-kernel"
        assert len(rows) == 2 + len(DRIVER_SET)
        for row in rows:
            _name, text, data, bss, total = row
            assert total == text + data + bss


class TestPaperShape:
    """Obs 1 of the paper, as assertable inequalities."""

    def test_rtxen_adds_129_8_percent(self):
        assert overhead_vs_legacy("rt-xen") == pytest.approx(1.298, abs=0.01)

    def test_hardware_assisted_cheaper_than_software(self):
        rtxen = system_footprints("rt-xen").core_total
        bv = system_footprints("bv").core_total
        ioguard = system_footprints("ioguard").core_total
        assert ioguard < bv < rtxen

    def test_ioguard_eliminates_vmm_software(self):
        report = system_footprints("ioguard")
        assert report.hypervisor.total == 0

    def test_ioguard_kernel_smaller_than_legacy(self):
        # The I/O manager is removed from the kernel (Fig. 3(b)).
        legacy = system_footprints("legacy").kernel.total
        ioguard = system_footprints("ioguard").kernel.total
        assert ioguard < legacy

    @pytest.mark.parametrize("protocol", DRIVER_SET)
    def test_driver_ordering_per_protocol(self, protocol):
        # RT-XEN largest, I/O-GUARD smallest, for every driver.
        sizes = {
            system: IO_DRIVER_FOOTPRINTS[system][protocol].total
            for system in SYSTEMS
        }
        assert sizes["rt-xen"] > sizes["legacy"] > sizes["bv"] > sizes["ioguard"]

    def test_legacy_kernel_about_47_kb(self):
        assert system_footprints("legacy").kernel.total == pytest.approx(
            47 * 1024, rel=0.02
        )
