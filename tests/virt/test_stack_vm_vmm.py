"""Unit tests for software stack models, VMs and the software VMM."""

import pytest

from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet
from repro.virt.stack import STACK_MODELS, stack_for
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import SoftwareVMM, VCpuServer


class TestStackModels:
    def test_all_four_systems_modelled(self):
        assert set(STACK_MODELS) == {"legacy", "rt-xen", "bv", "ioguard"}

    def test_lookup(self):
        assert stack_for("ioguard").name == "ioguard"
        with pytest.raises(KeyError):
            stack_for("kvm")

    def test_path_cost_ordering(self):
        """The paper's architecture story: trap-based paths are the most
        expensive, para-virtual forwarding the cheapest."""
        costs = {
            name: model.request_path_cycles
            for name, model in STACK_MODELS.items()
        }
        assert costs["rt-xen"] > costs["legacy"] > costs["bv"] > costs["ioguard"]

    def test_only_rtxen_has_vmm_quantum(self):
        for name, model in STACK_MODELS.items():
            if name == "rt-xen":
                assert model.vmm_quantum_cycles > 0
            else:
                assert model.vmm_quantum_cycles == 0

    def test_request_delay_within_envelope(self):
        rng = RandomSource(3)
        for model in STACK_MODELS.values():
            worst = model.worst_request_delay(0.8)
            for _ in range(50):
                delay = model.request_delay(0.8, rng)
                assert model.request_path_cycles <= delay <= worst + 1e-9

    def test_delay_grows_with_load(self):
        model = stack_for("rt-xen")
        rng_a, rng_b = RandomSource(1), RandomSource(1)
        low = sum(model.request_delay(0.1, rng_a) for _ in range(200))
        high = sum(model.request_delay(0.9, rng_b) for _ in range(200))
        assert high > low

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            stack_for("legacy").request_delay(-0.1, RandomSource(1))


class TestVirtualMachine:
    def make(self):
        tasks = TaskSet([IOTask(name="t", period=10, wcet=2, vm_id=1)])
        return VirtualMachine(1, tasks, system="ioguard")

    def test_task_ownership_checked(self):
        tasks = TaskSet([IOTask(name="t", period=10, wcet=2, vm_id=0)])
        with pytest.raises(ValueError):
            VirtualMachine(1, tasks)

    def test_completion_accounting(self):
        vm = self.make()
        task = vm.tasks["t"]
        met = task.job(0, 0)
        met.completed_at = 5.0
        vm.record_completion(met)
        missed = task.job(10, 1)
        missed.completed_at = 25.0
        vm.record_completion(missed)
        assert vm.jobs_completed == 2
        assert vm.jobs_missed == 1
        assert vm.miss_ratio == 0.5

    def test_foreign_job_rejected(self):
        vm = self.make()
        foreign = IOTask(name="x", period=10, wcet=1, vm_id=9).job(0, 0)
        with pytest.raises(ValueError):
            vm.record_completion(foreign)

    def test_stats(self):
        vm = self.make()
        vm.record_release()
        vm.record_rejection()
        stats = vm.stats()
        assert stats["released"] == 1
        assert stats["rejected"] == 1
        assert stats["utilization"] == pytest.approx(0.2)


class TestSoftwareVMM:
    def make(self):
        return SoftwareVMM(
            [VCpuServer(0, budget=5, period=10), VCpuServer(1, budget=3, period=10)]
        )

    def test_duplicate_server_rejected(self):
        with pytest.raises(ValueError):
            SoftwareVMM([VCpuServer(0, 1, 10), VCpuServer(0, 2, 10)])

    def test_invalid_server(self):
        with pytest.raises(ValueError):
            VCpuServer(0, budget=11, period=10)

    def test_budget_replenishment(self):
        vmm = self.make()
        vmm.tick(0)
        assert vmm.can_dispatch(0)
        for _ in range(5):
            vmm.consume(0)
        assert not vmm.can_dispatch(0)
        vmm.tick(10)
        assert vmm.can_dispatch(0)

    def test_next_dispatch_slot(self):
        vmm = self.make()
        vmm.tick(0)
        assert vmm.next_dispatch_slot(0, 3) == 3
        for _ in range(5):
            vmm.consume(0)
        assert vmm.next_dispatch_slot(0, 3) == 10
        assert vmm.budget_stalls >= 1

    def test_unknown_vm(self):
        with pytest.raises(KeyError):
            self.make().can_dispatch(9)

    def test_backend_service(self):
        vmm = self.make()
        cycles = vmm.backend_service()
        assert cycles == 1200
        assert vmm.backend_ops == 1
