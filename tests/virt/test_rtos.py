"""Unit tests for the structural RTOS kernel model (Fig. 3)."""

import pytest

from repro.virt.rtos import (
    RTOSKernel,
    SERVICES,
    compare_kernels,
    ioguard_kernel,
    legacy_kernel,
)
from repro.virt.stack import stack_for


class TestKernelStructure:
    def test_unknown_service_rejected(self):
        with pytest.raises(KeyError):
            RTOSKernel(name="x", services=["warp_drive"], io_path=[])

    def test_privileged_path_requires_compiled_service(self):
        with pytest.raises(ValueError, match="not compiled"):
            RTOSKernel(
                name="x", services=["scheduler"], io_path=["io_manager"]
            )

    def test_unprivileged_path_needs_no_kernel_service(self):
        kernel = RTOSKernel(
            name="thin", services=["scheduler"], io_path=["forwarding_driver"]
        )
        assert not kernel.io_path_enters_kernel()


class TestPaperArchitectureClaims:
    def test_ioguard_path_bypasses_kernel(self):
        """Fig. 3(b): 'without the involvement of OS kernel'."""
        assert legacy_kernel().io_path_enters_kernel()
        assert not ioguard_kernel().io_path_enters_kernel()

    def test_ioguard_zero_mode_switches(self):
        """Bare-metal para-virtualization avoids 'trap into VMM' style
        mode switches on the I/O path."""
        assert legacy_kernel().kernel_crossings_per_io() >= 1
        assert ioguard_kernel().kernel_crossings_per_io() == 0

    def test_io_path_cost_ordering(self):
        comparison = compare_kernels()
        legacy_cycles, _, _ = comparison["legacy"]
        ioguard_cycles, _, _ = comparison["ioguard"]
        assert ioguard_cycles < legacy_cycles / 5

    def test_kernel_shrinks_without_io_manager(self):
        """'Para-virtualization simplifies the OS kernel' (Sec. II-A)."""
        legacy_text = legacy_kernel().kernel_text_bytes()
        ioguard_text = ioguard_kernel().kernel_text_bytes()
        assert ioguard_text < legacy_text
        removed = (
            SERVICES["io_manager"].text_bytes
            + SERVICES["buffer_mgmt"].text_bytes
            + SERVICES["low_level_driver"].text_bytes
        )
        assert legacy_text - ioguard_text == removed

    def test_structural_costs_consistent_with_stack_model(self):
        """The structural path cost matches the timing model used by the
        system simulations within a factor of ~2 (the stack model adds
        interconnect/doorbell costs the kernel model does not)."""
        structural_legacy = legacy_kernel().io_request_cycles()
        structural_ioguard = ioguard_kernel().io_request_cycles()
        assert structural_legacy == pytest.approx(
            stack_for("legacy").request_path_cycles, rel=0.5
        )
        assert structural_ioguard == pytest.approx(
            stack_for("ioguard").request_path_cycles, rel=0.5
        )
