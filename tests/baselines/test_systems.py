"""Unit and behavioural tests for the four system models."""

import pytest

from repro.baselines import (
    BlueVisorSystem,
    IOGuardSystem,
    LegacySystem,
    RTXenSystem,
    TrialConfig,
    prepare_workload,
)
from repro.sim.rng import RandomSource
from repro.tasks import build_case_study_taskset, pad_to_target_utilization
from repro.tasks.task import Criticality, IOTask
from repro.tasks.taskset import TaskSet


def light_workload(utilization=0.3, horizon=10_000, vm_count=2, seed=5):
    rng = RandomSource(seed, "workload")
    tasks = TaskSet(
        [
            IOTask(
                name=f"t{i}",
                period=200 * (i + 1),
                wcet=max(1, int(0.5 * utilization * 200 * (i + 1) / 2)),
                vm_id=i % vm_count,
                criticality=Criticality.SAFETY,
            )
            for i in range(4)
        ]
    )
    config = TrialConfig(horizon_slots=horizon)
    return prepare_workload(tasks, config, rng, target_utilization=utilization)


ALL_SYSTEMS = [LegacySystem, RTXenSystem, BlueVisorSystem]


class TestFifoBaselines:
    @pytest.mark.parametrize("system_type", ALL_SYSTEMS)
    def test_light_load_all_succeed(self, system_type):
        system = system_type()
        result = system.run_trial(light_workload(), RandomSource(1, "sys"))
        assert result.success
        assert result.total_completed > 0
        assert result.total_missed == 0

    @pytest.mark.parametrize("system_type", ALL_SYSTEMS)
    def test_result_fields(self, system_type):
        system = system_type()
        result = system.run_trial(light_workload(), RandomSource(1, "sys"))
        assert result.system == system.name
        assert result.bytes_transferred > 0
        assert result.mean_response_slots > 0
        assert result.response_slots_max >= result.mean_response_slots

    @pytest.mark.parametrize("system_type", ALL_SYSTEMS)
    def test_deterministic_under_seed(self, system_type):
        workload = light_workload()
        a = system_type().run_trial(workload, RandomSource(3, "x"))
        b = system_type().run_trial(workload, RandomSource(3, "x"))
        assert a.total_missed == b.total_missed
        assert a.bytes_transferred == b.bytes_transferred

    def test_service_cost_ordering(self):
        """RT-Xen's full per-job service cost (inflation + backend
        overhead) is the largest, BV's the smallest, at every load."""
        from repro.baselines.base import ReleasedJob

        for utilization in (0.4, 0.7, 1.0):
            workload = light_workload(utilization=utilization, vm_count=4)
            job = ReleasedJob(
                task=workload.taskset.tasks[0],
                index=0,
                release_slot=0,
                actual_slots=10,
            )
            rng = RandomSource(1, "svc")
            costs = {
                system.name: system.service_slots(job, rng, workload)
                for system in (LegacySystem(), RTXenSystem(), BlueVisorSystem())
            }
            # BV (hardware-assisted) is always the cheapest; every system
            # inflates beyond the raw 10-slot demand.  Legacy's router
            # contention overtakes RT-Xen's backend only near saturation,
            # so the rt-xen > legacy ordering is asserted at
            # moderate load only.
            assert costs["bv"] == min(costs.values())
            assert min(costs.values()) > 10
            if utilization <= 0.7:
                assert costs["rt-xen"] >= costs["legacy"] * 0.95

    def test_inflation_grows_with_vms(self):
        for system_type in ALL_SYSTEMS:
            system = system_type()
            w4 = light_workload(vm_count=2)
            # vm ids 0..7 present
            w8 = prepare_workload(
                build_case_study_taskset(vm_count=8),
                TrialConfig(horizon_slots=1000),
                RandomSource(1),
                target_utilization=0.3,
            )
            assert system.service_inflation(w8) > system.service_inflation(w4)

    def test_effective_load_clamped(self):
        workload = light_workload(utilization=2.0)
        for system_type in ALL_SYSTEMS:
            assert system_type().effective_load(workload) <= 0.95


class TestIOGuardSystem:
    def test_light_load_succeeds(self):
        system = IOGuardSystem(0.4)
        result = system.run_trial(light_workload(), RandomSource(1, "io"))
        assert result.success
        assert result.total_missed == 0

    def test_name_encodes_preload(self):
        assert IOGuardSystem(0.4).name == "ioguard-40"
        assert IOGuardSystem(0.7).name == "ioguard-70"
        assert IOGuardSystem(0.0).name == "ioguard-0"

    def test_invalid_preload(self):
        with pytest.raises(ValueError):
            IOGuardSystem(1.5)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            IOGuardSystem(0.4, server_policy="magic")

    def test_zero_preload_pure_rchannel(self):
        system = IOGuardSystem(0.0)
        result = system.run_trial(light_workload(), RandomSource(2, "io"))
        assert result.success

    def test_full_preload_pure_pchannel(self):
        system = IOGuardSystem(1.0)
        result = system.run_trial(light_workload(), RandomSource(2, "io"))
        # All tasks table-driven: every job meets its deadline.
        assert result.total_missed == 0

    def test_analytic_policy_runs(self):
        system = IOGuardSystem(0.4, server_policy="analytic")
        result = system.run_trial(light_workload(), RandomSource(3, "io"))
        assert result.success

    def test_deterministic(self):
        workload = light_workload()
        a = IOGuardSystem(0.4).run_trial(workload, RandomSource(3, "x"))
        b = IOGuardSystem(0.4).run_trial(workload, RandomSource(3, "x"))
        assert a.total_missed == b.total_missed
        assert a.bytes_transferred == b.bytes_transferred


class TestPaperShape:
    """Reduced-scale assertions of Obs 3 / Obs 4 orderings."""

    @pytest.fixture(scope="class")
    def sweep(self):
        base = build_case_study_taskset(vm_count=4)
        config = TrialConfig(horizon_slots=25_000)
        systems = {
            "rt-xen": RTXenSystem(),
            "bv": BlueVisorSystem(),
            "ioguard-70": IOGuardSystem(0.7),
        }
        outcomes = {}
        for util in (0.4, 0.9):
            rng = RandomSource(77, f"u{util}")
            padded = pad_to_target_utilization(
                base, util, rng.spawn("pad"), vm_count=4
            )
            workload = prepare_workload(
                padded, config, rng.spawn("wl"), target_utilization=util
            )
            for name, system in systems.items():
                outcomes[(name, util)] = system.run_trial(
                    workload, rng.spawn(name)
                )
        return outcomes

    def test_everyone_fine_at_40_percent(self, sweep):
        for name in ("rt-xen", "bv", "ioguard-70"):
            assert sweep[(name, 0.4)].success, name

    def test_baselines_collapse_at_90_percent(self, sweep):
        assert not sweep[("rt-xen", 0.9)].success
        assert not sweep[("bv", 0.9)].success

    def test_ioguard_survives_90_percent(self, sweep):
        assert sweep[("ioguard-70", 0.9)].success

    def test_ioguard_throughput_dominates_at_high_load(self, sweep):
        assert (
            sweep[("ioguard-70", 0.9)].throughput_mbps
            > sweep[("rt-xen", 0.9)].throughput_mbps
        )
