"""Unit tests for the shared trial machinery."""

import pytest

from repro.baselines.base import (
    TrialConfig,
    cycles_to_slots,
    prepare_workload,
    slots_ceil,
)
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def small_taskset():
    return TaskSet([
        IOTask(name="a", period=100, wcet=10, vm_id=0),
        IOTask(name="b", period=250, wcet=20, vm_id=1),
    ])


class TestTrialConfig:
    def test_defaults_valid(self):
        config = TrialConfig()
        assert config.slot_seconds == pytest.approx(1e-5)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            TrialConfig(horizon_slots=0)

    def test_invalid_exec_fractions(self):
        with pytest.raises(ValueError):
            TrialConfig(exec_fraction_min=0.9, exec_fraction_max=0.5)
        with pytest.raises(ValueError):
            TrialConfig(exec_fraction_min=0.0)

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            TrialConfig(release_jitter_fraction=1.0)


class TestPrepareWorkload:
    def test_release_counts(self):
        config = TrialConfig(
            horizon_slots=1000, randomize_phases=False,
            release_jitter_fraction=0.0,
        )
        workload = prepare_workload(small_taskset(), config, RandomSource(1))
        by_task = {}
        for release in workload.releases:
            by_task.setdefault(release.task.name, []).append(release)
        assert len(by_task["a"]) == 10
        assert len(by_task["b"]) == 4

    def test_deterministic_under_seed(self):
        config = TrialConfig(horizon_slots=2000)
        a = prepare_workload(small_taskset(), config, RandomSource(9, "w"))
        b = prepare_workload(small_taskset(), config, RandomSource(9, "w"))
        assert [(r.task.name, r.release_slot, r.actual_slots) for r in a.releases] == [
            (r.task.name, r.release_slot, r.actual_slots) for r in b.releases
        ]

    def test_actual_slots_within_fractions(self):
        config = TrialConfig(
            horizon_slots=5000, exec_fraction_min=0.5, exec_fraction_max=0.8
        )
        workload = prepare_workload(small_taskset(), config, RandomSource(2))
        for release in workload.releases:
            assert 1 <= release.actual_slots <= release.task.wcet
            assert release.actual_slots <= max(1, round(release.task.wcet * 0.8))

    def test_phases_randomized_by_default(self):
        config = TrialConfig(horizon_slots=2000)
        workload = prepare_workload(small_taskset(), config, RandomSource(3))
        first_releases = {
            release.task.name: release.release_slot
            for release in workload.releases
            if release.index == 0
        }
        # With random phases the two tasks almost surely differ from 0.
        assert any(slot != 0 for slot in first_releases.values())

    def test_separation_never_below_period(self):
        config = TrialConfig(horizon_slots=5000)
        workload = prepare_workload(small_taskset(), config, RandomSource(4))
        by_task = {}
        for release in sorted(workload.releases, key=lambda r: r.release_slot):
            by_task.setdefault(release.task.name, []).append(release)
        for name, releases in by_task.items():
            period = releases[0].task.period
            jitter_cap = int(period * config.release_jitter_fraction)
            for a, b in zip(releases, releases[1:]):
                assert b.release_slot - a.release_slot >= period - jitter_cap

    def test_releases_by_slot_sorted(self):
        config = TrialConfig(horizon_slots=3000)
        workload = prepare_workload(small_taskset(), config, RandomSource(5))
        ordered = workload.releases_by_slot()
        slots = [release.release_slot for release in ordered]
        assert slots == sorted(slots)


class TestHelpers:
    def test_cycles_to_slots(self):
        config = TrialConfig(cycles_per_slot=1000)
        assert cycles_to_slots(2500, config) == 2.5

    def test_slots_ceil_tolerates_fuzz(self):
        assert slots_ceil(3.0000000001) == 3
        assert slots_ceil(3.1) == 4
