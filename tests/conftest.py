"""Shared fixtures for the I/O-GUARD reproduction test suite."""

import pytest

try:
    from hypothesis import HealthCheck, settings as _hyp_settings

    # The analysis kernels are memoized (repro.analysis.cache): the first
    # evaluation of an input is much slower than replays, which trips
    # hypothesis's wall-clock deadline and too_slow health check on
    # loaded CI boxes.  Timing is not a property under test here.
    _hyp_settings.register_profile(
        "repro",
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    _hyp_settings.load_profile("repro")
except ImportError:  # pragma: no cover - hypothesis is optional
    pass

from repro.core.timeslot import TimeSlotTable
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return RandomSource(12345, "test")


@pytest.fixture
def small_table():
    """H=10, F=7: slots 0, 4, 8 occupied."""
    return TimeSlotTable.from_pattern([1, 0, 0, 0, 1, 0, 0, 0, 1, 0])


@pytest.fixture
def simple_task():
    return IOTask(name="t", period=10, wcet=2, vm_id=0)


@pytest.fixture
def two_vm_taskset():
    """Two VMs, one pre-defined and three run-time tasks."""
    return TaskSet(
        [
            IOTask(
                name="pre0",
                period=20,
                wcet=2,
                vm_id=0,
                kind=TaskKind.PREDEFINED,
                criticality=Criticality.SAFETY,
            ),
            IOTask(name="run0", period=25, wcet=3, vm_id=0),
            IOTask(name="run1a", period=40, wcet=4, vm_id=1),
            IOTask(name="run1b", period=50, wcet=5, vm_id=1),
        ],
        name="two-vm",
    )
