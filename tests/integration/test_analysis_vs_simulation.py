"""Integration: the schedulability analysis must predict the simulator.

The defining soundness property of Sec. IV: any system the Theorems
admit must execute without a single deadline miss on the hypervisor
model, even under adversarial (synchronous, jitterless, WCET-exact)
releases -- the analysis covers the worst case, the simulation is one
realisation of it.
"""

import random  # iolint: disable=IOL003 -- seeded random.Random only; test-local data generation

import pytest

from repro.analysis import analyze_system
from repro.analysis.lsched_test import lsched_schedulable
from repro.core.gsched import ServerSpec
from repro.core.pchannel import PChannel
from repro.core.rchannel import RChannel
from repro.core.timeslot import build_pchannel_table, stagger_offsets
from repro.tasks import generate_random_taskset
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def simulate(taskset, servers, horizon):
    """Slot-step a P+R channel pair under worst-case releases.

    Returns the list of completed jobs; asserts internally that no job
    remains unfinished past its deadline inside the horizon.
    """
    predefined = stagger_offsets(taskset.predefined())
    table = build_pchannel_table(predefined)
    pchannel = PChannel(predefined, table=table)
    rchannel = RChannel(servers)
    releases = []
    for task in taskset.runtime():
        k = 0
        while task.offset + k * task.period < horizon:
            releases.append((task.offset + k * task.period, task, k))
            k += 1
    releases.sort(key=lambda entry: entry[0])
    cursor = 0
    completed = []
    for slot in range(horizon):
        while cursor < len(releases) and releases[cursor][0] == slot:
            _s, task, index = releases[cursor]
            rchannel.submit(task.job(release=slot, index=index))
            cursor += 1
        rchannel.tick(slot)
        if pchannel.occupies(slot):
            job = pchannel.execute_slot(slot)
        else:
            job = rchannel.execute_slot(slot)
        if job is not None:
            job.completed_at = float(slot + 1)
            completed.append(job)
    return completed, rchannel


class TestSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_admitted_systems_never_miss(self, seed):
        taskset = generate_random_taskset(
            seed,
            task_count=6,
            total_utilization=0.45,
            vm_count=2,
            period_min=20,
            period_max=200,
            name=f"adm{seed}",
        ).split_predefined(0.3)
        verdict = analyze_system(taskset)
        if not verdict.schedulable:
            pytest.skip("random instance not admitted; nothing to check")
        servers = [
            ServerSpec(vm, pi, theta)
            for vm, (pi, theta) in sorted(verdict.design.servers.items())
        ]
        horizon = min(40_000, 4 * taskset.hyperperiod)
        completed, rchannel = simulate(taskset, servers, horizon)
        misses = [job for job in completed if job.met_deadline() is False]
        assert not misses, (
            f"analysis admitted seed {seed} but simulation missed: "
            f"{[job.name for job in misses[:5]]}"
        )
        # Nothing overdue may linger in the queues either.
        for pool in rchannel.pools.values():
            for job in pool.queue.jobs():
                assert job.absolute_deadline > horizon

    def test_admitted_case_study_never_misses(self):
        from repro.tasks import build_case_study_taskset

        taskset = build_case_study_taskset(vm_count=4).split_predefined(0.4)
        verdict = analyze_system(taskset)
        assert verdict.schedulable
        servers = [
            ServerSpec(vm, pi, theta)
            for vm, (pi, theta) in sorted(verdict.design.servers.items())
        ]
        completed, _ = simulate(taskset, servers, 30_000)
        assert completed
        assert all(job.met_deadline() for job in completed)


class TestDifferentialAdmissionSweep:
    """Differential check of the admission tests against the simulator.

    A seeded sweep over random (server, task set) instances spanning the
    admission boundary: every L-Sched "yes" must survive simulation
    without a miss, and the sweep must actually exercise both verdicts
    (a test that only ever skips proves nothing).
    """

    def test_lsched_admissions_survive_simulation(self):
        rng = random.Random(20210)
        admitted = rejected = 0
        for case in range(30):
            pi = rng.randint(5, 20)
            theta = rng.randint(2, pi)
            bandwidth = theta / pi
            tasks = generate_random_taskset(
                9000 + case,
                task_count=rng.randint(2, 5),
                # Straddle the admission boundary so both verdicts occur.
                total_utilization=bandwidth * rng.uniform(0.3, 1.2),
                period_min=20,
                period_max=200,
                name=f"diff.lsched.{case}",
            )
            verdict = lsched_schedulable(pi, theta, tasks)
            if not verdict.schedulable:
                rejected += 1
                continue
            admitted += 1
            horizon = min(20_000, 2 * tasks.hyperperiod)
            completed, rchannel = simulate(
                tasks, [ServerSpec(0, pi, theta)], horizon
            )
            misses = [
                job for job in completed if job.met_deadline() is False
            ]
            assert not misses, (
                f"L-Sched admitted case {case} (Pi={pi}, Theta={theta}) "
                f"but simulation missed {[job.name for job in misses[:5]]}"
            )
            for pool in rchannel.pools.values():
                for job in pool.queue.jobs():
                    assert job.absolute_deadline > horizon
        # Non-vacuity: the sweep crossed the boundary in both directions.
        assert admitted >= 5, f"only {admitted} admitted instances"
        assert rejected >= 5, f"only {rejected} rejected instances"

    def test_gsched_designs_survive_simulation(self):
        rng = random.Random(40)
        admitted = rejected = 0
        for case in range(12):
            taskset = generate_random_taskset(
                7000 + case,
                task_count=rng.randint(4, 8),
                # The range reaches past the design headroom: floor-based
                # WCET quantization keeps realized utilization <= the
                # request, so a 0.8 ceiling no longer produces rejections.
                total_utilization=rng.uniform(0.3, 1.0),
                vm_count=2,
                period_min=20,
                period_max=200,
                name=f"diff.gsched.{case}",
            ).split_predefined(0.3)
            verdict = analyze_system(taskset)
            if not verdict.schedulable:
                rejected += 1
                continue
            admitted += 1
            servers = [
                ServerSpec(vm, pi, theta)
                for vm, (pi, theta) in sorted(verdict.design.servers.items())
            ]
            horizon = min(20_000, 2 * taskset.hyperperiod)
            completed, _ = simulate(taskset, servers, horizon)
            assert all(
                job.met_deadline() is not False for job in completed
            ), f"G-Sched admitted case {case} but simulation missed"
        assert admitted >= 3, f"only {admitted} admitted designs"
        # The utilization range reaches loads G-Sched must turn away;
        # if it never does, the sweep is not testing the boundary.
        assert rejected >= 1, "sweep never exercised a rejection"


class TestUnschedulableSystemsDoMiss:
    def test_overload_misses_in_simulation(self):
        """The converse sanity check: a grossly overloaded R-channel
        produces misses (the simulator is not trivially lenient)."""
        taskset = TaskSet([
            IOTask(name=f"t{i}", period=10, wcet=4, vm_id=0) for i in range(3)
        ])  # utilization 1.2 on one VM
        servers = [ServerSpec(0, 10, 10)]
        completed, rchannel = simulate(taskset, servers, 2_000)
        late = [job for job in completed if job.met_deadline() is False]
        backlog = sum(len(pool.queue) for pool in rchannel.pools.values())
        assert late or backlog > 0


class TestBlackoutRealised:
    def test_server_blackout_matches_model(self):
        """A job released at the worst phase waits through the blackout
        the periodic resource model predicts -- but no longer."""
        from repro.analysis.supply import sbf_server

        pi, theta = 10, 3
        task = IOTask(name="t", period=100, wcet=3, deadline=100, vm_id=0)
        # Single VM, single sporadic job released at slot 0; table empty.
        taskset = TaskSet([task])
        servers = [ServerSpec(0, pi, theta)]
        completed, _ = simulate(taskset, servers, 300)
        job = completed[0]
        response = job.completed_at - job.release
        # The analysis guarantees completion once sbf >= C.
        t = 0
        while sbf_server(pi, theta, t) < task.wcet:
            t += 1
        assert response <= t
