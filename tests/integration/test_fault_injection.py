"""Fault-injection integration tests.

The hardware hypervisor must degrade gracefully, never corrupt state:

* queue overflow -> back-pressure (rejections counted, nothing lost
  silently, other VMs unaffected),
* a VM flooding its own pool cannot evict or starve another VM's
  budgeted slots,
* device jitter at its worst-case bound never breaks the translator's
  WCET accounting,
* mode-change storms (request/cancel cycles) leave the P-channel
  consistent.
"""

import pytest

from repro.core.gsched import ServerSpec
from repro.core.iopool import IOPool
from repro.core.modes import Mode, ModeManager
from repro.core.rchannel import RChannel
from repro.core.driver import VirtualizationDriver
from repro.hw.controller import EthernetController
from repro.hw.devices import IODevice
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def runtime_task(name, period=1000, wcet=2, vm_id=0, deadline=None):
    return IOTask(
        name=name, period=period, wcet=wcet, deadline=deadline, vm_id=vm_id
    )


class TestQueueOverflow:
    def test_pool_backpressure_counts_rejections(self):
        pool = IOPool(vm_id=0, capacity=4)
        task = runtime_task("flood")
        accepted = sum(
            pool.submit(task.job(release=0, index=i)) for i in range(10)
        )
        assert accepted == 4
        assert pool.rejected == 6
        assert len(pool.queue) == 4  # nothing silently dropped or duplicated

    def test_overflowed_pool_still_schedules_correctly(self):
        pool = IOPool(vm_id=0, capacity=2)
        urgent = runtime_task("urgent", deadline=10).job(0, 0)
        relaxed = runtime_task("relaxed", deadline=900).job(0, 0)
        pool.submit(relaxed)
        pool.submit(urgent)
        assert not pool.submit(runtime_task("extra").job(0, 0))
        assert pool.shadow is urgent  # EDF order survives the overflow

    def test_flooding_vm_cannot_starve_other_vm(self):
        """Budget isolation under a pool flood: VM 1's work completes
        within its guaranteed service window."""
        channel = RChannel(
            [ServerSpec(0, 10, 5), ServerSpec(1, 10, 5)], pool_capacity=512
        )
        flood_task = runtime_task("flood", vm_id=0, wcet=1, deadline=5,
                                  period=1000)
        for i in range(400):
            channel.submit(flood_task.job(release=0, index=i))
        victim = runtime_task("victim", vm_id=1, wcet=5, deadline=30).job(0, 0)
        channel.submit(victim)
        completed_at = None
        for slot in range(40):
            channel.tick(slot)
            done = channel.execute_slot(slot)
            if done is victim:
                completed_at = slot + 1
        assert completed_at is not None
        # Server (10, 5): worst case 2*(10-5)=10 blackout, then 5 slots
        # per period; 5 slots of demand complete within sbf^-1(5) = 20.
        assert completed_at <= 20


class TestDeviceFaults:
    def test_worst_case_jitter_within_wcet(self):
        device = IODevice(
            "jittery", service_cycles=100, jitter_cycles=50,
            rng=RandomSource(3),
        )
        driver = VirtualizationDriver(EthernetController("eth0"), device)
        for payload in (8, 64, 256):
            for _ in range(50):
                timing = driver.execute_operation(payload)
                assert timing.total <= driver.wcet_cycles(payload)

    def test_zero_service_device(self):
        device = IODevice("instant", service_cycles=0)
        driver = VirtualizationDriver(EthernetController("eth0"), device)
        timing = driver.execute_operation(16)
        assert timing.device_service == 0
        assert timing.total > 0  # translation + transfer still cost


class TestModeChangeStorm:
    def test_request_cancel_cycles_keep_consistency(self):
        modes = {
            "a": Mode.build(
                "a",
                TaskSet([IOTask(name="pa", period=10, wcet=2,
                                kind=TaskKind.PREDEFINED)]),
                stagger=False,
            ),
            "b": Mode.build(
                "b",
                TaskSet([IOTask(name="pb", period=20, wcet=3,
                                kind=TaskKind.PREDEFINED)]),
                stagger=False,
            ),
        }
        manager = ModeManager(modes, initial="a")
        rng = RandomSource(7, "storm")
        completed = []
        for slot in range(200):
            if manager.pending is None and rng.random() < 0.05:
                target = "b" if manager.active_name == "a" else "a"
                manager.request_mode(target, slot)
            elif manager.pending is not None and rng.random() < 0.3:
                manager.cancel_pending()
            manager.tick(slot)
            if manager.occupies(slot):
                job = manager.execute_slot(slot)
                if job is not None:
                    completed.append(job)
        # Every completed pre-defined job met its deadline, across all
        # transitions and cancellations.
        assert completed
        for job in completed:
            assert job.met_deadline() is True
