"""Seed-robustness: the calibrated shapes must not depend on one seed.

The Fig. 7 claims (everyone fine at 40 %, I/O-GUARD fine at 90 %,
baselines collapsed at 90 %) are checked across several independent
seeds -- a brittle calibration that only works at seed 2021 would fail
here.
"""

import pytest

from repro.baselines import (
    BlueVisorSystem,
    IOGuardSystem,
    LegacySystem,
    RTXenSystem,
    TrialConfig,
    prepare_workload,
)
from repro.sim.rng import RandomSource
from repro.tasks import build_case_study_taskset, pad_to_target_utilization

SEEDS = (7, 1234, 98765)


def run_cell(system, utilization, seed, vm_count=4, horizon=20_000):
    base = build_case_study_taskset(vm_count=vm_count)
    rng = RandomSource(seed, f"robust.{vm_count}.{utilization}")
    padded = pad_to_target_utilization(
        base, utilization, rng.spawn("pad"), vm_count=vm_count
    )
    workload = prepare_workload(
        padded,
        TrialConfig(horizon_slots=horizon),
        rng.spawn("wl"),
        target_utilization=utilization,
    )
    return system.run_trial(workload, rng.spawn(system.name))


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_everyone_fine_at_40(self, seed):
        for system in (
            LegacySystem(), RTXenSystem(), BlueVisorSystem(),
            IOGuardSystem(0.4), IOGuardSystem(0.7),
        ):
            assert run_cell(system, 0.40, seed).success, (seed, system.name)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ioguard_fine_at_90(self, seed):
        for system in (IOGuardSystem(0.4), IOGuardSystem(0.7)):
            assert run_cell(system, 0.90, seed).success, (seed, system.name)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_baselines_collapsed_at_90(self, seed):
        for system in (LegacySystem(), RTXenSystem(), BlueVisorSystem()):
            assert not run_cell(system, 0.90, seed).success, (
                seed, system.name,
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_throughput_ordering_at_high_load(self, seed):
        ioguard = run_cell(IOGuardSystem(0.7), 1.0, seed)
        rtxen = run_cell(RTXenSystem(), 1.0, seed)
        assert ioguard.throughput_mbps > rtxen.throughput_mbps, seed
