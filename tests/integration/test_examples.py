"""Smoke tests: every shipped example must run clean."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_device.py",
    "admission_control.py",
    "mode_change.py",
    "noc_latency_bounds.py",
    "software_overhead.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


def test_examples_directory_complete():
    """The deliverable set: quickstart plus >= 2 scenario examples."""
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3
