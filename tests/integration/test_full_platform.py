"""Integration: whole platform inside one Simulator run.

Processors release jobs through the DES, the hypervisor process steps
slots, and the NoC carries calibration traffic concurrently -- the
closest the reproduction gets to the paper's FPGA platform in one
executable.
"""

from repro.core.gsched import ServerSpec
from repro.core.hypervisor import HypervisorConfig, IOGuardHypervisor
from repro.core.driver import VirtualizationDriver
from repro.hw.controller import EthernetController
from repro.hw.devices import EchoDevice
from repro.hw.processor import Processor, VMContext
from repro.noc.network import NocNetwork
from repro.noc.packet import Packet, PacketKind
from repro.sim.clock import GlobalTimer
from repro.sim.engine import Simulator, Timeout
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def build_platform():
    sim = Simulator()
    timer = GlobalTimer(sim, cycles_per_slot=1_000)
    hypervisor = IOGuardHypervisor(HypervisorConfig(cycles_per_slot=1_000))
    driver = VirtualizationDriver(
        EthernetController("eth0"), EchoDevice("sensor", service_cycles=50)
    )
    predefined = TaskSet([
        IOTask(
            name="poll", period=20, wcet=2, vm_id=0, device="eth0",
            kind=TaskKind.PREDEFINED, payload_bytes=32,
        )
    ])
    hypervisor.attach_device(
        "eth0",
        driver,
        predefined,
        [ServerSpec(0, 10, 3), ServerSpec(1, 10, 3)],
    )
    vms = [
        VMContext(0, TaskSet([
            IOTask(name="vm0.cmd", period=40, wcet=3, vm_id=0,
                   device="eth0", payload_bytes=32),
        ])),
        VMContext(1, TaskSet([
            IOTask(name="vm1.log", period=60, wcet=4, vm_id=1,
                   device="eth0", payload_bytes=64),
        ])),
    ]
    processors = [Processor(0, (0, 0), [vms[0]]), Processor(1, (1, 0), [vms[1]])]
    return sim, timer, hypervisor, processors, vms


class TestFullPlatform:
    def test_end_to_end_run(self):
        sim, timer, hypervisor, processors, vms = build_platform()
        horizon = 400
        for processor in processors:
            processor.start_release_processes(
                sim, timer, hypervisor.submit, RandomSource(5), horizon
            )
        sim.process(hypervisor.process(sim, timer, horizon), name="hypervisor")
        sim.run()
        assert hypervisor.completed_jobs
        misses = [
            job for job in hypervisor.completed_jobs
            if job.met_deadline() is False
        ]
        assert not misses
        # Pre-defined and run-time tasks both executed.
        names = {job.task.name for job in hypervisor.completed_jobs}
        assert {"poll", "vm0.cmd", "vm1.log"} <= names
        assert all(vm.jobs_rejected == 0 for vm in vms)

    def test_concurrent_noc_traffic(self):
        """NoC packets and the hypervisor share one event loop."""
        sim, timer, hypervisor, processors, _vms = build_platform()
        network = NocNetwork(sim)
        delivered = []

        def traffic():
            for i in range(10):
                network.inject(
                    Packet(
                        source=(0, 0), destination=(4, 4),
                        kind=PacketKind.REQUEST, payload_bytes=64,
                    ),
                    on_delivered=delivered.append,
                )
                yield Timeout(5_000)

        horizon = 200
        for processor in processors:
            processor.start_release_processes(
                sim, timer, hypervisor.submit, RandomSource(5), horizon
            )
        sim.process(hypervisor.process(sim, timer, horizon))
        sim.process(traffic())
        sim.run()
        assert len(delivered) == 10
        assert hypervisor.completed_jobs

    def test_deterministic_replay(self):
        results = []
        for _ in range(2):
            sim, timer, hypervisor, processors, _ = build_platform()
            horizon = 300
            for processor in processors:
                processor.start_release_processes(
                    sim, timer, hypervisor.submit, RandomSource(9), horizon
                )
            sim.process(hypervisor.process(sim, timer, horizon))
            sim.run()
            results.append(
                [(job.name, job.completed_at) for job in hypervisor.completed_jobs]
            )
        assert results[0] == results[1]
