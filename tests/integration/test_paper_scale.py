"""Integration at the paper's evaluated scale: 16 VMs, 2 I/O devices.

Sec. V-B configures the hypervisor for 16 VMs and 2 I/Os (2 manager +
driver groups, 16 I/O pools each).  This test builds exactly that
configuration, runs it with live traffic on both devices, and checks
the guarantees and accounting hold at scale.
"""

import pytest

from repro.core.gsched import ServerSpec
from repro.core.hypervisor import HypervisorConfig, IOGuardHypervisor
from repro.core.driver import VirtualizationDriver
from repro.hw.controller import EthernetController, FlexRayController
from repro.hw.devices import EchoDevice
from repro.hwcost.blocks import hypervisor_cost
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet

VM_COUNT = 16


@pytest.fixture(scope="module")
def paper_scale_run():
    hypervisor = IOGuardHypervisor(HypervisorConfig())
    # Device 1: Ethernet (the paper's data-in path).
    eth_pre = TaskSet([
        IOTask(
            name="eth.poll", period=50, wcet=4, kind=TaskKind.PREDEFINED,
            device="eth0", payload_bytes=64,
        )
    ])
    eth_servers = [ServerSpec(vm, 100, 5) for vm in range(VM_COUNT)]
    hypervisor.attach_device(
        "eth0",
        VirtualizationDriver(
            EthernetController("eth0"), EchoDevice("cloud", service_cycles=80)
        ),
        eth_pre,
        eth_servers,
    )
    # Device 2: FlexRay (the paper's result-out path).  FlexRay frames
    # take ~ms; this device runs with a coarser slot declared through
    # larger WCETs instead (tasks sized accordingly).
    flex_servers = [ServerSpec(vm, 200, 8) for vm in range(VM_COUNT)]
    hypervisor.attach_device(
        "flex0",
        VirtualizationDriver(
            FlexRayController("flex0"), EchoDevice("bus", service_cycles=120)
        ),
        TaskSet(),
        flex_servers,
    )

    # One sporadic task per VM per device.
    rng = RandomSource(2021, "paper-scale")
    tasks = []
    for vm in range(VM_COUNT):
        tasks.append(
            IOTask(
                name=f"vm{vm}.eth", period=rng.choice([200, 400, 500]),
                wcet=rng.randint(2, 6), vm_id=vm, device="eth0",
                payload_bytes=64,
            )
        )
        tasks.append(
            IOTask(
                name=f"vm{vm}.flex", period=rng.choice([400, 500, 1000]),
                wcet=rng.randint(4, 12), vm_id=vm, device="flex0",
                payload_bytes=32,
            )
        )

    horizon = 4_000
    releases = []
    for task in tasks:
        k = 0
        while k * task.period < horizon:
            releases.append((k * task.period, task, k))
            k += 1
    releases.sort(key=lambda entry: entry[0])
    cursor = 0
    for slot in range(horizon):
        while cursor < len(releases) and releases[cursor][0] == slot:
            _s, task, index = releases[cursor]
            hypervisor.submit(task.job(release=slot, index=index))
            cursor += 1
        hypervisor.step(slot)
    return hypervisor, tasks, horizon


class TestPaperScale:
    def test_sixteen_pools_per_device(self, paper_scale_run):
        hypervisor, _tasks, _horizon = paper_scale_run
        for device in ("eth0", "flex0"):
            manager = hypervisor.managers[device]
            assert len(manager.rchannel.pools) == VM_COUNT

    def test_no_deadline_misses(self, paper_scale_run):
        hypervisor, _tasks, _horizon = paper_scale_run
        misses = [
            job for job in hypervisor.completed_jobs
            if job.met_deadline() is False
        ]
        assert not misses

    def test_every_vm_served_on_both_devices(self, paper_scale_run):
        hypervisor, _tasks, _horizon = paper_scale_run
        served = {
            (job.task.vm_id, job.task.device)
            for job in hypervisor.completed_jobs
            if job.task.kind == TaskKind.RUNTIME
        }
        for vm in range(VM_COUNT):
            assert (vm, "eth0") in served
            assert (vm, "flex0") in served

    def test_predefined_ran_on_schedule(self, paper_scale_run):
        hypervisor, _tasks, horizon = paper_scale_run
        polls = [
            job for job in hypervisor.completed_jobs
            if job.task.name == "eth.poll"
        ]
        # One poll per 50-slot period across the horizon (the straddling
        # final job may still be in flight).
        assert len(polls) >= horizon // 50 - 1

    def test_matching_hardware_cost_model(self, paper_scale_run):
        """The run-time configuration is exactly the one Table I costs."""
        hypervisor, _tasks, _horizon = paper_scale_run
        cost = hypervisor_cost(
            vm_count=VM_COUNT, io_count=len(hypervisor.managers)
        )
        assert cost.ram_kb == 256
        assert cost.luts == pytest.approx(2777, rel=0.01)
