"""Deterministic search cores: best-first assignment and lex-min DFS."""

from fractions import Fraction

import pytest

from repro.synth.search import SearchStats, best_first_assignment, lexmin_backtrack


def frac_groups(*groups):
    return [[Fraction(n, d) for n, d in group] for group in groups]


class TestBestFirstAssignment:
    def test_first_feasible_is_cost_minimal(self):
        objectives = frac_groups(
            [(1, 10), (3, 10), (5, 10)],
            [(2, 10), (4, 10)],
        )
        # Feasibility: combined cost must be at least 6/10 -- so the
        # optimum is the cheapest combination meeting it.
        def feasible(nodes):
            return [
                objectives[0][a] + objectives[1][b] >= Fraction(6, 10)
                for a, b in nodes
            ]

        chosen = best_first_assignment(objectives, feasible)
        assert chosen == (1, 1)  # 3/10 + 4/10: cheapest feasible total

    def test_single_group(self):
        objectives = frac_groups([(1, 4), (2, 4), (3, 4)])

        def feasible(nodes):
            return [objectives[0][a] >= Fraction(2, 4) for (a,) in nodes]

        assert best_first_assignment(objectives, feasible) == (1,)

    def test_exhaustion_returns_none(self):
        objectives = frac_groups([(1, 4), (2, 4)])

        def feasible(nodes):
            return [False for _node in nodes]

        stats = SearchStats()
        assert best_first_assignment(objectives, feasible, stats=stats) is None
        assert stats.nodes_expanded == 2

    def test_unsorted_group_rejected(self):
        objectives = frac_groups([(3, 4), (1, 4)])
        with pytest.raises(ValueError, match="sorted"):
            best_first_assignment(objectives, feasible_batch=lambda n: [True])

    def test_node_cap_stops_search(self):
        objectives = frac_groups(*([[(k, 100) for k in range(1, 50)]] * 2))

        def feasible(nodes):
            return [False for _node in nodes]

        stats = SearchStats()
        assert (
            best_first_assignment(
                objectives, feasible, stats=stats, max_nodes=10
            )
            is None
        )
        assert stats.nodes_expanded <= 10

    def test_batching_width_respected(self):
        objectives = frac_groups([(k, 10) for k in range(1, 9)])
        batch_sizes = []

        def feasible(nodes):
            batch_sizes.append(len(nodes))
            return [False for _node in nodes]

        best_first_assignment(objectives, feasible, batch_width=3)
        assert all(size <= 3 for size in batch_sizes)

    def test_stats_record_rounds_and_oracle_calls(self):
        objectives = frac_groups([(1, 4), (2, 4)], [(1, 4), (2, 4)])

        def feasible(nodes):
            return [a + b == 2 for a, b in nodes]

        stats = SearchStats()
        chosen = best_first_assignment(objectives, feasible, stats=stats)
        assert chosen == (1, 1)
        assert stats.oracle_calls > 0
        assert stats.rounds > 0


class TestLexminBacktrack:
    def test_depth_zero(self):
        assert lexmin_backtrack(0, lambda prefix, level: [1, 2]) == ()

    def test_lexicographically_minimal(self):
        # All increasing digit strings over 0..3 of length 3.
        def choices(prefix, level):
            floor = prefix[-1] + 1 if prefix else 0
            return range(floor, 4)

        assert lexmin_backtrack(3, choices) == (0, 1, 2)

    def test_backtracking_over_dead_ends(self):
        # Level 1 only accepts values >= 2, and level 0 must not be 0.
        def choices(prefix, level):
            if level == 0:
                return [0, 1]
            if prefix[0] == 0:
                return []
            return [2]

        stats = SearchStats()
        assert lexmin_backtrack(2, choices, stats=stats) == (1, 2)
        assert stats.backtracks >= 1

    def test_infeasible_returns_none(self):
        def choices(prefix, level):
            return [] if level == 1 else [0]

        assert lexmin_backtrack(2, choices) is None

    def test_node_cap(self):
        def choices(prefix, level):
            return range(10) if level < 3 else []

        assert lexmin_backtrack(4, choices, max_nodes=25) is None


class TestSearchStats:
    def test_payload_shape(self):
        stats = SearchStats()
        stats.nodes_expanded = 3
        stats.record_incumbent(0.5)
        payload = stats.as_payload()
        assert payload["nodes_expanded"] == 3
        assert payload["incumbent_updates"] == 1
        assert payload["bound_trajectory"] == [[3, 0.5]]

    def test_record_incumbent_tracks_trajectory(self):
        stats = SearchStats()
        stats.nodes_expanded = 1
        stats.record_incumbent(0.9)
        stats.nodes_expanded = 5
        stats.record_incumbent(0.4)
        assert stats.bound_trajectory == [(1, 0.9), (5, 0.4)]
        assert stats.incumbent_updates == 2
