"""Slot-table synthesis: canonical lex-min model, constraints, wrap."""

import pytest

from repro.synth.search import SearchStats
from repro.synth.table import (
    OBJECTIVES,
    TableConstraint,
    synthesize_table,
)
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def predefined(*specs):
    tasks = []
    for spec in specs:
        tasks.append(
            IOTask(
                name=spec["name"],
                period=spec.get("period", 20),
                wcet=spec.get("wcet", 1),
                deadline=spec.get("deadline"),
                offset=spec.get("offset", 0),
                device=spec.get("device", "dev0"),
                kind=TaskKind.PREDEFINED,
            )
        )
    return TaskSet(tasks, name="predefined")


class TestFeasibleSynthesis:
    def test_basic_placement_covers_every_job(self):
        tasks = predefined(
            {"name": "a", "period": 10, "wcet": 2},
            {"name": "b", "period": 20, "wcet": 3},
        )
        result = synthesize_table(tasks)
        assert result.feasible
        assert result.hyperperiod == 20
        # 2 jobs x 2 slots for "a" + 1 job x 3 slots for "b".
        assert result.table.total_slots == 20
        assert len(result.table.occupied_indices()) == 7
        assert sorted(result.placements) == ["a", "b"]
        assert [len(job) for job in result.placements["a"]] == [2, 2]

    def test_slots_fall_inside_release_windows(self):
        tasks = predefined(
            {"name": "a", "period": 10, "wcet": 2, "deadline": 6},
        )
        result = synthesize_table(tasks)
        assert result.feasible
        for index, job_slots in enumerate(result.placements["a"]):
            release = index * 10
            for slot in job_slots:
                assert release <= slot < release + 6

    def test_time_lag_constraint_enforced_per_job(self):
        tasks = predefined(
            {"name": "sense", "period": 20, "wcet": 2, "deadline": 10,
             "device": "lidar"},
            {"name": "act", "period": 20, "wcet": 1, "device": "canbus"},
        )
        constraint = TableConstraint("sense", "act", min_lag=2, max_lag=12)
        result = synthesize_table(tasks, constraints=[constraint])
        assert result.feasible
        for sense_job, act_job in zip(
            result.placements["sense"], result.placements["act"]
        ):
            lag = act_job[0] - sense_job[-1]
            assert 1 + constraint.min_lag <= lag <= 1 + constraint.max_lag

    def test_reruns_byte_identical(self):
        tasks = predefined(
            {"name": "a", "period": 10, "wcet": 2},
            {"name": "b", "period": 20, "wcet": 3},
        )
        first = synthesize_table(tasks)
        second = synthesize_table(tasks)
        assert first.pattern() == second.pattern()
        assert first.placements == second.placements

    def test_objectives_registry(self):
        assert OBJECTIVES == ("spread", "packed")
        tasks = predefined({"name": "a", "period": 10, "wcet": 2})
        spread = synthesize_table(tasks, objective="spread")
        packed = synthesize_table(tasks, objective="packed")
        assert spread.feasible and packed.feasible
        # Packed fills from the front of each window.
        assert packed.placements["a"][0] == [0, 1]

    def test_empty_taskset_trivial(self):
        result = synthesize_table(TaskSet(name="empty"))
        assert result.feasible
        assert result.table.total_slots == 1

    def test_fixed_free_slots_avoided(self):
        tasks = predefined({"name": "a", "period": 4, "wcet": 2})
        result = synthesize_table(
            tasks, objective="packed", fixed_free=(0,)
        )
        assert result.feasible
        assert 0 not in result.table.occupied_indices()


class TestInfeasibleSynthesis:
    def test_blocked_job_names_device_and_slot(self):
        # One device window of 3 slots, two of them forbidden: wcet 2
        # cannot fit, and the reason must localize the failure.
        tasks = predefined(
            {"name": "x", "period": 4, "wcet": 2, "deadline": 3,
             "device": "dx"},
        )
        result = synthesize_table(tasks, fixed_free=(0, 1))
        assert not result.feasible
        assert "x" in result.reason
        assert result.failed_device == "dx"
        assert result.failed_slot is not None

    def test_joint_infeasibility_still_reported(self):
        tasks = predefined(
            {"name": "x", "period": 4, "wcet": 3, "deadline": 3},
            {"name": "y", "period": 4, "wcet": 3},
        )
        result = synthesize_table(
            tasks, constraints=[TableConstraint("x", "y")]
        )
        assert not result.feasible
        assert result.reason


class TestModelValidation:
    def test_duplicate_names_rejected(self):
        # TaskSet already enforces uniqueness, so feed the raw list the
        # model validator also guards against.
        tasks = [
            IOTask("a", period=10, wcet=1, kind=TaskKind.PREDEFINED),
            IOTask("a", period=20, wcet=1, kind=TaskKind.PREDEFINED),
        ]
        with pytest.raises(ValueError, match="unique"):
            synthesize_table(tasks)

    def test_unknown_constraint_name_rejected(self):
        tasks = predefined({"name": "a"})
        with pytest.raises(ValueError, match="ghost"):
            synthesize_table(
                tasks, constraints=[TableConstraint("a", "ghost")]
            )

    def test_constraint_needs_equal_periods(self):
        tasks = predefined(
            {"name": "a", "period": 10}, {"name": "b", "period": 20}
        )
        with pytest.raises(ValueError, match="period"):
            synthesize_table(tasks, constraints=[TableConstraint("a", "b")])

    def test_constraint_cycle_rejected(self):
        tasks = predefined({"name": "a"}, {"name": "b"})
        with pytest.raises(ValueError, match="cycle"):
            synthesize_table(
                tasks,
                constraints=[
                    TableConstraint("a", "b"),
                    TableConstraint("b", "a"),
                ],
            )

    def test_constraint_lag_validation(self):
        with pytest.raises(ValueError):
            TableConstraint("a", "b", min_lag=-1)
        with pytest.raises(ValueError):
            TableConstraint("a", "b", min_lag=5, max_lag=2)
        with pytest.raises(ValueError):
            TableConstraint("a", "a")

    def test_hyperperiod_must_tile_periods(self):
        tasks = predefined({"name": "a", "period": 6})
        with pytest.raises(ValueError, match="multiple"):
            synthesize_table(tasks, hyperperiod=10)

    def test_stats_populated(self):
        tasks = predefined({"name": "a", "period": 10, "wcet": 2})
        stats = SearchStats()
        result = synthesize_table(tasks, stats=stats)
        assert result.feasible
        assert stats.nodes_expanded > 0
