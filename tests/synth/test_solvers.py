"""SOLVERS registry: resolution precedence, context override, gating."""

import pytest

from repro.synth.solvers import (
    SOLVER_ENV_VAR,
    SOLVERS,
    SolverUnavailableError,
    default_solver,
    require_solver,
    resolve_solver,
    set_default_solver,
    solver_available,
    use_solver,
)


@pytest.fixture(autouse=True)
def _reset_solver_default():
    previous = set_default_solver(None)
    yield
    set_default_solver(previous)


class TestResolution:
    def test_registry_contents(self):
        assert SOLVERS == ("python", "ortools")

    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(SOLVER_ENV_VAR, raising=False)
        assert resolve_solver(None) == "python"
        assert default_solver() == "python"

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV_VAR, "ortools")
        set_default_solver("ortools")
        assert resolve_solver("python") == "python"

    def test_session_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV_VAR, "python")
        set_default_solver("ortools")
        assert resolve_solver(None) == "ortools"

    def test_env_beats_builtin_default(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV_VAR, "ortools")
        assert resolve_solver(None) == "ortools"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="cplex"):
            resolve_solver("cplex")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV_VAR, "gurobi")
        with pytest.raises(ValueError, match="gurobi"):
            resolve_solver(None)

    def test_set_default_returns_previous(self):
        assert set_default_solver("python") is None
        assert set_default_solver(None) == "python"


class TestUseSolver:
    def test_scoped_override_restored(self, monkeypatch):
        monkeypatch.delenv(SOLVER_ENV_VAR, raising=False)
        with use_solver("ortools"):
            assert resolve_solver(None) == "ortools"
        assert resolve_solver(None) == "python"

    def test_restored_on_exception(self, monkeypatch):
        monkeypatch.delenv(SOLVER_ENV_VAR, raising=False)
        with pytest.raises(RuntimeError):
            with use_solver("ortools"):
                raise RuntimeError("boom")
        assert resolve_solver(None) == "python"


class TestAvailability:
    def test_python_always_available(self):
        assert solver_available("python") is True
        assert require_solver("python") == "python"

    def test_missing_ortools_raises_actionable_error(self):
        if solver_available("ortools"):  # pragma: no cover - ortools present
            pytest.skip("ortools installed in this environment")
        with pytest.raises(SolverUnavailableError, match="ortools"):
            require_solver("ortools")
