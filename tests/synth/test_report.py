"""SynthesisReport: protocol conformance and canonical payload."""

from repro.analysis.result import ReportBase, SchedulabilityResult
from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.synth.report import SynthesisReport
from repro.synth.search import SearchStats


def make_report(**overrides):
    table = TimeSlotTable.from_pattern([1, 0, 1, 0])
    defaults = dict(
        schedulable=True,
        table=table,
        servers=[ServerSpec(0, 10, 3), ServerSpec(1, 20, 4)],
    )
    defaults.update(overrides)
    return SynthesisReport(**defaults)


class TestProtocol:
    def test_satisfies_schedulability_result(self):
        report = make_report()
        assert isinstance(report, SchedulabilityResult)
        assert isinstance(report, ReportBase)

    def test_bool_mirrors_verdict(self):
        assert bool(make_report())
        assert not bool(make_report(schedulable=False))

    def test_failing_t_none_when_feasible(self):
        assert make_report().failing_t is None

    def test_failing_t_surfaces_witness(self):
        class FakeResult:
            schedulable = False
            failing_t = 42

        report = make_report(
            schedulable=False, local_results={1: FakeResult()}
        )
        assert report.failing_t == 42

    def test_summary_mentions_verdict_and_effort(self):
        stats = SearchStats()
        stats.oracle_calls = 9
        report = make_report(stats=stats)
        text = report.summary()
        assert "feasible" in text
        assert "9 oracle calls" in text


class TestPayload:
    def test_bandwidth_and_pairs(self):
        report = make_report()
        assert report.bandwidth == 3 / 10 + 4 / 20
        assert report.server_pairs() == [(10, 3), (20, 4)]

    def test_payload_is_canonical(self):
        import json

        first = json.dumps(make_report().to_payload(), sort_keys=True)
        second = json.dumps(make_report().to_payload(), sort_keys=True)
        assert first == second

    def test_payload_carries_provenance(self):
        stats = SearchStats()
        stats.nodes_expanded = 2
        stats.record_incumbent(0.5)
        payload = make_report(stats=stats).to_payload()
        assert payload["provenance"]["nodes_expanded"] == 2
        assert payload["provenance"]["bound_trajectory"] == [[2, 0.5]]
        assert payload["servers"] == [
            {"vm_id": 0, "pi": 10, "theta": 3},
            {"vm_id": 1, "pi": 20, "theta": 4},
        ]
