"""Differential properties: searched designs vs the reference analysis.

The synthesis acceptance contract, asserted end to end:

* every synthesized design re-passes the ``"scalar"`` reference engine
  (the search's own oracle never grades its own homework);
* ``sum Theta/Pi`` never exceeds the hand-written example baselines;
* the canonical payload is byte-identical across engines, reruns and
  worker counts (``REPRO_JOBS``).
"""

import json

from repro.analysis.engine import ENGINES
from repro.exp.runner import ExperimentRunner
from repro.exp.synth import (
    SynthCell,
    run_synth_cell,
    run_synth_sweep,
    scenario_names,
    synth_bench_record,
    validate_synth_bench_schema,
)


class TestScalarReverification:
    def test_every_scenario_engine_cell_verifies(self):
        sweep = run_synth_sweep()
        assert sweep.all_feasible
        assert sweep.all_scalar_verified


class TestBandwidthBaselines:
    def test_never_worse_than_hand_written_or_seed(self):
        sweep = run_synth_sweep()
        assert sweep.all_bandwidth_ok
        admission = sweep.for_scenario("admission-control")[0]
        assert admission.bandwidth <= 8 / 20 + 6 / 20
        assert admission.improved


class TestByteIdentity:
    def test_identical_across_engines(self):
        digests = {
            run_synth_cell(
                SynthCell("admission-control", engine, "python")
            ).payload_digest
            for engine in ENGINES
        }
        assert len(digests) == 1

    def test_identical_across_worker_counts(self):
        serial = run_synth_sweep(runner=ExperimentRunner(1))
        parallel = run_synth_sweep(runner=ExperimentRunner(2))
        for scenario in scenario_names():
            first = {c.payload_digest for c in serial.for_scenario(scenario)}
            second = {
                c.payload_digest for c in parallel.for_scenario(scenario)
            }
            assert first == second
            assert len(first) == 1

    def test_identical_across_reruns(self):
        first = run_synth_cell(SynthCell("quickstart", "batched", "python"))
        second = run_synth_cell(SynthCell("quickstart", "batched", "python"))
        assert first.payload_digest == second.payload_digest
        assert first.oracle_calls == second.oracle_calls


class TestBenchRecord:
    def test_record_passes_its_own_schema(self):
        sweep = run_synth_sweep(engines=("batched",))
        record = synth_bench_record(sweep)
        assert validate_synth_bench_schema(record) == []

    def test_record_round_trips_through_json(self):
        sweep = run_synth_sweep(engines=("batched",))
        record = synth_bench_record(sweep)
        reloaded = json.loads(json.dumps(record, sort_keys=True))
        assert validate_synth_bench_schema(reloaded) == []

    def test_schema_rejects_garbage(self):
        assert validate_synth_bench_schema([]) != []
        assert validate_synth_bench_schema({}) != []
        assert validate_synth_bench_schema({"schema_version": 999}) != []

    def test_committed_baseline_is_valid(self):
        from pathlib import Path

        committed = Path(__file__).resolve().parents[2] / "BENCH_synth.json"
        doc = json.loads(committed.read_text())
        assert validate_synth_bench_schema(doc) == []
