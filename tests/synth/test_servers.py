"""Bandwidth-minimal server synthesis: optimality, pins, fast path."""

import pytest

from repro.analysis.gsched_test import gsched_schedulable
from repro.analysis.lsched_test import lsched_schedulable
from repro.analysis.servers import minimum_budget
from repro.core.timeslot import TimeSlotTable
from repro.synth.servers import (
    candidate_periods_for,
    harmonic_fast_budget,
    synthesize_servers,
)
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def admission_workload():
    table = TimeSlotTable.from_pattern([1, 0, 0, 1, 0, 0, 0, 0, 0, 0])
    vm_tasksets = {
        0: TaskSet(
            [
                IOTask("steer", period=100, wcet=8),
                IOTask("park", period=200, wcet=20),
            ],
            name="vm0",
        ),
        1: TaskSet(
            [
                IOTask("media", period=250, wcet=25),
                IOTask("nav", period=500, wcet=30),
            ],
            name="vm1",
        ),
    }
    return table, vm_tasksets


class TestSynthesizeServers:
    def test_feasible_and_verified(self):
        table, vms = admission_workload()
        outcome = synthesize_servers(table, vms)
        assert outcome.feasible
        assert set(outcome.servers) == {0, 1}
        assert outcome.global_result is not None
        assert outcome.global_result.schedulable
        for vm_id, (pi, theta) in outcome.servers.items():
            assert lsched_schedulable(pi, theta, vms[vm_id]).schedulable

    def test_beats_hand_written_baseline(self):
        table, vms = admission_workload()
        outcome = synthesize_servers(table, vms)
        hand_written = 8 / 20 + 6 / 20  # examples/admission_control.py
        assert outcome.bandwidth <= hand_written

    def test_budgets_are_exactly_minimal(self):
        # Shrinking any theta by one must break the design: either the
        # VM's own Theorem-4 test or nothing -- the search returns the
        # cheapest feasible point, so local minimality must hold.
        table, vms = admission_workload()
        outcome = synthesize_servers(table, vms)
        for vm_id, (pi, theta) in sorted(outcome.servers.items()):
            if theta == 1:
                continue
            assert not lsched_schedulable(pi, theta - 1, vms[vm_id]).schedulable

    def test_deterministic_across_reruns(self):
        table, vms = admission_workload()
        first = synthesize_servers(table, vms)
        second = synthesize_servers(table, vms)
        assert first.servers == second.servers
        assert first.stats.oracle_calls == second.stats.oracle_calls
        assert first.stats.bound_trajectory == second.stats.bound_trajectory

    def test_fixed_server_respected(self):
        table, vms = admission_workload()
        outcome = synthesize_servers(table, vms, fixed={0: (20, 8)})
        assert outcome.feasible
        assert outcome.servers[0] == (20, 8)

    def test_pinned_period_respected(self):
        table, vms = admission_workload()
        outcome = synthesize_servers(table, vms, pinned_periods={1: 10})
        assert outcome.feasible
        assert outcome.servers[1][0] == 10

    def test_empty_vms_trivially_feasible(self):
        table, _ = admission_workload()
        outcome = synthesize_servers(table, {})
        assert outcome.feasible
        assert outcome.servers == {}
        assert outcome.bandwidth == 0

    def test_overloaded_vm_reported_infeasible(self):
        table = TimeSlotTable.from_pattern([1, 1, 1, 1, 1, 0, 0, 0, 0, 0])
        vms = {
            0: TaskSet([IOTask("hog", period=10, wcet=9)], name="vm0"),
        }
        outcome = synthesize_servers(table, vms)
        assert not outcome.feasible
        assert outcome.failures

    def test_as_design_backcompat(self):
        table, vms = admission_workload()
        outcome = synthesize_servers(table, vms)
        design = outcome.as_design()
        assert design.servers == outcome.servers
        assert bool(design.global_result.schedulable)

    def test_global_check_prunes_infeasible_assignments(self):
        # Both VMs want big budgets but the table only frees 8 of 10
        # slots; the assembly search must walk past the cheapest locally
        # feasible pairs until the Theorem-2 check passes.
        table, vms = admission_workload()
        outcome = synthesize_servers(table, vms)
        pairs = [outcome.servers[vm] for vm in sorted(outcome.servers)]
        assert gsched_schedulable(table, pairs).schedulable


class TestHarmonicFastBudget:
    def test_matches_exact_minimum_on_harmonic_sets(self):
        tasks = TaskSet(
            [
                IOTask("a", period=8, wcet=1),
                IOTask("b", period=16, wcet=2),
                IOTask("c", period=32, wcet=2),
            ],
            name="harmonic",
        )
        for pi in (2, 4, 5, 8, 10, 16):
            fast = harmonic_fast_budget(pi, tasks)
            if fast is None:
                continue
            exact = minimum_budget(pi, tasks)
            assert exact is not None
            # Soundness: the closed-form budget passes the oracle...
            assert lsched_schedulable(pi, fast, tasks).schedulable
            # ...and never undercuts the exact search.
            assert fast >= exact

    def test_non_harmonic_returns_none(self):
        tasks = TaskSet(
            [IOTask("a", period=6, wcet=1), IOTask("b", period=10, wcet=1)],
            name="non-harmonic",
        )
        assert harmonic_fast_budget(4, tasks) is None

    def test_constrained_deadline_returns_none(self):
        tasks = TaskSet(
            [IOTask("a", period=8, wcet=1, deadline=4)], name="constrained"
        )
        assert harmonic_fast_budget(4, tasks) is None

    def test_empty_returns_none(self):
        assert harmonic_fast_budget(4, TaskSet(name="empty")) is None


class TestCandidatePeriods:
    def test_divisors_of_table_length_clipped_to_deadline(self):
        table = TimeSlotTable.from_pattern([1, 0] * 6)  # 12 slots
        tasks = TaskSet([IOTask("a", period=6, wcet=1)], name="t")
        periods = candidate_periods_for(
            table, tasks, policy="min_deadline", uniform_period=50
        )
        assert all(period <= 6 for period in periods)
        assert all(12 % period == 0 or period == 6 for period in periods)
        assert periods == tuple(sorted(set(periods)))

    def test_extra_periods_included(self):
        table = TimeSlotTable.from_pattern([1, 0] * 6)
        tasks = TaskSet([IOTask("a", period=8, wcet=1)], name="t")
        periods = candidate_periods_for(
            table,
            tasks,
            policy="min_deadline",
            uniform_period=50,
            extra=(7,),
        )
        assert 7 in periods
