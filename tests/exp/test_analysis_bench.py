"""Tests for the scalar-vs-vectorized analysis benchmark."""

import json

from repro.exp.analysis_bench import (
    BENCH_SAMPLES,
    bench_taskset,
    export_analysis_bench_json,
    run_analysis_bench,
)
from repro.exp.runner import ExperimentRunner


class TestBenchWorkload:
    def test_taskset_is_pinned(self):
        first = bench_taskset(7, 12, 0.66)
        second = bench_taskset(7, 12, 0.66)
        assert [(t.period, t.wcet, t.deadline) for t in first] == [
            (t.period, t.wcet, t.deadline) for t in second
        ]

    def test_deadlines_are_constrained(self):
        tasks = bench_taskset(7, 16, 0.68)
        assert len(tasks) == 16
        for task in tasks:
            assert task.wcet <= task.deadline <= task.period

    def test_utilization_near_target(self):
        tasks = bench_taskset(3, 14, 0.67)
        utilization = sum(t.wcet / t.period for t in tasks)
        # Integer WCET rounding moves the draw a little off target.
        assert abs(utilization - 0.67) < 0.05


class TestBenchRun:
    def test_engines_agree_and_timings_recorded(self, tmp_path):
        runner = ExperimentRunner(1)
        result = run_analysis_bench(runner=runner)
        assert result.outputs_identical
        assert result.speedup > 0
        labels = [phase.label for phase in runner.timing.phases]
        assert "analysis-bench[scalar]" in labels
        assert "analysis-bench[vectorized]" in labels

        path = export_analysis_bench_json(result, tmp_path / "bench.json")
        payload = json.loads(path.read_text())
        assert payload["outputs_identical"] is True
        assert set(payload["engines"]) == {"scalar", "vectorized"}
        assert payload["samples_per_level"] == BENCH_SAMPLES
