"""Tests for the analysis-engine benchmark (scalar/vectorized/batched)."""

import json

import pytest

from repro.analysis.engine import ENGINES
from repro.exp.analysis_bench import (
    BENCH_BASIS,
    BENCH_SAMPLES,
    BENCH_SCHEMA_VERSION,
    BenchCell,
    bench_taskset,
    bench_history_record,
    export_analysis_bench_json,
    run_analysis_bench,
    run_bench_cell,
    validate_bench_schema,
    write_bench_history,
)
from repro.exp.runner import ExperimentRunner


class TestBenchWorkload:
    def test_taskset_is_pinned(self):
        first = bench_taskset(7, 12, 0.66)
        second = bench_taskset(7, 12, 0.66)
        assert [(t.period, t.wcet, t.deadline) for t in first] == [
            (t.period, t.wcet, t.deadline) for t in second
        ]

    def test_deadlines_are_constrained(self):
        tasks = bench_taskset(7, 16, 0.68)
        assert len(tasks) == 16
        for task in tasks:
            assert task.wcet <= task.deadline <= task.period

    def test_utilization_near_target(self):
        tasks = bench_taskset(3, 14, 0.67)
        utilization = sum(t.wcet / t.period for t in tasks)
        # Integer WCET rounding moves the draw a little off target.
        assert abs(utilization - 0.67) < 0.05

    def test_periods_divide_the_basis_hyperperiod(self):
        hyperperiod = BENCH_BASIS.hyperperiod()
        for seed in (3, 7, 11):
            for task in bench_taskset(seed, 12, 0.62):
                assert hyperperiod % task.period == 0


class TestBenchCell:
    def test_batched_cell_matches_per_pair_cells(self):
        cells = [
            BenchCell(
                engine=engine, pi=20, theta=14,
                utilization=0.62, samples=6, seed=2021,
            )
            for engine in ("scalar", "vectorized", "batched")
        ]
        rows = [run_bench_cell(cell) for cell in cells]
        verdicts = {(u, accepted) for u, accepted, _seconds in rows}
        assert len(verdicts) == 1
        for _u, _accepted, seconds in rows:
            assert seconds > 0


class TestBenchRun:
    def test_engines_agree_and_timings_recorded(self, tmp_path):
        runner = ExperimentRunner(1)
        result = run_analysis_bench(samples=6, repetitions=1, runner=runner)
        assert result.outputs_identical
        assert result.speedup > 0
        assert result.batched_speedup > 0
        labels = [phase.label for phase in runner.timing.phases]
        for engine in ENGINES:
            assert f"analysis-bench[{engine}]" in labels

        path = export_analysis_bench_json(result, tmp_path / "bench.json")
        payload = json.loads(path.read_text())
        assert payload["outputs_identical"] is True
        assert set(payload["engines"]) == set(ENGINES)
        assert set(ENGINES) >= {"scalar", "vectorized", "batched"}
        assert payload["samples_per_level"] == 6

    def test_repetitions_must_be_positive(self):
        with pytest.raises(ValueError):
            run_analysis_bench(repetitions=0)

    def test_default_samples_pinned(self):
        assert BENCH_SAMPLES == 60


class TestBenchHistory:
    def _result(self):
        return run_analysis_bench(
            samples=4, repetitions=1, runner=ExperimentRunner(1)
        )

    def test_record_passes_schema(self):
        record = bench_history_record(self._result())
        assert validate_bench_schema(record) == []
        assert record["schema_version"] == BENCH_SCHEMA_VERSION
        assert record["speedups"]["vectorized_over_scalar"] is not None
        assert record["speedups"]["batched_over_vectorized"] is not None

    def test_write_and_reload_roundtrip(self, tmp_path):
        path = write_bench_history(
            self._result(), tmp_path / "BENCH_analysis.json"
        )
        doc = json.loads(path.read_text())
        assert validate_bench_schema(doc) == []

    def test_validator_flags_structural_damage(self):
        record = bench_history_record(self._result())
        record.pop("speedups")
        record["schema_version"] = 999
        problems = validate_bench_schema(record)
        assert any("speedups" in p for p in problems)
        assert any("schema_version" in p for p in problems)
        assert validate_bench_schema([]) == ["document is not a JSON object"]
