"""Unit tests for the inter-VM isolation experiment."""

import pytest

from repro.exp.isolation import (
    declared_tasks,
    dimension_servers,
    render_isolation,
    run_isolation,
)


@pytest.fixture(scope="module")
def isolation_result():
    return run_isolation(
        rogue_factors=(1.0, 8.0, 16.0), horizon_slots=12_000
    )


class TestIsolation:
    def test_servers_dimensioned_from_declarations(self):
        servers = dimension_servers(declared_tasks())
        assert [s.vm_id for s in servers] == [0, 1]
        for spec in servers:
            assert 1 <= spec.theta <= spec.pi

    def test_victim_protected_under_ioguard(self, isolation_result):
        """Footnote 1: pool partitioning isolates VMs -- the victim
        never misses, at any rogue intensity."""
        assert all(
            misses == 0
            for misses in isolation_result.miss_curve("ioguard-rchannel")
        )

    def test_fifo_collapses_under_flood(self, isolation_result):
        """The conventional shared FIFO lets the rogue starve the
        victim once the flood saturates the device."""
        curve = isolation_result.miss_curve("shared-fifo")
        assert curve[0] == 0  # contract kept: FIFO is fine
        assert curve[-1] > isolation_result.victim_jobs * 0.5

    def test_contract_kept_both_fine(self, isolation_result):
        for discipline in ("ioguard-rchannel", "shared-fifo"):
            assert isolation_result.miss_curve(discipline)[0] == 0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            run_isolation(rogue_factors=(0.5,), horizon_slots=1_000)

    def test_render(self, isolation_result):
        text = render_isolation(isolation_result)
        assert "rogue x16" in text
        assert "ioguard-rchannel" in text
