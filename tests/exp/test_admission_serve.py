"""Tests for the admission-serve benchmark and its committed record."""

import json
from pathlib import Path

import pytest

from repro.exp.admission_serve import (
    render_admission_serve,
    run_admission_serve,
    write_admission_serve_history,
)
from repro.serve.bench import (
    ADMISSION_BENCH_SCHEMA_VERSION,
    compare_digests,
    default_system,
    digest_log,
    generate_workload,
    validate_admission_bench_schema,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestWorkload:
    def test_generation_is_deterministic(self):
        assert generate_workload(3, 10, 42) == generate_workload(3, 10, 42)
        assert generate_workload(3, 10, 42) != generate_workload(3, 10, 43)

    def test_seq_values_are_unique_and_per_vm_increasing(self):
        scripts = generate_workload(4, 20, 7)
        seen = set()
        for vm_id, script in scripts.items():
            seqs = [message["seq"] for message in script]
            assert seqs == sorted(seqs)
            seen.update(seqs)
        assert len(seen) == 4 * 20

    def test_default_system_has_one_server_per_vm(self):
        system = default_system(5)
        assert [entry[0] for entry in system["servers"]] == [0, 1, 2, 3, 4]
        assert set(system["table_pattern"]) <= {0, 1}

    def test_digest_is_stable(self):
        assert digest_log(["a", "b"]) == digest_log(["a", "b"])
        assert digest_log([]) != digest_log(["a"])


class TestBenchRecord:
    @pytest.fixture(scope="class")
    def record(self):
        # Inline backend and a small burst: this is a structural test,
        # not a performance measurement.
        return run_admission_serve(
            (1, 2), repeats=1, num_vms=2, ops_per_vm=6, backend="inline"
        )

    def test_record_is_schema_valid(self, record):
        assert validate_admission_bench_schema(record) == []

    def test_record_is_deterministic_across_shard_counts(self, record):
        assert record["deterministic"] is True
        assert compare_digests(record["runs"]) is None

    def test_reports_positive_throughput(self, record):
        for run in record["runs"]:
            assert run["requests_per_sec"] > 0
            assert run["requests"] == 2 * 6

    def test_render_mentions_the_verdict(self, record):
        text = render_admission_serve(record)
        assert "byte-identical" in text
        assert "req/s" in text

    def test_history_write_round_trips(self, record, tmp_path):
        path = write_admission_serve_history(
            record, tmp_path / "BENCH_admission.json"
        )
        loaded = json.loads(path.read_text())
        assert validate_admission_bench_schema(loaded) == []
        assert loaded["log_digest"] == record["log_digest"]


class TestSchemaValidation:
    def test_committed_baseline_is_valid(self):
        doc = json.loads((REPO_ROOT / "BENCH_admission.json").read_text())
        assert validate_admission_bench_schema(doc) == []
        assert doc["schema_version"] == ADMISSION_BENCH_SCHEMA_VERSION
        assert doc["deterministic"] is True

    def test_rejects_non_object(self):
        assert validate_admission_bench_schema([]) != []

    def test_rejects_wrong_version(self):
        doc = {
            "schema_version": 999,
            "workload": {},
            "runs": [],
            "log_digest": "x",
            "deterministic": True,
        }
        problems = validate_admission_bench_schema(doc)
        assert any("schema_version" in p for p in problems)

    def test_rejects_runs_without_rate(self):
        doc = json.loads(
            (REPO_ROOT / "BENCH_admission.json").read_text()
        )
        doc["runs"][0].pop("requests_per_sec")
        problems = validate_admission_bench_schema(doc)
        assert any("requests_per_sec" in p for p in problems)

    def test_writer_refuses_invalid_record(self, tmp_path):
        with pytest.raises(ValueError, match="invalid bench record"):
            write_admission_serve_history({}, tmp_path / "x.json")
