"""Acceptance tests for the fault-plan isolation experiment.

ISSUE acceptance criteria: under the seeded fault plan, I/O-GUARD's
victim VM misses zero deadlines while at least one baseline misses, and
identical seeds reproduce byte-identical fault and simulation traces.
"""

import json

from repro.exp.isolation import (
    FAULT_DISCIPLINES,
    build_isolation_fault_plan,
    fault_declared_tasks,
    render_fault_isolation,
    run_fault_isolation,
)

SEED = 2021
HORIZON = 4_000


def run_once():
    return run_fault_isolation(seed=SEED, horizon_slots=HORIZON)


class TestAcceptance:
    def test_victim_protected_only_under_ioguard(self):
        result = run_once()
        assert result.victim_jobs > 0
        assert result.victim_misses["ioguard"] == 0
        baseline_misses = [
            result.victim_misses[d] for d in FAULT_DISCIPLINES if d != "ioguard"
        ]
        assert all(m >= 1 for m in baseline_misses)

    def test_rogue_quarantined_and_victim_unpressured(self):
        result = run_once()
        assert any(e.category == "vm" and e.target == "1"
                   for e in result.quarantine_log)
        victim = result.backpressure.for_vm(0)
        assert victim.rejected == 0
        rogue = result.backpressure.for_vm(1)
        assert rogue.rejected > 0

    def test_same_seed_byte_identical(self):
        first = run_once()
        second = run_once()
        assert first.plan.digest() == second.plan.digest()
        assert first.fault_trace_jsonl == second.fault_trace_jsonl
        assert first.fault_trace_digest == second.fault_trace_digest
        assert first.sim_trace_digests == second.sim_trace_digests
        assert first.victim_misses == second.victim_misses

    def test_different_seed_different_plan(self):
        assert (
            build_isolation_fault_plan(1, HORIZON).digest()
            != build_isolation_fault_plan(2, HORIZON).digest()
        )

    def test_trace_is_canonical_jsonl(self):
        result = run_once()
        lines = result.fault_trace_jsonl.splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert set(record) >= {"slot", "kind", "target", "action"}
            # Canonical form: sorted keys, compact separators.
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )

    def test_devices_partitioned_by_vm(self):
        declared = fault_declared_tasks()
        for task in declared:
            expected = "eth0" if task.vm_id == 0 else "sens1"
            assert task.device == expected

    def test_render_mentions_every_discipline(self):
        text = render_fault_isolation(run_once())
        for discipline in FAULT_DISCIPLINES:
            assert discipline in text
        assert "fault trace digest" in text
