"""Unit tests for the experiment drivers and reporting."""

import pytest

from repro.exp.fig6 import fig6_report, fig6_rows, render_fig6
from repro.exp.fig7 import (
    CaseStudyConfig,
    default_systems,
    render_fig7,
    run_case_study,
)
from repro.exp.fig8 import fig8_report, render_fig8
from repro.exp.reporting import render_table
from repro.exp.table1 import render_table1, table1_ratios, table1_report


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xx", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        text = render_table(["x"], [[1.23456], [2.0], [True]])
        assert "1.235" in text
        assert "\n2 " in text or text.endswith("2")
        assert "yes" in text


class TestFig6:
    def test_report_covers_four_systems(self):
        report = fig6_report()
        assert set(report) == {"legacy", "rt-xen", "bv", "ioguard"}

    def test_rows_in_kb(self):
        rows = fig6_rows()
        assert all(len(row) == 6 for row in rows)
        legacy_kernel = [
            row for row in rows if row[0] == "legacy" and row[1] == "os-kernel"
        ][0]
        assert legacy_kernel[5] == pytest.approx(47, abs=1)

    def test_render_contains_headline(self):
        text = render_fig6()
        assert "+129.8%" in text
        assert "ioguard" in text


class TestTable1:
    def test_report_rows(self):
        rows = dict(table1_report())
        assert rows["proposed"].dsp == 0

    def test_ratios(self):
        ratios = table1_ratios()
        assert ratios["vs_microblaze"]["luts"] == pytest.approx(0.566, abs=0.01)

    def test_render(self):
        text = render_table1()
        assert "Table I" in text
        assert "proposed" in text
        assert "blueio" in text


class TestFig8:
    def test_report_default_range(self):
        points = fig8_report()
        assert [p.eta for p in points] == [0, 1, 2, 3, 4, 5]

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            fig8_report(-1)

    def test_render_sections(self):
        text = render_fig8()
        assert "Fig. 8(a)" in text
        assert "Fig. 8(b)" in text
        assert "Fig. 8(c)" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        config = CaseStudyConfig(
            utilizations=(0.4, 0.9),
            vm_groups=(4,),
            trials=2,
            horizon_slots=10_000,
            use_env_scale=False,
        )
        return run_case_study(config)

    def test_grid_complete(self, tiny_result):
        points = tiny_result.groups[4]
        systems = {point.system for point in points}
        assert systems == {s.name for s in default_systems()}
        assert len(points) == len(systems) * 2

    def test_success_curves_extractable(self, tiny_result):
        curve = tiny_result.success_curve(4, "ioguard-70")
        assert set(curve) == {0.4, 0.9}
        assert curve[0.4] == 1.0

    def test_throughput_grows_with_utilization(self, tiny_result):
        for system in ("ioguard-70", "ioguard-40"):
            curve = tiny_result.throughput_curve(4, system)
            assert curve[0.9] > curve[0.4]

    def test_render(self, tiny_result):
        text = render_fig7(tiny_result)
        assert "4-VM group" in text
        assert "ioguard-70" in text

    def test_env_scale_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        config = CaseStudyConfig(trials=10, horizon_slots=50_000)
        effective = config.effective()
        assert effective.trials == 5
        assert effective.horizon_slots == 25_000

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ValueError):
            CaseStudyConfig().effective()

    def test_env_scale_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            CaseStudyConfig().effective()
