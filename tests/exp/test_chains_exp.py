"""The chains experiment: determinism, artifacts and the CLI gate."""

from repro.exp.__main__ import main
from repro.exp.chains import (
    ChainsSweepConfig,
    export_chains_csv,
    export_chains_json,
    render_chains_sweep,
    run_chains_sweep,
)
from repro.exp.runner import ExperimentRunner

#: One cell, one trial: enough to cross the whole pipeline in well
#: under a second while the full-size sweep stays a CLI-only affair.
TINY = ChainsSweepConfig(
    seed=2021,
    chain_lengths=(2,),
    utilizations=(0.4,),
    trials=1,
    chain_count=2,
    vm_count=2,
    horizon_slots=400,
    periods=(10, 20, 40),
    period_weights=(2, 2, 1),
)


class TestChainsSweep:
    def test_sweep_produces_instances_and_no_violations(self):
        result = run_chains_sweep(TINY)
        assert len(result.cells) == 1
        cell = result.cells[0]
        assert cell.systems == 1
        assert result.total_violations == 0
        if cell.schedulable_systems:
            assert cell.chain_instances > 0
            assert cell.max_age_bound is not None
            assert cell.max_age_observed <= cell.max_age_bound
            assert cell.max_reaction_observed <= cell.max_reaction_bound

    def test_byte_identical_across_reruns_and_jobs(self, tmp_path):
        serial = run_chains_sweep(TINY, runner=ExperimentRunner(1))
        again = run_chains_sweep(TINY, runner=ExperimentRunner(1))
        fanned = run_chains_sweep(TINY, runner=ExperimentRunner(2))
        paths = {}
        for label, result in (
            ("serial", serial), ("again", again), ("fanned", fanned)
        ):
            json_path = export_chains_json(result, tmp_path / f"{label}.json")
            csv_path = export_chains_csv(result, tmp_path / f"{label}.csv")
            paths[label] = (json_path.read_bytes(), csv_path.read_bytes())
        assert paths["serial"] == paths["again"]
        assert paths["serial"] == paths["fanned"]
        assert render_chains_sweep(serial) == render_chains_sweep(fanned)

    def test_render_contains_table_and_differential_line(self):
        result = run_chains_sweep(TINY)
        rendered = render_chains_sweep(result)
        assert "Cause-effect chains" in rendered
        assert "differential:" in rendered
        assert "0 bound violations" in rendered


class TestChainsCli:
    def test_cli_runs_writes_artifacts_and_passes_gate(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "chains"
        argv = [
            "chains", "--trials", "5", "--horizon", "10000",
            "--out", str(out_dir),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Cause-effect chains" in captured.out
        assert "chains.json" in captured.err
        assert (out_dir / "chains.json").exists()
        assert (out_dir / "chains.csv").exists()

    def test_cli_stdout_and_artifacts_byte_identical(self, tmp_path, capsys):
        outputs = []
        artifacts = []
        for run in ("one", "two"):
            out_dir = tmp_path / run
            assert main([
                "chains", "--trials", "5", "--horizon", "10000",
                "--out", str(out_dir),
            ]) == 0
            outputs.append(capsys.readouterr().out)
            artifacts.append((
                (out_dir / "chains.json").read_bytes(),
                (out_dir / "chains.csv").read_bytes(),
            ))
        assert outputs[0] == outputs[1]
        assert artifacts[0] == artifacts[1]
