"""Unit tests for the schedule tracer."""

import pytest

from repro.core.gsched import ServerSpec
from repro.exp.schedule_trace import ScheduleTracer
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def tracer():
    predefined = TaskSet([
        IOTask(name="poll", period=10, wcet=2, kind=TaskKind.PREDEFINED)
    ])
    return ScheduleTracer(
        predefined, [ServerSpec(0, 10, 4), ServerSpec(1, 10, 4)]
    )


def runtime_job(name, release, wcet=2, vm_id=0, deadline=100):
    task = IOTask(
        name=name, period=1000, wcet=wcet, deadline=deadline, vm_id=vm_id
    )
    return task.job(release=release, index=0)


class TestScheduleTracer:
    def test_records_every_slot(self):
        t = tracer()
        t.run(20, [])
        assert len(t.records) == 20
        channels = {record.channel for record in t.records}
        assert channels <= {"P", "R", "."}

    def test_pchannel_slots_marked(self):
        t = tracer()
        t.run(10, [])
        p_slots = [r.slot for r in t.records if r.channel == "P"]
        assert len(p_slots) == 2  # poll's 2 WCET slots per period
        for record in t.records:
            if record.channel == "P":
                assert record.task_name == "poll"

    def test_rchannel_grants_recorded(self):
        t = tracer()
        t.run(10, [(0, runtime_job("io", 0, wcet=3))])
        r_records = [r for r in t.records if r.channel == "R"]
        assert len(r_records) == 3
        assert all(r.vm_id == 0 for r in r_records)
        assert all(r.task_name == "io" for r in r_records)

    def test_strip_rendering(self):
        t = tracer()
        t.run(10, [(0, runtime_job("io", 0, wcet=3))])
        strip = t.strip()
        assert len(strip) == 10
        assert strip.count("P") == 2
        assert strip.count("0") == 3
        assert strip.count(".") == 5

    def test_background_grants_lowercase(self):
        t = tracer()
        # 5 slots of work against a 4-slot budget: the fifth grant is
        # background (lowercase in the strip).
        t.run(10, [(0, runtime_job("big", 0, wcet=5))])
        strip = t.strip()
        assert "a" in strip
        assert strip.count("0") == 4

    def test_utilization_summary(self):
        t = tracer()
        t.run(10, [(0, runtime_job("io", 0, wcet=3))])
        summary = t.utilization_summary()
        assert summary["P"] == pytest.approx(0.2)
        assert summary["R"] == pytest.approx(0.3)
        assert summary["idle"] == pytest.approx(0.5)
        assert sum(summary.values()) == pytest.approx(1.0)

    def test_grants_by_vm(self):
        t = tracer()
        t.run(
            20,
            [
                (0, runtime_job("a", 0, wcet=3, vm_id=0)),
                (0, runtime_job("b", 0, wcet=2, vm_id=1)),
            ],
        )
        grants = t.grants_by_vm()
        assert grants[0][0] + grants[0][1] == 3
        assert grants[1][0] + grants[1][1] == 2

    def test_empty_summary(self):
        t = tracer()
        assert t.utilization_summary() == {"P": 0.0, "R": 0.0, "idle": 0.0}
