"""Unit tests for the predictability experiment and result export."""

import json

import pytest

from repro.baselines import IOGuardSystem, LegacySystem, RTXenSystem
from repro.exp.export import (
    export_fig7_csv,
    export_fig7_json,
    export_fig8_csv,
    export_predictability_csv,
    read_csv_rows,
)
from repro.exp.fig7 import CaseStudyConfig, run_case_study
from repro.exp.predictability import (
    render_predictability,
    run_predictability,
)


@pytest.fixture(scope="module")
def predictability_result():
    return run_predictability(
        target_utilization=0.6,
        trials=1,
        horizon_slots=15_000,
        systems=[LegacySystem(), RTXenSystem(), IOGuardSystem(0.4)],
    )


class TestPredictability:
    def test_stats_per_system(self, predictability_result):
        assert set(predictability_result.stats) == {
            "legacy", "rt-xen", "ioguard-40"
        }
        for stats in predictability_result.stats.values():
            assert stats.count > 100

    def test_per_task_jitter_computed(self, predictability_result):
        for system, jitter in predictability_result.per_task_jitter.items():
            assert jitter.count > 10, system
            assert jitter.minimum >= 0

    def test_paper_shape_ioguard_tighter_than_rtxen(
        self, predictability_result
    ):
        """The motivation claim (Sec. I): conventional virtualization
        adds timing variance; the hypervisor removes it."""
        assert predictability_result.jitter_of(
            "ioguard-40"
        ) < predictability_result.jitter_of("rt-xen")

    def test_render(self, predictability_result):
        text = render_predictability(predictability_result)
        assert "jitter" in text
        assert "ioguard-40" in text

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            run_predictability(target_utilization=0)


class TestExport:
    @pytest.fixture(scope="class")
    def tiny_sweep(self):
        config = CaseStudyConfig(
            utilizations=(0.4, 0.7),
            vm_groups=(4,),
            trials=1,
            horizon_slots=8_000,
            use_env_scale=False,
        )
        return run_case_study(config)

    def test_fig7_csv_roundtrip(self, tiny_sweep, tmp_path):
        path = export_fig7_csv(tiny_sweep, tmp_path / "fig7.csv")
        rows = read_csv_rows(path)
        assert len(rows) == 5 * 2  # systems x utilizations
        assert {row["system"] for row in rows} == {
            "legacy", "rt-xen", "bv", "ioguard-40", "ioguard-70"
        }
        for row in rows:
            assert 0.0 <= float(row["success_ratio"]) <= 1.0

    def test_fig7_json(self, tiny_sweep, tmp_path):
        path = export_fig7_json(tiny_sweep, tmp_path / "fig7.json")
        payload = json.loads(path.read_text())
        assert payload["config"]["trials"] == 1
        assert "4" in payload["groups"]
        curves = payload["groups"]["4"]["ioguard-70"]
        assert curves["utilization"] == [0.4, 0.7]
        assert len(curves["success_ratio"]) == 2

    def test_fig8_csv(self, tmp_path):
        path = export_fig8_csv(tmp_path / "fig8.csv", eta_max=3)
        rows = read_csv_rows(path)
        assert [int(row["eta"]) for row in rows] == [0, 1, 2, 3]
        for row in rows:
            assert float(row["ioguard_fmax_mhz"]) > float(row["legacy_fmax_mhz"])

    def test_predictability_csv(self, predictability_result, tmp_path):
        path = export_predictability_csv(
            predictability_result, tmp_path / "pred.csv"
        )
        rows = read_csv_rows(path)
        assert {row["system"] for row in rows} == {
            "legacy", "rt-xen", "ioguard-40"
        }
