"""Tests for the command-line entry point."""

import pytest

from repro.exp.__main__ import main


class TestCli:
    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "+129.8%" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "proposed" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8(a)" in out and "Fig. 8(c)" in out

    def test_fig7_tiny(self, capsys):
        assert main(["fig7", "--trials", "1", "--horizon", "6000"]) == 0
        out = capsys.readouterr().out
        assert "4-VM group" in out

    def test_isolation(self, capsys):
        assert main(["isolation", "--horizon", "16000"]) == 0
        out = capsys.readouterr().out
        assert "rogue" in out

    def test_acceptance(self, capsys):
        assert main(["acceptance"]) == 0
        out = capsys.readouterr().out
        assert "Acceptance ratio" in out

    def test_export(self, tmp_path, capsys):
        assert main([
            "export", "--trials", "1", "--horizon", "6000",
            "--out", str(tmp_path / "results"),
        ]) == 0
        out = capsys.readouterr().out
        assert "fig7.csv" in out
        assert (tmp_path / "results" / "fig8.csv").exists()

    def test_analysis_bench(self, tmp_path, capsys):
        out_dir = tmp_path / "bench"
        assert main(["analysis-bench", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "outputs identical: yes" in out
        assert "speedup" in out
        assert (out_dir / "timing.json").exists()
        assert (out_dir / "analysis_bench.json").exists()

    def test_analysis_bench_min_speedup_gate(self, tmp_path):
        # An impossible floor must trip the regression gate (exit 3).
        assert main([
            "analysis-bench", "--min-speedup", "1e9",
            "--out", str(tmp_path / "bench"),
        ]) == 3

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
