"""Unit tests for the weighted-schedulability experiment."""

import pytest

from repro.exp.weighted import render_weighted, run_weighted


@pytest.fixture(scope="module")
def result():
    return run_weighted(
        servers=((10, 5), (40, 20), (10, 7)),
        utilizations=(0.2, 0.4, 0.6),
        samples=15,
    )


class TestWeighted:
    def test_grid_complete(self, result):
        assert set(result.grid) == {(10, 5), (40, 20), (10, 7)}
        for row in result.grid.values():
            assert set(row) == {0.2, 0.4, 0.6}
            assert all(0.0 <= ratio <= 1.0 for ratio in row.values())

    def test_acceptance_declines_with_utilization(self, result):
        for row in result.grid.values():
            assert row[0.2] >= row[0.6]

    def test_shorter_period_wins_at_fixed_bandwidth(self, result):
        """Smaller blackout 2*(Pi-Theta): (10,5) dominates (40,20)."""
        short = result.grid[(10, 5)]
        long = result.grid[(40, 20)]
        for utilization in result.utilizations:
            assert short[utilization] >= long[utilization]
        assert result.weighted_score((10, 5)) >= result.weighted_score(
            (40, 20)
        )

    def test_higher_bandwidth_wins(self, result):
        assert result.weighted_score((10, 7)) >= result.weighted_score((10, 5))

    def test_weighted_score_definition(self, result):
        server = (10, 5)
        row = result.grid[server]
        expected = sum(u * row[u] for u in result.utilizations) / sum(
            result.utilizations
        )
        assert result.weighted_score(server) == pytest.approx(expected)

    def test_render(self, result):
        text = render_weighted(result)
        assert "weighted" in text
        assert "(10,5)" in text

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            run_weighted(samples=0)
