"""Unit tests for server dimensioning."""

import pytest

from repro.analysis.lsched_test import lsched_schedulable
from repro.analysis.servers import (
    bandwidth_of,
    choose_period,
    design_servers,
    minimum_budget,
)
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def vm_tasks(*specs, name="vm"):
    return TaskSet(
        [
            IOTask(name=f"{name}.t{i}", period=T, wcet=C, deadline=D)
            for i, (T, C, D) in enumerate(specs)
        ],
        name=name,
    )


class TestMinimumBudget:
    def test_minimal_and_sufficient(self):
        tasks = vm_tasks((30, 4, 25), (50, 6, 50))
        theta = minimum_budget(10, tasks)
        assert theta is not None
        assert lsched_schedulable(10, theta, tasks).schedulable
        if theta > 1:
            assert not lsched_schedulable(10, theta - 1, tasks).schedulable

    def test_empty_taskset_gets_unit_budget(self):
        assert minimum_budget(10, TaskSet()) == 1

    def test_infeasible_under_cap_returns_none(self):
        # Deadline 4 under a period-10 server needs theta >= 9 to shrink
        # the blackout enough; a cap below that makes dimensioning fail.
        tasks = vm_tasks((100, 1, 4))
        assert minimum_budget(10, tasks, theta_cap=5) is None
        assert minimum_budget(10, tasks) == 9

    def test_overutilized_returns_none(self):
        tasks = vm_tasks((10, 9, 10), (10, 2, 10))
        assert minimum_budget(10, tasks) is None

    def test_invalid_pi(self):
        with pytest.raises(ValueError):
            minimum_budget(0, TaskSet())


class TestChoosePeriod:
    def test_min_deadline_policy(self):
        tasks = vm_tasks((40, 2, 30), (20, 1, 16))
        assert choose_period(tasks, "min_deadline") == 8

    def test_harmonic_policy_power_of_two(self):
        tasks = vm_tasks((40, 2, 30), (20, 1, 17))
        period = choose_period(tasks, "harmonic")
        assert period & (period - 1) == 0  # power of two
        assert period <= 17 // 2

    def test_uniform_policy(self):
        tasks = vm_tasks((40, 2, 30))
        assert choose_period(tasks, "uniform", uniform_period=25) == 25

    def test_empty_tasks_use_uniform(self):
        assert choose_period(TaskSet(), "min_deadline", uniform_period=50) == 50

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown period policy"):
            choose_period(TaskSet(), "bogus")


class TestDesignServers:
    def test_feasible_design(self):
        table = TimeSlotTable.from_pattern([1, 0, 0, 0, 0] * 4)  # F/H = 0.8
        vms = {
            0: vm_tasks((40, 2, 40), (60, 3, 60), name="vm0"),
            1: vm_tasks((50, 4, 50), name="vm1"),
        }
        design = design_servers(table, vms)
        assert design.feasible
        assert set(design.servers) == {0, 1}
        for vm_id, (pi, theta) in design.servers.items():
            assert lsched_schedulable(pi, theta, vms[vm_id]).schedulable

    def test_infeasible_vm_reported(self):
        table = TimeSlotTable.empty(10)
        vms = {0: vm_tasks((10, 9, 10), (10, 3, 10), name="vm0")}
        design = design_servers(table, vms)
        assert not design.feasible
        assert 0 in design.failures

    def test_global_overload_reported(self):
        # Table with tiny free bandwidth cannot host both servers.
        table = TimeSlotTable.from_pattern([1, 1, 1, 0] * 5)  # F/H = 0.25
        vms = {
            0: vm_tasks((20, 4, 20), name="vm0"),
            1: vm_tasks((20, 4, 20), name="vm1"),
        }
        design = design_servers(table, vms)
        assert not design.feasible

    def test_as_pairs_ordered(self):
        table = TimeSlotTable.empty(10)
        vms = {
            1: vm_tasks((40, 1, 40), name="vm1"),
            0: vm_tasks((40, 1, 40), name="vm0"),
        }
        design = design_servers(table, vms)
        assert design.as_pairs() == [design.servers[0], design.servers[1]]

    def test_bandwidth_of(self):
        assert bandwidth_of([(10, 5), (20, 5)]) == pytest.approx(0.75)
