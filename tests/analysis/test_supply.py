"""Unit tests for supply bound functions (Eqs. 1, 2, 8)."""

import pytest

from repro.analysis.supply import (
    linear_sigma_lower_bound,
    linear_supply_lower_bound,
    sbf_server,
    sbf_server_exact_blackout,
    sbf_sigma,
    supply_at_least,
)
from repro.core.timeslot import TimeSlotTable


class TestSbfSigma:
    def test_zero_window(self, small_table):
        assert sbf_sigma(small_table, 0) == 0

    def test_full_hyperperiod_gives_f(self, small_table):
        # Any H-length window contains exactly F free slots.
        assert sbf_sigma(small_table, small_table.total_slots) == (
            small_table.free_slots
        )

    def test_periodic_extension_eq2(self, small_table):
        h = small_table.total_slots
        f = small_table.free_slots
        for t in range(0, 3 * h):
            expected = small_table.enum(t % h) + (t // h) * f
            assert sbf_sigma(small_table, t) == expected

    def test_worst_window_manual(self):
        # Pattern 1 1 0 0: worst 2-window is the occupied pair -> 0 free.
        table = TimeSlotTable.from_pattern([1, 1, 0, 0])
        assert sbf_sigma(table, 1) == 0
        assert sbf_sigma(table, 2) == 0
        assert sbf_sigma(table, 3) == 1
        assert sbf_sigma(table, 4) == 2

    def test_sliding_window_bruteforce(self, small_table):
        """sbf equals the explicit minimum over all window placements."""
        pattern = small_table.occupancy_pattern()
        h = len(pattern)
        free = [1 - bit for bit in pattern] * 4
        for t in range(0, 2 * h):
            brute = min(sum(free[s : s + t]) for s in range(h))
            assert sbf_sigma(small_table, t) == brute, f"t={t}"

    def test_all_free_table(self):
        table = TimeSlotTable.empty(5)
        for t in range(12):
            assert sbf_sigma(table, t) == t

    def test_all_occupied_table(self):
        table = TimeSlotTable.from_pattern([1, 1, 1])
        for t in range(10):
            assert sbf_sigma(table, t) == 0

    def test_negative_t_rejected(self, small_table):
        with pytest.raises(ValueError):
            sbf_sigma(small_table, -1)

    def test_monotone_nondecreasing(self, small_table):
        values = [sbf_sigma(small_table, t) for t in range(40)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_linear_lower_bound_eq6(self, small_table):
        for t in range(0, 50):
            assert sbf_sigma(small_table, t) >= linear_sigma_lower_bound(
                small_table, t
            ) - 1e-9


class TestSbfServer:
    def test_blackout_region_zero(self):
        # Gamma=(10,4): no supply guaranteed before t' >= 0, i.e. t < 6.
        for t in range(0, 6):
            assert sbf_server(10, 4, t) == 0

    def test_hand_computed_values(self):
        # Worst-case phasing of (10, 4): double blackout of 2*(pi-theta)
        # = 12 slots, then 4 supplied slots closing each period.
        assert sbf_server(10, 4, 6) == 0
        assert sbf_server(10, 4, 10) == 0
        assert sbf_server(10, 4, 13) == 1
        assert sbf_server(10, 4, 16) == 4
        assert sbf_server(10, 4, 26) == 8

    def test_matches_blackout_reference(self):
        for pi, theta in [(10, 4), (7, 7), (5, 1), (12, 6), (9, 8)]:
            for t in range(0, 4 * pi):
                assert sbf_server(pi, theta, t) == sbf_server_exact_blackout(
                    pi, theta, t
                ), (pi, theta, t)

    def test_full_bandwidth_server(self):
        # theta == pi: supply is t (no blackout).
        for t in range(20):
            assert sbf_server(10, 10, t) == t

    def test_monotone(self):
        values = [sbf_server(10, 3, t) for t in range(60)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_long_run_rate(self):
        # Over k periods the supply approaches k * theta.
        assert sbf_server(10, 4, 1006) >= 4 * 100 - 10

    def test_invalid_server(self):
        with pytest.raises(ValueError):
            sbf_server(0, 1, 5)
        with pytest.raises(ValueError):
            sbf_server(10, 0, 5)
        with pytest.raises(ValueError):
            sbf_server(10, 11, 5)

    def test_negative_t(self):
        with pytest.raises(ValueError):
            sbf_server(10, 4, -1)

    def test_linear_lower_bound_eq12(self):
        for pi, theta in [(10, 4), (8, 3), (20, 15)]:
            for t in range(0, 5 * pi):
                assert sbf_server(pi, theta, t) >= linear_supply_lower_bound(
                    pi, theta, t
                ) - 1e-9


class TestSupplyAtLeast:
    def test_zero_demand(self, small_table):
        assert supply_at_least(small_table, 0) == 0

    def test_definition(self, small_table):
        for demand in (1, 3, 7, 15):
            t = supply_at_least(small_table, demand)
            assert sbf_sigma(small_table, t) >= demand
            assert t == 0 or sbf_sigma(small_table, t - 1) < demand

    def test_no_free_slots(self):
        table = TimeSlotTable.from_pattern([1, 1])
        with pytest.raises(ValueError, match="no free"):
            supply_at_least(table, 1)

    def test_negative_demand(self, small_table):
        with pytest.raises(ValueError):
            supply_at_least(small_table, -1)
