"""Unit tests for the L-Sched tests (Theorems 3 and 4)."""

import pytest

from repro.analysis.lsched_test import (
    lsched_schedulable,
    lsched_schedulable_exact,
    theorem4_bound,
)
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def taskset(*specs):
    return TaskSet(
        [
            IOTask(name=f"t{i}", period=T, wcet=C, deadline=D)
            for i, (T, C, D) in enumerate(specs)
        ]
    )


class TestTheorem4Bound:
    def test_formula(self):
        tasks = taskset((20, 2, 15), (30, 3, 30))
        # max(T-D) = 5, Pi=10, Theta=6 -> numerator 5+20-6-1=18,
        # slack = 0.6 - (0.1+0.1) = 0.4 -> bound 45.
        assert theorem4_bound(10, 6, tasks) == 45

    def test_requires_positive_slack(self):
        tasks = taskset((10, 5, 10))
        with pytest.raises(ValueError, match="slack"):
            theorem4_bound(10, 4, tasks)

    def test_invalid_server(self):
        with pytest.raises(ValueError):
            theorem4_bound(0, 1, taskset((10, 1, 10)))


class TestLschedSchedulable:
    def test_light_load_schedulable(self):
        tasks = taskset((20, 1, 20), (40, 2, 40))
        result = lsched_schedulable(10, 5, tasks)
        assert result.schedulable
        assert result.method == "theorem4"

    def test_empty_taskset(self):
        assert lsched_schedulable(10, 5, TaskSet()).schedulable

    def test_overutilized_fails(self):
        tasks = taskset((10, 6, 10))
        result = lsched_schedulable(10, 5, tasks)
        assert not result.schedulable
        assert result.slack < 0

    def test_blackout_kills_tight_deadline(self):
        # Server (10, 5): worst-case blackout 2*(10-5)=10 slots; a task
        # with D=8 < 10 cannot be guaranteed even at tiny utilization.
        tasks = taskset((100, 1, 8))
        assert not lsched_schedulable(10, 5, tasks).schedulable

    def test_blackout_boundary(self):
        # Same server; deadline exactly past the blackout works.
        tasks = taskset((100, 1, 12))
        assert lsched_schedulable(10, 5, tasks).schedulable

    def test_budget_monotonicity(self):
        tasks = taskset((30, 4, 25), (50, 6, 50))
        verdicts = [
            lsched_schedulable(10, theta, tasks).schedulable
            for theta in range(1, 11)
        ]
        # Once schedulable, more budget never breaks it.
        first_true = verdicts.index(True)
        assert all(verdicts[first_true:])

    def test_failing_point_reported(self):
        tasks = taskset((10, 6, 10))
        result = lsched_schedulable(10, 5, tasks)
        assert result.failing_t is not None
        assert result.failing_demand > result.failing_supply


class TestExactVsTheorem4:
    @pytest.mark.parametrize("pi,theta,specs", [
        (10, 5, [(20, 2, 20), (30, 3, 30)]),
        (10, 5, [(100, 1, 8)]),
        (8, 4, [(16, 2, 12), (24, 3, 24)]),
        (5, 3, [(10, 2, 10), (20, 4, 15)]),
        (12, 7, [(24, 5, 20), (36, 6, 36)]),
    ])
    def test_verdicts_agree(self, pi, theta, specs):
        tasks = taskset(*specs)
        fast = lsched_schedulable(pi, theta, tasks)
        exact = lsched_schedulable_exact(pi, theta, tasks)
        assert fast.schedulable == exact.schedulable

    def test_random_agreement_sweep(self):
        from repro.tasks.generators import generate_random_taskset

        for seed in range(12):
            tasks = generate_random_taskset(
                seed,
                task_count=4,
                total_utilization=0.35,
                period_min=10,
                period_max=60,
                name=f"sweep{seed}",
            )
            fast = lsched_schedulable(12, 8, tasks)
            exact = lsched_schedulable_exact(12, 8, tasks)
            assert fast.schedulable == exact.schedulable, seed
