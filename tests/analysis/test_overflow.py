"""int64 overflow-safety regressions for the numpy kernels.

Theorem-4 horizons are exact integers and blow past ``2**63`` whenever
the slack is a hair above zero; before the ``INT64_SAFE_HORIZON`` caps
the batched preamble died with an opaque ``int too big to convert``
at lane-fill time (or, worse, ``start + k*period`` grids wrapped
silently).  These tests pin the contract: every kernel that builds an
int64 grid raises a clean ``OverflowError`` past the cap, and the batch
entry point routes such lanes to the per-pair engine instead of
raising at all.
"""

import numpy as np
import pytest

from repro.analysis.batched import (
    BatchStats,
    _qpa_taskset_windows,
    _tiled,
    _tiled_grid_demand,
    lsched_schedulable_batch,
)
from repro.analysis.demand import demand_signature
from repro.analysis.engine import INT64_SAFE_HORIZON
from repro.analysis.lsched_test import lsched_schedulable
from repro.analysis.vectorized import server_points_in_range, step_points_in_range
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

OVER_CAP = INT64_SAFE_HORIZON + 1


def near_zero_slack_taskset():
    """One task whose Theorem-4 window exceeds the int64-safe cap.

    Server (10, 5) gives slack ``1/2 - C/T``; with ``C = T // 2`` and an
    odd ``T`` around ``10**18`` the slack is ``1/(2T)`` and the window
    is ``~28T``, far past ``2**60``.
    """
    period = 10**18 + 1
    return TaskSet(
        [IOTask(name="t0", period=period, wcet=period // 2, deadline=period)]
    )


class TestKernelCaps:
    def test_cap_leaves_product_headroom(self):
        # 8x headroom below 2**63: start + k*period stays representable
        assert INT64_SAFE_HORIZON * 8 <= 2**63

    def test_step_points_raises_past_cap(self):
        with pytest.raises(OverflowError, match="int64-safe cap"):
            step_points_in_range([(5, 10)], 0, OVER_CAP)

    def test_step_points_fine_below_cap(self):
        points = step_points_in_range([(5, 10)], 0, 35)
        assert points.tolist() == [5, 15, 25, 35]

    def test_server_points_raises_past_cap(self):
        with pytest.raises(OverflowError, match="int64-safe cap"):
            server_points_in_range([10], 0, OVER_CAP)

    def test_tiled_raises_past_cap(self):
        base = np.array([0, 5], dtype=np.int64)
        with pytest.raises(OverflowError, match="int64-safe cap"):
            _tiled(base, 10, OVER_CAP)

    def test_tiled_grid_demand_raises_past_cap(self):
        points = np.array([0, 5], dtype=np.int64)
        demand = np.array([0, 1], dtype=np.int64)
        with pytest.raises(OverflowError, match="int64-safe cap"):
            _tiled_grid_demand(points, demand, 10, 1, OVER_CAP)

    def test_qpa_windows_raises_past_cap(self):
        tasks = TaskSet([IOTask(name="t0", period=10, wcet=1, deadline=10)])
        entry = (demand_signature(tasks), 10, 5, OVER_CAP)
        with pytest.raises(OverflowError, match="int64-safe cap"):
            _qpa_taskset_windows([entry])


class TestBatchFallback:
    """The batch preamble must not raise -- it reroutes oversized lanes."""

    def test_oversized_lane_routed_to_per_pair_engine(self):
        tasks = near_zero_slack_taskset()
        stats = BatchStats()
        (result,) = lsched_schedulable_batch([(10, 5, tasks)], stats=stats)
        assert stats.fallback_lanes == 1
        assert result == lsched_schedulable(10, 5, tasks, engine="vectorized")

    def test_mixed_batch_stays_bit_identical(self):
        normal = TaskSet(
            [IOTask(name="n0", period=20, wcet=1, deadline=20)]
        )
        requests = [
            (10, 5, normal),
            (10, 5, near_zero_slack_taskset()),
            (10, 5, normal),
        ]
        stats = BatchStats()
        batch = lsched_schedulable_batch(requests, stats=stats)
        reference = [
            lsched_schedulable(pi, theta, ts, engine="vectorized")
            for pi, theta, ts in requests
        ]
        assert batch == reference
        assert stats.fallback_lanes == 1
