"""Tests for the linear sufficient test and the acceptance experiment."""

import pytest

from repro.analysis.linear_test import lsched_schedulable_linear
from repro.analysis.lsched_test import lsched_schedulable
from repro.exp.acceptance import render_acceptance, run_acceptance
from repro.tasks.generators import generate_random_taskset
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


class TestLinearSufficientTest:
    def test_accept_implies_theorem4_accepts(self):
        """Soundness chain: linear acceptance is strictly stronger."""
        for seed in range(30):
            tasks = generate_random_taskset(
                seed, task_count=4, total_utilization=0.4,
                period_min=40, period_max=300, name=f"lin{seed}",
            )
            if lsched_schedulable_linear(12, 8, tasks).schedulable:
                assert lsched_schedulable(12, 8, tasks).schedulable, seed

    def test_more_pessimistic_than_theorem4(self):
        """There exist sets Theorem 4 admits and the line rejects."""
        found = False
        for seed in range(60):
            tasks = generate_random_taskset(
                seed, task_count=4, total_utilization=0.55,
                period_min=40, period_max=300, name=f"gap{seed}",
            )
            exact = lsched_schedulable(12, 8, tasks).schedulable
            linear = lsched_schedulable_linear(12, 8, tasks).schedulable
            if exact and not linear:
                found = True
                break
        assert found

    def test_overutilized_rejected(self):
        tasks = TaskSet([IOTask(name="t", period=10, wcet=9)])
        result = lsched_schedulable_linear(10, 5, tasks)
        assert not result.schedulable
        assert result.slack < 0

    def test_empty_set_accepted(self):
        assert lsched_schedulable_linear(10, 5, TaskSet()).schedulable

    def test_invalid_server(self):
        with pytest.raises(ValueError):
            lsched_schedulable_linear(0, 1, TaskSet())


class TestAcceptanceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_acceptance(
            samples=25, utilizations=(0.3, 0.5, 0.7)
        )

    def test_ordering_bandwidth_theorem4_linear(self, result):
        """No sound test beats the bandwidth envelope; the linear test
        never beats Theorem 4."""
        for point in result.points:
            assert point.ratios["bandwidth"] >= point.ratios["theorem4"]
            assert point.ratios["theorem4"] >= point.ratios["linear"]

    def test_acceptance_declines_with_utilization(self, result):
        theorem4 = [p.ratios["theorem4"] for p in result.points]
        assert theorem4[0] >= theorem4[-1]

    def test_low_utilization_mostly_accepted(self, result):
        assert result.points[0].ratios["theorem4"] >= 0.9

    def test_curve_accessor(self, result):
        curve = result.curve("theorem4")
        assert set(curve) == {0.3, 0.5, 0.7}

    def test_render(self, result):
        text = render_acceptance(result)
        assert "Theorem 4" in text and "bandwidth" in text

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            run_acceptance(samples=0)
