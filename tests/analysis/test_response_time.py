"""Unit tests for response-time bounds."""

import pytest

from repro.analysis.response_time import (
    ResponseTimeBound,
    edf_demand_before,
    pchannel_response_bound,
    response_time_bound,
    response_time_bounds,
)
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def vm(*specs):
    return TaskSet(
        [
            IOTask(name=f"t{i}", period=T, wcet=C, deadline=D)
            for i, (T, C, D) in enumerate(specs)
        ]
    )


class TestResponseTimeBound:
    def test_single_task_full_bandwidth(self):
        tasks = vm((20, 3, 20))
        bound = response_time_bound(10, 10, tasks, "t0")
        # Full-bandwidth server: done exactly after C slots.
        assert bound.wcrt == 3
        assert bound.meets_deadline
        assert bound.margin == 17

    def test_blackout_included(self):
        tasks = vm((100, 2, 100))
        bound = response_time_bound(10, 4, tasks, "t0")
        # Worst case: 2*(10-4)=12 blackout, then budget slots arrive.
        assert bound.wcrt >= 12 + 2
        assert bound.meets_deadline

    def test_interference_raises_bound(self):
        alone = vm((100, 3, 100))
        crowded = vm((100, 3, 100), (50, 5, 50))
        lone = response_time_bound(10, 8, alone, "t0")
        shared = response_time_bound(10, 8, crowded, "t0")
        assert shared.wcrt > lone.wcrt

    def test_unschedulable_task_misses_deadline(self):
        tasks = vm((10, 6, 10), (10, 5, 10))  # utilization 1.1
        bound = response_time_bound(10, 10, tasks, "t0")
        # The bound either diverges (None) or lands past the deadline;
        # both mean the task cannot be guaranteed.
        assert not bound.meets_deadline
        if bound.wcrt is not None:
            assert bound.wcrt > bound.deadline

    def test_divergent_bound_reports_none(self):
        # Demand grows faster than supply forever: bound diverges.
        tasks = vm((10, 6, 10), (10, 6, 10))
        bound = response_time_bound(10, 5, tasks, "t0")
        assert bound.wcrt is None
        assert bound.margin is None

    def test_all_tasks(self):
        tasks = vm((40, 4, 40), (60, 6, 60))
        bounds = response_time_bounds(10, 8, tasks)
        assert set(bounds) == {"t0", "t1"}
        for bound in bounds.values():
            assert bound.meets_deadline

    def test_bound_is_sound_vs_simulation(self):
        """The WCRT bound dominates the simulated worst response."""
        from repro.core.gsched import ServerSpec
        from repro.core.rchannel import RChannel

        tasks = vm((40, 4, 40), (60, 6, 60))
        bounds = response_time_bounds(10, 8, tasks)
        channel = RChannel([ServerSpec(0, 10, 8)])
        horizon = 600
        releases = []
        for task in tasks:
            copy = task.with_vm(0)
            k = 0
            while k * task.period < horizon:
                releases.append((k * task.period, copy.job(k * task.period, k)))
                k += 1
        releases.sort(key=lambda pair: pair[0])
        cursor = 0
        worst = {}
        for slot in range(horizon):
            while cursor < len(releases) and releases[cursor][0] <= slot:
                channel.submit(releases[cursor][1])
                cursor += 1
            channel.tick(slot)
            done = channel.execute_slot(slot)
            if done is not None:
                response = (slot + 1) - done.release
                name = done.task.name
                worst[name] = max(worst.get(name, 0), response)
        for name, observed in worst.items():
            assert observed <= bounds[name].wcrt, name


class TestHelpers:
    def test_edf_demand_excludes_self(self):
        tasks = vm((40, 4, 40), (60, 6, 60))
        task = tasks["t0"]
        demand = edf_demand_before(tasks, task, task.deadline)
        # Only t1's dbf over 40 slots: zero (its deadline is 60).
        assert demand == 0

    def test_pchannel_bound_is_deadline(self):
        task = IOTask(
            name="p", period=50, wcet=5, kind=TaskKind.PREDEFINED
        )
        bound = pchannel_response_bound(task)
        assert bound.wcrt == 50
        assert bound.meets_deadline
