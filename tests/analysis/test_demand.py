"""Unit tests for demand bound functions (Eqs. 3, 9)."""

import pytest

from repro.analysis.demand import (
    dbf_server,
    dbf_sporadic,
    dbf_step_points,
    dbf_taskset,
    server_step_points,
)
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


class TestDbfServer:
    def test_staircase_eq3(self):
        # Gamma=(10, 4): jumps of 4 at every multiple of 10.
        assert dbf_server(10, 4, 0) == 0
        assert dbf_server(10, 4, 9) == 0
        assert dbf_server(10, 4, 10) == 4
        assert dbf_server(10, 4, 19) == 4
        assert dbf_server(10, 4, 100) == 40

    def test_invalid(self):
        with pytest.raises(ValueError):
            dbf_server(0, 1, 5)
        with pytest.raises(ValueError):
            dbf_server(10, 0, 5)
        with pytest.raises(ValueError):
            dbf_server(10, 11, 5)
        with pytest.raises(ValueError):
            dbf_server(10, 4, -1)


class TestDbfSporadic:
    def test_zero_before_deadline(self):
        task = IOTask(name="t", period=10, wcet=3, deadline=7)
        for t in range(7):
            assert dbf_sporadic(task, t) == 0

    def test_staircase_eq9(self):
        task = IOTask(name="t", period=10, wcet=3, deadline=7)
        assert dbf_sporadic(task, 7) == 3
        assert dbf_sporadic(task, 16) == 3
        assert dbf_sporadic(task, 17) == 6
        assert dbf_sporadic(task, 27) == 9

    def test_implicit_deadline(self):
        task = IOTask(name="t", period=10, wcet=2)
        assert dbf_sporadic(task, 10) == 2
        assert dbf_sporadic(task, 100) == 2 * 10

    def test_matches_job_counting(self):
        """dbf equals max jobs with release+deadline inside the window."""
        task = IOTask(name="t", period=7, wcet=2, deadline=5)
        for t in range(0, 60):
            jobs = 0
            release = 0
            while release + task.deadline <= t:
                jobs += 1
                release += task.period
            assert dbf_sporadic(task, t) == jobs * task.wcet

    def test_negative_t(self):
        task = IOTask(name="t", period=10, wcet=1)
        with pytest.raises(ValueError):
            dbf_sporadic(task, -1)

    def test_taskset_aggregation(self):
        tasks = [
            IOTask(name="a", period=10, wcet=2),
            IOTask(name="b", period=15, wcet=3),
        ]
        for t in (0, 10, 15, 30):
            assert dbf_taskset(tasks, t) == sum(
                dbf_sporadic(task, t) for task in tasks
            )


class TestStepPoints:
    def test_sporadic_step_points(self):
        tasks = TaskSet([
            IOTask(name="a", period=10, wcet=1, deadline=6),
            IOTask(name="b", period=8, wcet=1),
        ])
        points = dbf_step_points(tasks, 30)
        assert points == sorted(set([6, 16, 26]) | set([8, 16, 24]))

    def test_step_points_capture_every_change(self):
        tasks = TaskSet([
            IOTask(name="a", period=9, wcet=2, deadline=4),
            IOTask(name="b", period=5, wcet=1),
        ])
        horizon = 60
        points = set(dbf_step_points(tasks, horizon))
        previous = 0
        for t in range(horizon + 1):
            value = dbf_taskset(tasks, t)
            if value != previous:
                assert t in points, f"missed step at t={t}"
            previous = value

    def test_server_step_points(self):
        assert server_step_points([(10, 3), (15, 4)], 30) == [10, 15, 20, 30]

    def test_empty_horizon(self):
        assert dbf_step_points(TaskSet(), 100) == []
        assert server_step_points([], 100) == []

    def test_negative_horizon(self):
        with pytest.raises(ValueError):
            dbf_step_points(TaskSet(), -1)
        with pytest.raises(ValueError):
            server_step_points([(10, 2)], -1)
