"""Engine selection and the single-source-of-truth cutoff constant."""

import pytest

from repro.analysis import engine as engine_mod
from repro.analysis import gsched_test, linear_test, lsched_test
from repro.analysis.engine import (
    ENGINES,
    VECTORIZE_MIN_POINTS,
    default_engine,
    resolve_engine,
    set_default_engine,
    use_engine,
)


class TestResolution:
    def test_precedence_argument_over_override(self):
        previous = set_default_engine("scalar")
        try:
            assert resolve_engine("batched") == "batched"
            assert resolve_engine(None) == "scalar"
        finally:
            set_default_engine(previous)

    def test_env_var_consulted_when_unset(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_default_override", None)
        monkeypatch.setenv(engine_mod.ENGINE_ENV_VAR, "batched")
        assert default_engine() == "batched"
        monkeypatch.delenv(engine_mod.ENGINE_ENV_VAR)
        assert default_engine() == "vectorized"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis engine"):
            resolve_engine("simd")

    def test_use_engine_restores(self):
        before = default_engine()
        with use_engine("scalar") as active:
            assert active == "scalar"
            assert default_engine() == "scalar"
        assert default_engine() == before

    def test_batched_is_a_supported_engine(self):
        assert ENGINES == ("scalar", "vectorized", "batched")


class TestVectorizeMinPointsSingleSource:
    def test_theorem_modules_do_not_drift(self):
        """The cutoff is defined once in ``repro.analysis.engine``; the
        theorem-test modules re-export it.  A module growing its own
        value would silently route G-Sched and L-Sched differently."""
        for module in (lsched_test, gsched_test, linear_test):
            assert module.VECTORIZE_MIN_POINTS == VECTORIZE_MIN_POINTS

    def test_pinned_value(self):
        # Deliberate drift guard: retune in engine.py, not per module.
        assert VECTORIZE_MIN_POINTS == 96
