"""Unit tests for LCM utilities."""

import pytest

from repro.analysis.hyperperiod import lcm_all, lcm_capped


class TestLcmAll:
    def test_basic(self):
        assert lcm_all([4, 6]) == 12
        assert lcm_all([2, 3, 5]) == 30

    def test_empty(self):
        assert lcm_all([]) == 1

    def test_single(self):
        assert lcm_all([7]) == 7

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            lcm_all([4, 0])
        with pytest.raises(ValueError):
            lcm_all([-2])


class TestLcmCapped:
    def test_under_cap(self):
        assert lcm_capped([4, 6], cap=100) == 12

    def test_over_cap_raises(self):
        with pytest.raises(OverflowError, match="pseudo-polynomial"):
            lcm_capped([7, 11, 13, 17, 19], cap=1000)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            lcm_capped([0], cap=10)

    def test_early_bail_skips_astronomical_products(self):
        # Regression: the guard must trip at the first cap crossing
        # instead of folding every value first -- with thousands of
        # pairwise-coprime inputs the full LCM has tens of thousands of
        # digits and materializing it defeats the guard.  Keep a bound
        # on the big-int the reduction is allowed to grow: crossing the
        # cap at value k leaves at most cap * values[k] in hand.
        primes = _first_primes(2_000)
        cap = 10**6
        for _attempt in range(3):  # OverflowError is never memoized
            with pytest.raises(OverflowError, match="pseudo-polynomial"):
                lcm_capped(primes, cap)

    def test_bail_point_is_exact(self):
        # 2 * 3 * 5 * 7 = 210; a cap of 209 must reject, 210 accept.
        assert lcm_capped([2, 3, 5, 7], cap=210) == 210
        with pytest.raises(OverflowError):
            lcm_capped([2, 3, 5, 7], cap=209)


def _first_primes(count):
    primes, candidate = [], 2
    while len(primes) < count:
        if all(candidate % p for p in primes if p * p <= candidate):
            primes.append(candidate)
        candidate += 1
    return primes
