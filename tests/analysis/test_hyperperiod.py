"""Unit tests for LCM utilities."""

import pytest

from repro.analysis.hyperperiod import lcm_all, lcm_capped


class TestLcmAll:
    def test_basic(self):
        assert lcm_all([4, 6]) == 12
        assert lcm_all([2, 3, 5]) == 30

    def test_empty(self):
        assert lcm_all([]) == 1

    def test_single(self):
        assert lcm_all([7]) == 7

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            lcm_all([4, 0])
        with pytest.raises(ValueError):
            lcm_all([-2])


class TestLcmCapped:
    def test_under_cap(self):
        assert lcm_capped([4, 6], cap=100) == 12

    def test_over_cap_raises(self):
        with pytest.raises(OverflowError, match="pseudo-polynomial"):
            lcm_capped([7, 11, 13, 17, 19], cap=1000)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            lcm_capped([0], cap=10)
