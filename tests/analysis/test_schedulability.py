"""Unit tests for the end-to-end system analysis."""

import pytest

from repro.analysis.schedulability import analyze_system
from repro.tasks import build_case_study_taskset
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


class TestAnalyzeSystem:
    def test_case_study_preloads_schedulable(self):
        base = build_case_study_taskset(vm_count=4)
        for fraction in (0.0, 0.4, 0.7):
            result = analyze_system(base.split_predefined(fraction))
            assert result.schedulable, (fraction, result.reason)

    def test_result_summary_fields(self):
        base = build_case_study_taskset(vm_count=4).split_predefined(0.4)
        result = analyze_system(base)
        summary = result.summary()
        assert summary["schedulable"] is True
        assert summary["table_H"] >= 1
        assert set(summary["servers"]) == {0, 1, 2, 3}

    def test_pure_pchannel_system(self):
        tasks = TaskSet([
            IOTask(name="p0", period=10, wcet=2, kind=TaskKind.PREDEFINED),
            IOTask(name="p1", period=20, wcet=3, kind=TaskKind.PREDEFINED),
        ])
        result = analyze_system(tasks)
        assert result.schedulable
        assert "no R-channel" in result.reason

    def test_overloaded_system_unschedulable(self):
        tasks = TaskSet([
            IOTask(name=f"r{i}", period=10, wcet=4, vm_id=i) for i in range(4)
        ])  # total utilization 1.6
        result = analyze_system(tasks)
        assert not result.schedulable
        assert result.reason

    def test_pchannel_overload_detected(self):
        # Two predefined tasks that cannot both fit their windows.
        tasks = TaskSet([
            IOTask(name="p0", period=4, wcet=3, kind=TaskKind.PREDEFINED),
            IOTask(name="p1", period=4, wcet=3, kind=TaskKind.PREDEFINED),
        ])
        result = analyze_system(tasks, stagger=False)
        assert not result.schedulable
        assert "P-channel" in result.reason

    def test_local_results_recorded_per_vm(self):
        base = build_case_study_taskset(vm_count=4).split_predefined(0.4)
        result = analyze_system(base)
        assert set(result.local_results) == {0, 1, 2, 3}
        assert all(r.schedulable for r in result.local_results.values())

    def test_bool_conversion(self):
        base = build_case_study_taskset(vm_count=4)
        assert bool(analyze_system(base))

    def test_stagger_improves_schedulability(self):
        """The staggered table admits systems the phase-0 table rejects."""
        base = build_case_study_taskset(vm_count=4).split_predefined(0.7)
        staggered = analyze_system(base, stagger=True)
        assert staggered.schedulable
        # (The unstaggered variant may or may not pass; the claim under
        # test is only that staggering never hurts.)
        unstaggered = analyze_system(base, stagger=False)
        if unstaggered.schedulable:
            assert staggered.schedulable
