"""Unit tests for sensitivity analysis."""

import pytest

from repro.analysis.lsched_test import lsched_schedulable
from repro.analysis.sensitivity import (
    critical_wcet_scale,
    max_preload_fraction,
)
from repro.tasks import build_case_study_taskset
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def vm(*specs):
    return TaskSet(
        [
            IOTask(name=f"t{i}", period=T, wcet=C, deadline=D)
            for i, (T, C, D) in enumerate(specs)
        ]
    )


class TestCriticalWcetScale:
    def test_scale_is_feasible_boundary(self):
        tasks = vm((40, 4, 40), (80, 8, 80))  # utilization 0.2
        scale = critical_wcet_scale(10, 8, tasks, precision=0.02)
        assert scale > 1.0
        assert lsched_schedulable(10, 8, tasks.scaled_wcet(scale)).schedulable
        # Slightly beyond the returned scale must fail (within tolerance).
        assert not lsched_schedulable(
            10, 8, tasks.scaled_wcet(scale + 0.25)
        ).schedulable

    def test_already_infeasible_returns_zero(self):
        tasks = vm((10, 9, 10))
        assert critical_wcet_scale(10, 5, tasks) == 0.0

    def test_huge_headroom_capped(self):
        tasks = vm((1000, 1, 1000))
        scale = critical_wcet_scale(10, 10, tasks, upper=4.0)
        assert scale == 4.0

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            critical_wcet_scale(10, 5, vm((40, 2, 40)), precision=0)

    def test_monotone_in_budget(self):
        tasks = vm((40, 4, 40), (80, 8, 80))
        low = critical_wcet_scale(10, 4, tasks, precision=0.05)
        high = critical_wcet_scale(10, 8, tasks, precision=0.05)
        assert high >= low


class TestMaxPreloadFraction:
    def test_case_study_admits_high_preload(self):
        taskset = build_case_study_taskset(vm_count=4)
        best = max_preload_fraction(taskset, step=0.1)
        assert best is not None
        assert best >= 0.7  # the paper's I/O-GUARD-70 configuration

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            max_preload_fraction(build_case_study_taskset(), step=0)
