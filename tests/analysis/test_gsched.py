"""Unit tests for the G-Sched tests (Theorems 1 and 2)."""

import pytest

from repro.analysis.gsched_test import (
    gsched_schedulable,
    gsched_schedulable_exact,
    server_bandwidth,
    theorem2_bound,
)
from repro.core.timeslot import TimeSlotTable


class TestServerBandwidth:
    def test_sum(self):
        assert server_bandwidth([(10, 4), (20, 5)]) == pytest.approx(0.65)

    def test_invalid(self):
        with pytest.raises(ValueError):
            server_bandwidth([(10, 11)])


class TestTheorem2Bound:
    def test_formula(self, small_table):
        # F=7, H=10, bandwidth=0.3 -> c=0.4, bound = 7*0.9/0.4.
        servers = [(10, 3)]
        bound = theorem2_bound(small_table, servers)
        assert bound == pytest.approx(7 * 0.9 / 0.4, abs=1)

    def test_requires_positive_slack(self, small_table):
        # bandwidth 0.8 > F/H = 0.7.
        with pytest.raises(ValueError, match="slack"):
            theorem2_bound(small_table, [(10, 8)])

    def test_single_slot_table(self):
        table = TimeSlotTable.empty(1)
        assert theorem2_bound(table, [(10, 1)]) == 1


class TestGschedSchedulable:
    def test_feasible_system(self, small_table):
        result = gsched_schedulable(small_table, [(10, 3), (20, 4)])
        assert result.schedulable
        assert result.failing_t is None
        assert result.method == "theorem2"

    def test_empty_servers(self, small_table):
        assert gsched_schedulable(small_table, []).schedulable

    def test_overutilized_fails_with_witness(self, small_table):
        result = gsched_schedulable(small_table, [(10, 9)])
        assert not result.schedulable
        assert result.slack < 0
        assert result.failing_demand > result.failing_supply

    def test_bandwidth_fits_but_pattern_fails(self):
        # F/H = 0.5 with all free slots clustered: a tight server with a
        # short period cannot be served through the blackout half.
        table = TimeSlotTable.from_pattern([1] * 10 + [0] * 10)
        result = gsched_schedulable(table, [(4, 2)])  # bandwidth 0.5 == F/H
        # slack == 0 -> falls back to the exact test.
        assert not result.schedulable
        assert result.failing_t is not None

    def test_clustered_vs_spread_free_slots(self):
        clustered = TimeSlotTable.from_pattern([1] * 5 + [0] * 5)
        spread = TimeSlotTable.from_pattern([1, 0] * 5)
        servers = [(4, 1)]
        assert gsched_schedulable(spread, servers).schedulable
        assert not gsched_schedulable(clustered, servers).schedulable

    def test_result_truthiness(self, small_table):
        assert bool(gsched_schedulable(small_table, [(10, 1)]))


class TestExactVsTheorem2:
    @pytest.mark.parametrize("pattern,servers", [
        ([1, 0, 0, 0, 1, 0, 0, 0, 1, 0], [(10, 3)]),
        ([1, 0, 0, 0, 1, 0, 0, 0, 1, 0], [(5, 2), (10, 2)]),
        ([0, 0, 1, 1, 0, 0], [(6, 2), (12, 3)]),
        ([1, 1, 0, 0, 0, 0, 0, 0], [(4, 2), (8, 2)]),
        ([1, 0] * 8, [(4, 1), (8, 3)]),
    ])
    def test_verdicts_agree(self, pattern, servers):
        table = TimeSlotTable.from_pattern(pattern)
        fast = gsched_schedulable(table, servers)
        exact = gsched_schedulable_exact(table, servers)
        assert fast.schedulable == exact.schedulable

    def test_theorem2_never_accepts_what_theorem1_rejects(self):
        """Soundness sweep over a family of random-ish configurations."""
        import itertools

        patterns = [
            [1, 0, 0, 1, 0, 0],
            [1, 1, 0, 0, 0, 0],
            [0, 1, 0, 1, 0, 1, 0, 0],
        ]
        server_choices = [(3, 1), (4, 2), (6, 2), (8, 3)]
        for pattern, pair in itertools.product(
            patterns, itertools.combinations(server_choices, 2)
        ):
            table = TimeSlotTable.from_pattern(pattern)
            servers = list(pair)
            fast = gsched_schedulable(table, servers)
            exact = gsched_schedulable_exact(table, servers)
            assert fast.schedulable == exact.schedulable, (pattern, servers)
