"""Unit tests for packets and flits."""

import pytest

from repro.noc.packet import FLIT_BYTES, Flit, Packet, PacketKind


class TestPacket:
    def make(self, payload=64):
        return Packet(
            source=(0, 0),
            destination=(1, 1),
            kind=PacketKind.REQUEST,
            payload_bytes=payload,
        )

    def test_flit_count_header_plus_payload(self):
        assert self.make(0).flit_count == 1
        assert self.make(1).flit_count == 2
        assert self.make(4).flit_count == 2
        assert self.make(5).flit_count == 3
        assert self.make(64).flit_count == 1 + 64 // FLIT_BYTES

    def test_unique_ids(self):
        assert self.make().packet_id != self.make().packet_id

    def test_latency_lifecycle(self):
        packet = self.make()
        assert packet.latency is None
        packet.injected_at = 10.0
        assert packet.latency is None
        packet.delivered_at = 35.0
        assert packet.latency == 25.0

    def test_flits_sequence(self):
        packet = self.make(8)
        flits = list(packet.flits())
        assert len(flits) == packet.flit_count
        assert flits[0].is_header
        assert not any(f.is_header for f in flits[1:])
        assert all(f.packet_id == packet.packet_id for f in flits)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="local"):
            Packet(
                source=(2, 2),
                destination=(2, 2),
                kind=PacketKind.REQUEST,
                payload_bytes=4,
            )

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            self.make(payload=-1)
