"""Unit tests for the closed-form NoC latency model."""

import pytest

from repro.noc.latency import (
    MAX_MODEL_LOAD,
    NocLatencyModel,
    calibrate_latency_model,
)
from repro.sim.rng import RandomSource


class TestNocLatencyModel:
    def test_zero_hops_zero_latency(self):
        model = NocLatencyModel()
        assert model.mean_latency(0, 5, 0.5) == 0.0

    def test_base_latency_at_zero_load(self):
        model = NocLatencyModel(router_latency=3, contention_gain=0.1)
        assert model.mean_latency(4, 10, 0.0) == 4 * 13

    def test_monotone_in_load(self):
        model = NocLatencyModel()
        values = [model.mean_latency(5, 10, load / 10) for load in range(10)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_monotone_in_hops_and_flits(self):
        model = NocLatencyModel()
        assert model.mean_latency(6, 10, 0.5) > model.mean_latency(3, 10, 0.5)
        assert model.mean_latency(3, 20, 0.5) > model.mean_latency(3, 10, 0.5)

    def test_load_clamped(self):
        model = NocLatencyModel()
        assert model.mean_latency(3, 5, 10.0) == model.mean_latency(
            3, 5, MAX_MODEL_LOAD
        )

    def test_sample_within_jitter_envelope(self):
        model = NocLatencyModel(jitter_amplitude=0.5)
        rng = RandomSource(1)
        for load in (0.2, 0.7):
            mean = model.mean_latency(5, 10, load)
            for _ in range(50):
                sample = model.sample(5, 10, load, rng)
                assert sample <= model.worst_case(5, 10, load) + 1e-9
                assert sample >= mean * (1 - 0.5 * load) - 1e-9

    def test_sample_zero_hops(self):
        model = NocLatencyModel()
        assert model.sample(0, 5, 0.5, RandomSource(1)) == 0.0

    def test_invalid_inputs(self):
        model = NocLatencyModel()
        with pytest.raises(ValueError):
            model.mean_latency(-1, 5, 0.1)
        with pytest.raises(ValueError):
            model.mean_latency(3, 0, 0.1)
        with pytest.raises(ValueError):
            model.mean_latency(3, 5, -0.1)


class TestCalibration:
    def test_calibration_returns_nonnegative_gain(self):
        model = calibrate_latency_model(seed=1, packets_per_load=100)
        assert model.contention_gain >= 0.0

    def test_calibration_deterministic(self):
        a = calibrate_latency_model(seed=5, packets_per_load=80)
        b = calibrate_latency_model(seed=5, packets_per_load=80)
        assert a.contention_gain == b.contention_gain

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            calibrate_latency_model(loads=[0.0])
        with pytest.raises(ValueError):
            calibrate_latency_model(loads=[1.0])
