"""Unit tests for the event-driven NoC."""

import pytest

from repro.noc.network import NocNetwork
from repro.noc.packet import Packet, PacketKind
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator, Timeout


def make_packet(src, dst, payload=4):
    return Packet(
        source=src, destination=dst, kind=PacketKind.REQUEST,
        payload_bytes=payload,
    )


class TestNocNetwork:
    def test_single_packet_latency(self):
        sim = Simulator()
        network = NocNetwork(sim)
        packet = make_packet((0, 0), (2, 0), payload=4)  # 2 flits, 2 hops
        network.inject(packet)
        sim.run()
        hold = network.router_latency + packet.flit_count
        assert packet.latency == 2 * hold
        record = network.delivered[0]
        assert record.hops == 2
        assert record.queueing_cycles == 0

    def test_latency_scales_with_hops(self):
        sim = Simulator()
        network = NocNetwork(sim)
        near = make_packet((0, 0), (1, 0))
        far = make_packet((0, 0), (4, 4))
        network.inject(near)
        network.inject(far)
        sim.run()
        assert far.latency > near.latency

    def test_latency_scales_with_payload(self):
        sim = Simulator()
        network = NocNetwork(sim)
        small = make_packet((0, 0), (3, 0), payload=4)
        big = make_packet((0, 0), (3, 0), payload=256)
        network.inject(small)
        sim.run()
        network.inject(big)
        sim.run()
        assert big.latency > small.latency

    def test_contention_delays_second_packet(self):
        sim = Simulator()
        network = NocNetwork(sim)
        a = make_packet((0, 0), (2, 0))
        b = make_packet((0, 0), (2, 0))
        network.inject(a)
        network.inject(b)
        sim.run()
        assert b.delivered_at > a.delivered_at
        record_b = network.delivered[1]
        assert record_b.queueing_cycles > 0

    def test_disjoint_paths_no_interference(self):
        sim = Simulator()
        network = NocNetwork(sim)
        a = make_packet((0, 0), (1, 0))
        b = make_packet((0, 4), (1, 4))
        network.inject(a)
        network.inject(b)
        sim.run()
        assert a.latency == b.latency
        assert network.mean_queueing() == 0

    def test_no_packet_lost(self):
        sim = Simulator()
        network = NocNetwork(sim)
        rngish = [(x, y) for x in range(5) for y in range(5)]
        count = 0
        for i, src in enumerate(rngish):
            dst = rngish[(i + 7) % len(rngish)]
            if src == dst:
                continue
            network.inject(make_packet(src, dst))
            count += 1
        sim.run()
        assert len(network.delivered) == count
        assert network.in_flight == 0
        assert network.total_injected == count

    def test_delivery_callback(self):
        sim = Simulator()
        network = NocNetwork(sim)
        seen = []
        network.inject(make_packet((0, 0), (1, 1)), on_delivered=seen.append)
        sim.run()
        assert len(seen) == 1

    def test_outside_mesh_rejected(self):
        sim = Simulator()
        network = NocNetwork(sim, topology=MeshTopology(3, 3))
        with pytest.raises(ValueError):
            network.inject(make_packet((0, 0), (4, 4)))

    def test_staggered_injection_via_process(self):
        sim = Simulator()
        network = NocNetwork(sim)

        def injector():
            for i in range(5):
                network.inject(make_packet((0, 0), (3, 3)))
                yield Timeout(100)

        sim.process(injector())
        sim.run()
        assert len(network.delivered) == 5

    def test_statistics_empty_network(self):
        network = NocNetwork(Simulator())
        assert network.mean_latency() == 0.0
        assert network.max_latency() == 0.0
        assert network.mean_queueing() == 0.0

    def test_invalid_router_latency(self):
        with pytest.raises(ValueError):
            NocNetwork(Simulator(), router_latency=-1)
