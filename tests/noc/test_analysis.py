"""Unit tests for the static NoC contention analysis."""

import pytest

from repro.noc.analysis import Flow, NocContentionAnalysis
from repro.noc.network import NocNetwork
from repro.noc.packet import Packet, PacketKind
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator, Timeout


def flow(name, src, dst, payload=4):
    return Flow(name=name, source=src, destination=dst, payload_bytes=payload)


class TestFlow:
    def test_flit_count_and_hold(self):
        f = flow("f", (0, 0), (1, 0), payload=8)
        assert f.flit_count == 3
        assert f.hold_cycles(router_latency=3) == 6


class TestContentionAnalysis:
    def test_duplicate_flow_rejected(self):
        analysis = NocContentionAnalysis()
        analysis.add_flow(flow("a", (0, 0), (1, 0)))
        with pytest.raises(ValueError, match="duplicate"):
            analysis.add_flow(flow("a", (0, 0), (2, 0)))

    def test_unknown_flow(self):
        with pytest.raises(KeyError, match="registered"):
            NocContentionAnalysis().latency_bound("ghost")

    def test_isolated_flow_base_latency(self):
        analysis = NocContentionAnalysis()
        f = flow("solo", (0, 0), (3, 0))
        analysis.add_flow(f)
        bound = analysis.latency_bound("solo")
        assert bound.hops == 3
        assert bound.interference_cycles == 0
        assert bound.worst_case_cycles == 3 * f.hold_cycles()

    def test_disjoint_flows_do_not_interfere(self):
        analysis = NocContentionAnalysis()
        analysis.add_flow(flow("north", (0, 0), (1, 0)))
        analysis.add_flow(flow("south", (0, 4), (1, 4)))
        for name in ("north", "south"):
            assert analysis.latency_bound(name).interference_cycles == 0

    def test_shared_link_counted_once_per_link(self):
        analysis = NocContentionAnalysis()
        analysis.add_flow(flow("long", (0, 0), (4, 0)))
        analysis.add_flow(flow("short", (2, 0), (4, 0)))
        bound = analysis.latency_bound("short")
        # Both of short's links are shared with long.
        other_hold = flow("long", (0, 0), (4, 0)).hold_cycles()
        assert bound.interference_cycles == 2 * other_hold
        assert all(interferers == {"long"} for interferers in bound.interferers)

    def test_link_load_and_bottleneck(self):
        analysis = NocContentionAnalysis()
        analysis.add_flow(flow("a", (0, 0), (2, 0)))
        analysis.add_flow(flow("b", (1, 0), (2, 0)))
        analysis.add_flow(flow("c", (3, 0), (2, 0)))
        link, flows = analysis.bottleneck_link()
        assert link == ((1, 0), (2, 0))
        assert flows == ["a", "b"]

    def test_bottleneck_empty(self):
        assert NocContentionAnalysis().bottleneck_link() is None

    def test_all_bounds(self):
        analysis = NocContentionAnalysis()
        analysis.add_flow(flow("a", (0, 0), (2, 2)))
        analysis.add_flow(flow("b", (0, 1), (2, 2)))
        bounds = analysis.all_bounds()
        assert set(bounds) == {"a", "b"}


class TestBoundSoundness:
    def test_bound_dominates_simulation(self):
        """Observed event-network latencies never exceed the WCL bound
        when each flow keeps at most one packet in flight."""
        mesh = MeshTopology(5, 5)
        analysis = NocContentionAnalysis(topology=mesh)
        flows = [
            flow("f0", (0, 0), (4, 4), payload=16),
            flow("f1", (0, 4), (4, 4), payload=32),
            flow("f2", (2, 0), (4, 4), payload=8),
            flow("f3", (0, 2), (4, 2), payload=16),
        ]
        for f in flows:
            analysis.add_flow(f)
        bounds = analysis.all_bounds()

        sim = Simulator()
        network = NocNetwork(sim, topology=mesh)
        worst = {f.name: 0.0 for f in flows}

        def sender(f):
            # One packet in flight at a time, back-to-back (max pressure).
            for _ in range(30):
                packet = Packet(
                    source=f.source, destination=f.destination,
                    kind=PacketKind.REQUEST, payload_bytes=f.payload_bytes,
                )
                done = {"flag": False}
                network.inject(
                    packet, on_delivered=lambda p: done.update(flag=True)
                )
                while not done["flag"]:
                    yield Timeout(1)
                worst[f.name] = max(worst[f.name], packet.latency)

        for f in flows:
            sim.process(sender(f), name=f.name)
        sim.run()
        for f in flows:
            assert worst[f.name] <= bounds[f.name].worst_case_cycles, f.name
