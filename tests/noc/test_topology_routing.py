"""Unit tests for the mesh topology and XY routing."""

import pytest

from repro.noc.routing import route_links, xy_next_hop, xy_route
from repro.noc.topology import MeshTopology


class TestMeshTopology:
    def test_node_count(self):
        assert MeshTopology(5, 5).node_count == 25
        assert MeshTopology(3, 2).node_count == 6

    def test_nodes_enumeration(self):
        mesh = MeshTopology(2, 2)
        assert list(mesh.nodes()) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_contains(self):
        mesh = MeshTopology(3, 3)
        assert mesh.contains((0, 0)) and mesh.contains((2, 2))
        assert not mesh.contains((3, 0)) and not mesh.contains((0, -1))

    def test_neighbors_corner_edge_center(self):
        mesh = MeshTopology(3, 3)
        assert sorted(mesh.neighbors((0, 0))) == [(0, 1), (1, 0)]
        assert len(mesh.neighbors((1, 0))) == 3
        assert len(mesh.neighbors((1, 1))) == 4

    def test_neighbors_outside_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(2, 2).neighbors((5, 5))

    def test_links_bidirectional(self):
        mesh = MeshTopology(2, 2)
        links = mesh.links()
        assert ((0, 0), (1, 0)) in links
        assert ((1, 0), (0, 0)) in links
        # 4 undirected edges in a 2x2 mesh -> 8 directed links.
        assert len(links) == 8

    def test_manhattan(self):
        mesh = MeshTopology(5, 5)
        assert mesh.manhattan((0, 0), (4, 4)) == 8
        assert mesh.manhattan((2, 3), (2, 3)) == 0

    def test_roles(self):
        mesh = MeshTopology(3, 3)
        mesh.assign_role((1, 1), "hypervisor")
        assert mesh.role_of((1, 1)) == "hypervisor"
        assert mesh.role_of((0, 0)) == ""
        assert mesh.node_with_role("hypervisor") == (1, 1)
        with pytest.raises(KeyError):
            mesh.node_with_role("missing")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 5)


class TestXYRouting:
    def test_next_hop_x_first(self):
        assert xy_next_hop((0, 0), (3, 2)) == (1, 0)
        assert xy_next_hop((3, 0), (3, 2)) == (3, 1)
        assert xy_next_hop((3, 2), (1, 2)) == (2, 2)

    def test_next_hop_at_destination_rejected(self):
        with pytest.raises(ValueError):
            xy_next_hop((1, 1), (1, 1))

    def test_route_endpoints_and_length(self):
        mesh = MeshTopology(5, 5)
        route = xy_route(mesh, (0, 0), (4, 3))
        assert route[0] == (0, 0)
        assert route[-1] == (4, 3)
        assert len(route) == mesh.manhattan((0, 0), (4, 3)) + 1

    def test_route_is_x_then_y(self):
        mesh = MeshTopology(5, 5)
        route = xy_route(mesh, (1, 1), (4, 4))
        # Once Y changes, X must stay fixed.
        y_started = False
        for (x1, y1), (x2, y2) in zip(route[:-1], route[1:]):
            if y1 != y2:
                y_started = True
            if y_started:
                assert x1 == x2

    def test_route_all_hops_adjacent(self):
        mesh = MeshTopology(4, 4)
        route = xy_route(mesh, (3, 0), (0, 3))
        for a, b in zip(route[:-1], route[1:]):
            assert mesh.manhattan(a, b) == 1

    def test_route_outside_mesh_rejected(self):
        mesh = MeshTopology(3, 3)
        with pytest.raises(ValueError):
            xy_route(mesh, (0, 0), (5, 5))

    def test_route_links(self):
        mesh = MeshTopology(3, 3)
        links = route_links(mesh, (0, 0), (2, 1))
        assert links == [((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (2, 1))]

    def test_deterministic_paths(self):
        """XY routing is deterministic: same endpoints, same path."""
        mesh = MeshTopology(5, 5)
        assert xy_route(mesh, (0, 4), (4, 0)) == xy_route(mesh, (0, 4), (4, 0))
