"""Unit tests for mode changes."""

import pytest

from repro.core.gsched import ServerSpec
from repro.core.modes import Mode, ModeManager
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def predefined(name, period, wcet):
    return IOTask(name=name, period=period, wcet=wcet, kind=TaskKind.PREDEFINED)


def make_modes():
    cruise = Mode.build(
        "cruise", TaskSet([predefined("radar", 10, 2)]), stagger=False
    )
    parking = Mode.build(
        "parking",
        TaskSet([predefined("sonar", 5, 1), predefined("camera", 20, 4)]),
        stagger=False,
    )
    return {"cruise": cruise, "parking": parking}


class TestModeBuild:
    def test_build_constructs_table(self):
        mode = Mode.build("m", TaskSet([predefined("p", 10, 3)]))
        assert mode.table.total_slots == 10
        assert mode.table.occupied_slots == 3


class TestModeManager:
    def test_initial_mode_active(self):
        manager = ModeManager(make_modes(), initial="cruise")
        assert manager.active_name == "cruise"
        assert manager.table.total_slots == 10

    def test_unknown_initial(self):
        with pytest.raises(KeyError):
            ModeManager(make_modes(), initial="takeoff")

    def test_server_validation_per_mode(self):
        # A server needing 80% bandwidth fails against parking's table
        # pattern? parking occupies 1/5 + 4/20 = 0.4 -> F/H = 0.6 < 0.8.
        with pytest.raises(ValueError, match="Theorem 2"):
            ModeManager(
                make_modes(),
                initial="cruise",
                servers=[ServerSpec(0, 10, 8)],
            )

    def test_feasible_servers_accepted(self):
        manager = ModeManager(
            make_modes(), initial="cruise", servers=[ServerSpec(0, 10, 3)]
        )
        assert manager.active_name == "cruise"

    def test_request_mode_aligns_to_common_boundary(self):
        manager = ModeManager(make_modes(), initial="cruise")
        change = manager.request_mode("parking", current_slot=7)
        # lcm(10, 20) = 20; next boundary after 7 is 20.
        assert change.effective_slot == 20

    def test_swap_happens_at_boundary(self):
        manager = ModeManager(make_modes(), initial="cruise")
        manager.request_mode("parking", current_slot=0)
        for slot in range(25):
            swapped = manager.tick(slot)
            if slot < 20:
                assert swapped is None
                assert manager.active_name == "cruise"
            elif slot == 20:
                assert swapped == "parking"
        assert manager.active_name == "parking"
        assert len(manager.history) == 1

    def test_execution_continues_across_swap(self):
        manager = ModeManager(make_modes(), initial="cruise")
        manager.request_mode("parking", current_slot=0)
        completed = []
        for slot in range(60):
            manager.tick(slot)
            if manager.occupies(slot):
                job = manager.execute_slot(slot)
                if job is not None:
                    completed.append((job.task.name, slot))
        names = {name for name, _slot in completed}
        assert "radar" in names  # old mode ran before the boundary
        assert "sonar" in names and "camera" in names  # new mode after
        # No pre-defined job may ever miss across the transition.
        # (PChannel jobs are in-window by construction; presence of both
        # modes' completions shows the swap was seamless.)

    def test_double_request_rejected(self):
        manager = ModeManager(make_modes(), initial="cruise")
        manager.request_mode("parking", current_slot=0)
        with pytest.raises(RuntimeError, match="pending"):
            manager.request_mode("parking", current_slot=1)

    def test_same_mode_rejected(self):
        manager = ModeManager(make_modes(), initial="cruise")
        with pytest.raises(ValueError, match="already in"):
            manager.request_mode("cruise", current_slot=0)

    def test_unknown_target(self):
        manager = ModeManager(make_modes(), initial="cruise")
        with pytest.raises(KeyError):
            manager.request_mode("takeoff", current_slot=0)

    def test_cancel_pending(self):
        manager = ModeManager(make_modes(), initial="cruise")
        manager.request_mode("parking", current_slot=0)
        cancelled = manager.cancel_pending()
        assert cancelled is not None and cancelled.target == "parking"
        for slot in range(40):
            assert manager.tick(slot) is None
        assert manager.active_name == "cruise"

    def test_cancel_nothing(self):
        manager = ModeManager(make_modes(), initial="cruise")
        assert manager.cancel_pending() is None
