"""Unit tests for the random-access priority queue and the FIFO queue."""

import pytest

from repro.core.priority_queue import FIFOQueue, PriorityQueue, QueueFullError
from repro.tasks.task import IOTask


def job(name, release, deadline_rel, period=1000):
    task = IOTask(name=name, period=period, wcet=1, deadline=deadline_rel)
    return task.job(release=release, index=0)


class TestPriorityQueue:
    def test_peek_pop_deadline_order(self):
        queue = PriorityQueue()
        late = job("late", 0, 50)
        early = job("early", 0, 10)
        mid = job("mid", 0, 30)
        for j in (late, early, mid):
            queue.insert(j)
        assert queue.peek() is early
        assert queue.pop() is early
        assert queue.pop() is mid
        assert queue.pop() is late

    def test_fifo_tiebreak_on_equal_deadline(self):
        queue = PriorityQueue()
        first = job("first", 0, 10)
        second = job("second", 0, 10)
        queue.insert(first)
        queue.insert(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_capacity_enforced(self):
        queue = PriorityQueue(capacity=2)
        queue.insert(job("a", 0, 10))
        queue.insert(job("b", 0, 20))
        assert queue.is_full
        with pytest.raises(QueueFullError):
            queue.insert(job("c", 0, 30))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PriorityQueue(capacity=0)

    def test_double_insert_rejected(self):
        queue = PriorityQueue()
        j = job("a", 0, 10)
        queue.insert(j)
        with pytest.raises(ValueError, match="already"):
            queue.insert(j)

    def test_random_access_removal(self):
        queue = PriorityQueue()
        a, b, c = job("a", 0, 10), job("b", 0, 20), job("c", 0, 30)
        for j in (a, b, c):
            queue.insert(j)
        assert queue.remove(b) is True
        assert queue.remove(b) is False  # already gone
        assert len(queue) == 2
        assert queue.pop() is a
        assert queue.pop() is c

    def test_removal_frees_capacity(self):
        queue = PriorityQueue(capacity=1)
        a = job("a", 0, 10)
        queue.insert(a)
        queue.remove(a)
        queue.insert(job("b", 0, 20))  # must not raise

    def test_contains(self):
        queue = PriorityQueue()
        a = job("a", 0, 10)
        queue.insert(a)
        assert a in queue
        queue.pop()
        assert a not in queue

    def test_jobs_snapshot_sorted(self):
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, deadline) for i, deadline in enumerate([40, 10, 30])]
        for j in jobs:
            queue.insert(j)
        snapshot = queue.jobs()
        deadlines = [j.absolute_deadline for j in snapshot]
        assert deadlines == sorted(deadlines)

    def test_find_and_jobs_of_task(self):
        queue = PriorityQueue()
        a = job("alpha", 0, 10)
        b = job("beta", 0, 20)
        queue.insert(a)
        queue.insert(b)
        assert queue.find(lambda j: j.task.name == "beta") is b
        assert queue.find(lambda j: False) is None
        assert queue.jobs_of_task("alpha") == [a]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityQueue().pop()

    def test_peek_empty_none(self):
        assert PriorityQueue().peek() is None

    def test_statistics(self):
        queue = PriorityQueue()
        a, b = job("a", 0, 10), job("b", 0, 20)
        queue.insert(a)
        queue.insert(b)
        queue.pop()
        queue.remove(b)
        assert queue.total_inserted == 2
        assert queue.total_removed == 2
        assert queue.peak_occupancy == 2

    def test_lazy_deletion_invisible(self):
        """Removed jobs never surface through peek/pop/len/iter."""
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, 10 + i) for i in range(10)]
        for j in jobs:
            queue.insert(j)
        for j in jobs[:5]:
            queue.remove(j)
        assert len(queue) == 5
        assert queue.peek() is jobs[5]
        assert [j.task.name for j in queue] == [f"j{i}" for i in range(5, 10)]


class TestFIFOQueue:
    def test_arrival_order(self):
        queue = FIFOQueue()
        a = job("a", 0, 50)
        b = job("b", 0, 10)  # earlier deadline but arrives later
        queue.insert(a)
        queue.insert(b)
        assert queue.pop() is a  # FIFO ignores deadlines
        assert queue.pop() is b

    def test_capacity(self):
        queue = FIFOQueue(capacity=1)
        queue.insert(job("a", 0, 10))
        with pytest.raises(QueueFullError):
            queue.insert(job("b", 0, 10))

    def test_peek_and_len(self):
        queue = FIFOQueue()
        assert queue.peek() is None
        a = job("a", 0, 10)
        queue.insert(a)
        assert queue.peek() is a
        assert len(queue) == 1
        assert bool(queue)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            FIFOQueue().pop()

    def test_contains_identity(self):
        queue = FIFOQueue()
        a = job("a", 0, 10)
        queue.insert(a)
        assert a in queue
        assert job("a", 0, 10) not in queue  # different instance
