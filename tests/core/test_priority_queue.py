"""Unit tests for the random-access priority queue and the FIFO queue."""

import gc

import pytest

from repro.core.priority_queue import FIFOQueue, PriorityQueue, QueueFullError
from repro.tasks.task import IOTask


def job(name, release, deadline_rel, period=1000):
    task = IOTask(name=name, period=period, wcet=1, deadline=deadline_rel)
    return task.job(release=release, index=0)


class TestPriorityQueue:
    def test_peek_pop_deadline_order(self):
        queue = PriorityQueue()
        late = job("late", 0, 50)
        early = job("early", 0, 10)
        mid = job("mid", 0, 30)
        for j in (late, early, mid):
            queue.insert(j)
        assert queue.peek() is early
        assert queue.pop() is early
        assert queue.pop() is mid
        assert queue.pop() is late

    def test_fifo_tiebreak_on_equal_deadline(self):
        queue = PriorityQueue()
        first = job("first", 0, 10)
        second = job("second", 0, 10)
        queue.insert(first)
        queue.insert(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_capacity_enforced(self):
        queue = PriorityQueue(capacity=2)
        queue.insert(job("a", 0, 10))
        queue.insert(job("b", 0, 20))
        assert queue.is_full
        with pytest.raises(QueueFullError):
            queue.insert(job("c", 0, 30))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PriorityQueue(capacity=0)

    def test_double_insert_rejected(self):
        queue = PriorityQueue()
        j = job("a", 0, 10)
        queue.insert(j)
        with pytest.raises(ValueError, match="already"):
            queue.insert(j)

    def test_random_access_removal(self):
        queue = PriorityQueue()
        a, b, c = job("a", 0, 10), job("b", 0, 20), job("c", 0, 30)
        for j in (a, b, c):
            queue.insert(j)
        assert queue.remove(b) is True
        assert queue.remove(b) is False  # already gone
        assert len(queue) == 2
        assert queue.pop() is a
        assert queue.pop() is c

    def test_removal_frees_capacity(self):
        queue = PriorityQueue(capacity=1)
        a = job("a", 0, 10)
        queue.insert(a)
        queue.remove(a)
        queue.insert(job("b", 0, 20))  # must not raise

    def test_contains(self):
        queue = PriorityQueue()
        a = job("a", 0, 10)
        queue.insert(a)
        assert a in queue
        queue.pop()
        assert a not in queue

    def test_jobs_snapshot_sorted(self):
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, deadline) for i, deadline in enumerate([40, 10, 30])]
        for j in jobs:
            queue.insert(j)
        snapshot = queue.jobs()
        deadlines = [j.absolute_deadline for j in snapshot]
        assert deadlines == sorted(deadlines)

    def test_find_and_jobs_of_task(self):
        queue = PriorityQueue()
        a = job("alpha", 0, 10)
        b = job("beta", 0, 20)
        queue.insert(a)
        queue.insert(b)
        assert queue.find(lambda j: j.task.name == "beta") is b
        assert queue.find(lambda j: False) is None
        assert queue.jobs_of_task("alpha") == [a]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityQueue().pop()

    def test_peek_empty_none(self):
        assert PriorityQueue().peek() is None

    def test_statistics(self):
        queue = PriorityQueue()
        a, b = job("a", 0, 10), job("b", 0, 20)
        queue.insert(a)
        queue.insert(b)
        queue.pop()
        queue.remove(b)
        assert queue.total_inserted == 2
        assert queue.total_removed == 2
        assert queue.peak_occupancy == 2

    def test_lazy_deletion_invisible(self):
        """Removed jobs never surface through peek/pop/len/iter."""
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, 10 + i) for i in range(10)]
        for j in jobs:
            queue.insert(j)
        for j in jobs[:5]:
            queue.remove(j)
        assert len(queue) == 5
        assert queue.peek() is jobs[5]
        assert [j.task.name for j in queue] == [f"j{i}" for i in range(5, 10)]


class TestChurnAndIdReuse:
    """Heavy insert/remove churn with garbage collection in between.

    CPython recycles object ids after collection, so any id-keyed
    liveness table can alias a lazily-deleted heap entry with an
    unrelated new job.  The queue keys liveness by monotonic insertion
    sequence precisely to survive this; these tests provoke the reuse.
    """

    def test_churn_with_gc_keeps_invariants(self):
        queue = PriorityQueue(capacity=64)
        survivors = []
        for round_number in range(50):
            batch = [
                job(f"r{round_number}b{i}", 0, 100 + i) for i in range(8)
            ]
            for j in batch:
                queue.insert(j)
            # Remove most of the batch (leaving lazy heap entries),
            # drop every reference, and force id recycling.
            for j in batch[:7]:
                assert queue.remove(j)
            survivors.append(batch[7])
            del batch
            gc.collect()
            assert len(queue) == len(survivors)
        drained = []
        while queue:
            drained.append(queue.pop())
        # Every survivor comes back exactly once, nothing phantom.
        assert len(drained) == 50
        assert {id(j) for j in drained} == {id(j) for j in survivors}

    def test_recycled_id_is_distinct_entry(self):
        """A new job whose id matches a dead one must be independent.

        ``pop`` releases the queue's last reference to the job, so the
        allocator is free to hand its id to the next job created; the
        queue must treat that newcomer as a fresh entry, never as the
        ghost of the popped one.
        """
        queue = PriorityQueue()
        task = job("template", 0, 20).task
        replacement = None
        for attempt in range(200):
            victim = task.job(release=0, index=attempt)
            queue.insert(victim)
            assert queue.pop() is victim  # queue drops all references
            victim_id = id(victim)
            # Refcount release frees the block immediately; the next
            # same-sized allocation typically reuses it.
            del victim
            candidate = task.job(release=0, index=1000 + attempt)
            if id(candidate) == victim_id:
                replacement = candidate
                break
        if replacement is None:
            pytest.skip("allocator never recycled the id; cannot provoke")
        assert replacement not in queue
        assert queue.remove(replacement) is False
        queue.insert(replacement)
        assert replacement in queue
        assert len(queue) == 1
        assert queue.peek() is replacement
        assert queue.pop() is replacement
        assert len(queue) == 0

    def test_snapshot_tiebreak_is_insertion_order(self):
        """Equal deadlines order by insertion sequence, not memory id."""
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, 10) for i in range(6)]
        for j in jobs:
            queue.insert(j)
        assert queue.jobs() == jobs

    def test_interleaved_remove_insert_at_capacity(self):
        queue = PriorityQueue(capacity=4)
        window = [job(f"w{i}", 0, 10 + i) for i in range(4)]
        for j in window:
            queue.insert(j)
        for i in range(4, 200):
            evicted = window.pop(0)
            assert queue.remove(evicted)
            fresh = job(f"w{i}", 0, 10 + i)
            queue.insert(fresh)
            window.append(fresh)
            if i % 13 == 0:
                gc.collect()
        assert [j.task.name for j in queue.jobs()] == [
            j.task.name for j in window
        ]


class TestFIFOQueue:
    def test_arrival_order(self):
        queue = FIFOQueue()
        a = job("a", 0, 50)
        b = job("b", 0, 10)  # earlier deadline but arrives later
        queue.insert(a)
        queue.insert(b)
        assert queue.pop() is a  # FIFO ignores deadlines
        assert queue.pop() is b

    def test_capacity(self):
        queue = FIFOQueue(capacity=1)
        queue.insert(job("a", 0, 10))
        with pytest.raises(QueueFullError):
            queue.insert(job("b", 0, 10))

    def test_peek_and_len(self):
        queue = FIFOQueue()
        assert queue.peek() is None
        a = job("a", 0, 10)
        queue.insert(a)
        assert queue.peek() is a
        assert len(queue) == 1
        assert bool(queue)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            FIFOQueue().pop()

    def test_contains_identity(self):
        queue = FIFOQueue()
        a = job("a", 0, 10)
        queue.insert(a)
        assert a in queue
        assert job("a", 0, 10) not in queue  # different instance
