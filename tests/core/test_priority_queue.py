"""Unit tests for the random-access priority queue and the FIFO queue."""

import gc

import pytest

from repro.core.priority_queue import FIFOQueue, PriorityQueue, QueueFullError
from repro.tasks.task import IOTask


def job(name, release, deadline_rel, period=1000):
    task = IOTask(name=name, period=period, wcet=1, deadline=deadline_rel)
    return task.job(release=release, index=0)


class TestPriorityQueue:
    def test_peek_pop_deadline_order(self):
        queue = PriorityQueue()
        late = job("late", 0, 50)
        early = job("early", 0, 10)
        mid = job("mid", 0, 30)
        for j in (late, early, mid):
            queue.insert(j)
        assert queue.peek() is early
        assert queue.pop() is early
        assert queue.pop() is mid
        assert queue.pop() is late

    def test_fifo_tiebreak_on_equal_deadline(self):
        queue = PriorityQueue()
        first = job("first", 0, 10)
        second = job("second", 0, 10)
        queue.insert(first)
        queue.insert(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_capacity_enforced(self):
        queue = PriorityQueue(capacity=2)
        queue.insert(job("a", 0, 10))
        queue.insert(job("b", 0, 20))
        assert queue.is_full
        with pytest.raises(QueueFullError):
            queue.insert(job("c", 0, 30))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PriorityQueue(capacity=0)

    def test_double_insert_rejected(self):
        queue = PriorityQueue()
        j = job("a", 0, 10)
        queue.insert(j)
        with pytest.raises(ValueError, match="already"):
            queue.insert(j)

    def test_random_access_removal(self):
        queue = PriorityQueue()
        a, b, c = job("a", 0, 10), job("b", 0, 20), job("c", 0, 30)
        for j in (a, b, c):
            queue.insert(j)
        assert queue.remove(b) is True
        assert queue.remove(b) is False  # already gone
        assert len(queue) == 2
        assert queue.pop() is a
        assert queue.pop() is c

    def test_removal_frees_capacity(self):
        queue = PriorityQueue(capacity=1)
        a = job("a", 0, 10)
        queue.insert(a)
        queue.remove(a)
        queue.insert(job("b", 0, 20))  # must not raise

    def test_contains(self):
        queue = PriorityQueue()
        a = job("a", 0, 10)
        queue.insert(a)
        assert a in queue
        queue.pop()
        assert a not in queue

    def test_jobs_snapshot_sorted(self):
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, deadline) for i, deadline in enumerate([40, 10, 30])]
        for j in jobs:
            queue.insert(j)
        snapshot = queue.jobs()
        deadlines = [j.absolute_deadline for j in snapshot]
        assert deadlines == sorted(deadlines)

    def test_find_and_jobs_of_task(self):
        queue = PriorityQueue()
        a = job("alpha", 0, 10)
        b = job("beta", 0, 20)
        queue.insert(a)
        queue.insert(b)
        assert queue.find(lambda j: j.task.name == "beta") is b
        assert queue.find(lambda j: False) is None
        assert queue.jobs_of_task("alpha") == [a]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityQueue().pop()

    def test_peek_empty_none(self):
        assert PriorityQueue().peek() is None

    def test_statistics(self):
        queue = PriorityQueue()
        a, b = job("a", 0, 10), job("b", 0, 20)
        queue.insert(a)
        queue.insert(b)
        queue.pop()
        queue.remove(b)
        assert queue.total_inserted == 2
        assert queue.total_removed == 2
        assert queue.peak_occupancy == 2

    def test_lazy_deletion_invisible(self):
        """Removed jobs never surface through peek/pop/len/iter."""
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, 10 + i) for i in range(10)]
        for j in jobs:
            queue.insert(j)
        for j in jobs[:5]:
            queue.remove(j)
        assert len(queue) == 5
        assert queue.peek() is jobs[5]
        assert [j.task.name for j in queue] == [f"j{i}" for i in range(5, 10)]


class TestChurnAndIdReuse:
    """Heavy insert/remove churn with garbage collection in between.

    CPython recycles object ids after collection, so any id-keyed
    liveness table can alias a lazily-deleted heap entry with an
    unrelated new job.  The queue keys liveness by monotonic insertion
    sequence precisely to survive this; these tests provoke the reuse.
    """

    def test_churn_with_gc_keeps_invariants(self):
        queue = PriorityQueue(capacity=64)
        survivors = []
        for round_number in range(50):
            batch = [
                job(f"r{round_number}b{i}", 0, 100 + i) for i in range(8)
            ]
            for j in batch:
                queue.insert(j)
            # Remove most of the batch (leaving lazy heap entries),
            # drop every reference, and force id recycling.
            for j in batch[:7]:
                assert queue.remove(j)
            survivors.append(batch[7])
            del batch
            gc.collect()
            assert len(queue) == len(survivors)
        drained = []
        while queue:
            drained.append(queue.pop())
        # Every survivor comes back exactly once, nothing phantom.
        assert len(drained) == 50
        assert {id(j) for j in drained} == {id(j) for j in survivors}

    def test_recycled_id_is_distinct_entry(self):
        """A new job whose id matches a dead one must be independent.

        ``pop`` releases the queue's last reference to the job, so the
        allocator is free to hand its id to the next job created; the
        queue must treat that newcomer as a fresh entry, never as the
        ghost of the popped one.
        """
        queue = PriorityQueue()
        task = job("template", 0, 20).task
        replacement = None
        for attempt in range(200):
            victim = task.job(release=0, index=attempt)
            queue.insert(victim)
            assert queue.pop() is victim  # queue drops all references
            victim_id = id(victim)
            # Refcount release frees the block immediately; the next
            # same-sized allocation typically reuses it.
            del victim
            candidate = task.job(release=0, index=1000 + attempt)
            if id(candidate) == victim_id:
                replacement = candidate
                break
        if replacement is None:
            pytest.skip("allocator never recycled the id; cannot provoke")
        assert replacement not in queue
        assert queue.remove(replacement) is False
        queue.insert(replacement)
        assert replacement in queue
        assert len(queue) == 1
        assert queue.peek() is replacement
        assert queue.pop() is replacement
        assert len(queue) == 0

    def test_snapshot_tiebreak_is_insertion_order(self):
        """Equal deadlines order by insertion sequence, not memory id."""
        queue = PriorityQueue()
        jobs = [job(f"j{i}", 0, 10) for i in range(6)]
        for j in jobs:
            queue.insert(j)
        assert queue.jobs() == jobs

    def test_interleaved_remove_insert_at_capacity(self):
        queue = PriorityQueue(capacity=4)
        window = [job(f"w{i}", 0, 10 + i) for i in range(4)]
        for j in window:
            queue.insert(j)
        for i in range(4, 200):
            evicted = window.pop(0)
            assert queue.remove(evicted)
            fresh = job(f"w{i}", 0, 10 + i)
            queue.insert(fresh)
            window.append(fresh)
            if i % 13 == 0:
                gc.collect()
        assert [j.task.name for j in queue.jobs()] == [
            j.task.name for j in window
        ]


class TestHandleKeying:
    """Membership is keyed by insertion-sequence handles, never id().

    PR 2's bug: an ``id(job)``-keyed liveness table aliased lazily
    deleted heap entries with unrelated live jobs once CPython recycled
    the id after GC.  Handles are stamped per (queue uid, sequence), so
    no amount of allocation churn can alias two jobs.
    """

    def test_churn_with_id_reuse_pressure(self):
        """Heavy alloc/free churn: dead jobs must never alias live ones."""
        queue = PriorityQueue(capacity=8)
        live = []
        for round_no in range(300):
            fresh = job(f"c{round_no}", round_no, 10)
            queue.insert(fresh)
            live.append(fresh)
            if len(live) == queue.capacity:
                # drop half via pop (heap path), half via remove (lazy path)
                victims = live[: queue.capacity // 2]
                for idx, victim in enumerate(victims):
                    if idx % 2 == 0:
                        assert queue.remove(victim)
                    else:
                        popped = queue.pop()
                        assert popped in live
                        live.remove(popped)
                live = [j for j in live if j in queue]
                del victims
                gc.collect()  # recycle ids of the dead jobs
            # a brand-new equal-parameter job is never confused for a live one
            ghost = job(f"c{round_no}", round_no, 10)
            assert ghost not in queue
            assert not queue.remove(ghost)
        assert queue.jobs() == sorted(
            live, key=lambda j: (j.absolute_deadline, live.index(j))
        )

    def test_handle_cleared_on_pop_and_remove(self):
        queue = PriorityQueue()
        a, b = job("a", 0, 10), job("b", 0, 20)
        queue.insert(a)
        queue.insert(b)
        assert queue.pop() is a
        assert a not in queue
        assert queue.remove(b)
        assert b not in queue
        # both can be re-inserted cleanly after their handles were dropped
        queue.insert(a)
        queue.insert(b)
        assert a in queue and b in queue

    def test_same_job_in_two_queues(self):
        """Handles are per-queue: membership in one never leaks to the other."""
        q1 = PriorityQueue(name="q1")
        q2 = PriorityQueue(name="q2")
        shared = job("s", 0, 10)
        q1.insert(shared)
        q2.insert(shared)
        assert shared in q1 and shared in q2
        assert q1.remove(shared)
        assert shared not in q1
        assert shared in q2  # q2's handle untouched
        assert q2.pop() is shared

    def test_duplicate_insert_rejected_per_queue(self):
        queue = PriorityQueue()
        j = job("dup", 0, 10)
        queue.insert(j)
        with pytest.raises(ValueError, match="already buffered"):
            queue.insert(j)
        other = PriorityQueue()
        other.insert(j)  # a different queue is fine


class TestFIFOQueue:
    def test_arrival_order(self):
        queue = FIFOQueue()
        a = job("a", 0, 50)
        b = job("b", 0, 10)  # earlier deadline but arrives later
        queue.insert(a)
        queue.insert(b)
        assert queue.pop() is a  # FIFO ignores deadlines
        assert queue.pop() is b

    def test_capacity(self):
        queue = FIFOQueue(capacity=1)
        queue.insert(job("a", 0, 10))
        with pytest.raises(QueueFullError):
            queue.insert(job("b", 0, 10))

    def test_peek_and_len(self):
        queue = FIFOQueue()
        assert queue.peek() is None
        a = job("a", 0, 10)
        queue.insert(a)
        assert queue.peek() is a
        assert len(queue) == 1
        assert bool(queue)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            FIFOQueue().pop()

    def test_contains_identity(self):
        queue = FIFOQueue()
        a = job("a", 0, 10)
        queue.insert(a)
        assert a in queue
        assert job("a", 0, 10) not in queue  # different instance
