"""Unit tests for translators and the virtualization driver."""

import pytest

from repro.core.driver import DRIVER_CODE_BYTES, VirtualizationDriver
from repro.core.translator import RealTimeTranslator
from repro.hw.controller import EthernetController, SPIController
from repro.hw.devices import EchoDevice, SensorDevice


class TestRealTimeTranslator:
    def test_cost_model(self):
        translator = RealTimeTranslator(
            "request", base_cycles=100, cycles_per_word=2, word_bytes=4
        )
        assert translator.translate(0) == 100
        assert translator.translate(4) == 102
        assert translator.translate(5) == 104  # rounds words up

    def test_wcet_is_upper_bound(self):
        translator = RealTimeTranslator("request")
        bound = translator.wcet_cycles()
        for payload in (0, 16, 256, 4096):
            assert translator.translate(payload) <= bound

    def test_records_every_translation(self):
        translator = RealTimeTranslator("response")
        translator.translate(16)
        translator.translate(64)
        assert len(translator.records) == 2
        assert translator.worst_observed == translator.wcet_cycles(64)
        assert translator.total_cycles == sum(r.cycles for r in translator.records)

    def test_oversize_payload_rejected(self):
        translator = RealTimeTranslator("request", max_payload_bytes=128)
        with pytest.raises(ValueError, match="split"):
            translator.translate(129)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            RealTimeTranslator("request").translate(-1)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            RealTimeTranslator("sideways")

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            RealTimeTranslator("request", base_cycles=0)


class TestVirtualizationDriver:
    def make(self):
        return VirtualizationDriver(
            EthernetController("eth0"), EchoDevice("dev", service_cycles=100)
        )

    def test_operation_timing_composition(self):
        driver = self.make()
        timing = driver.execute_operation(64)
        assert timing.total == (
            timing.request_translation
            + timing.request_transfer
            + timing.device_service
            + timing.response_transfer
            + timing.response_translation
        )
        assert driver.operations_executed == 1
        assert driver.total_cycles == timing.total

    def test_wcet_bounds_execution(self):
        driver = self.make()
        for payload in (8, 64, 512):
            timing = driver.execute_operation(payload)
            assert timing.total <= driver.wcet_cycles(payload)

    def test_fits_slot(self):
        driver = self.make()
        wcet = driver.wcet_cycles(64)
        assert driver.fits_slot(64, wcet)
        assert not driver.fits_slot(64, wcet - 1)

    def test_driver_code_loaded_into_bank(self):
        driver = self.make()
        assert "driver.ethernet" in driver.memory_bank
        assert driver.memory_bank.size_of("driver.ethernet") == (
            DRIVER_CODE_BYTES["ethernet"]
        )

    def test_sensor_response_sizing(self):
        driver = VirtualizationDriver(
            SPIController("spi0"),
            SensorDevice("imu", reading_bytes=12, service_cycles=50),
        )
        timing = driver.execute_operation(4)
        # Response path carries the 12-byte reading, not the request.
        assert timing.response_transfer == driver.controller.transfer_cycles(12)

    def test_wrong_translator_direction_rejected(self):
        with pytest.raises(ValueError):
            VirtualizationDriver(
                EthernetController("eth0"),
                EchoDevice("dev"),
                request_translator=RealTimeTranslator("response"),
            )

    def test_controller_statistics_accumulate(self):
        driver = self.make()
        driver.execute_operation(64)
        driver.execute_operation(64)
        assert driver.controller.transfers == 4  # request + response each
        assert driver.controller.bytes_moved == 4 * 64
