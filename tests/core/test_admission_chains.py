"""Admission-controller withdraw semantics under chain workloads.

A chain spreads its hops over several VMs, so admitting one means a
sequence of per-VM Theorem-4 decisions against memoized demand curves.
Withdrawing a hop must drop exactly that VM's curve: afterwards the
controller has to decide *identically* to a fresh controller holding
the same population -- the PR 5 memoized-curve invalidation contract,
exercised here on the new multi-VM path.
"""

from dataclasses import replace

import pytest

from repro.api import (
    ChainConfig,
    ChainWorkloadConfig,
    build_chain_system,
)
from repro.core.admission import AdmissionController
from repro.tasks.task import IOTask

#: Seed chosen so the auto-designed servers pass the global
#: (Theorem-2) test and every generated hop is admissible.
CONFIG = ChainConfig(
    seed=16,
    workload=ChainWorkloadConfig(
        chain_count=3,
        hops_min=3,
        hops_max=3,
        total_utilization=0.45,
        vm_count=3,
        periods=(10, 20, 40, 80),
        period_weights=(4, 3, 2, 1),
    ),
)


@pytest.fixture()
def setup():
    system, chains = build_chain_system(CONFIG)
    tasks = [task for task in system.tasks]
    return system, chains, tasks


def _fresh_controller(system, tasks):
    controller = AdmissionController(system.table, system.servers)
    for task in tasks:
        decision = controller.try_admit(task)
        assert decision.schedulable, decision.summary()
    return controller


def _population(controller, vm_ids):
    return {
        vm_id: sorted(
            task.name for task in controller.admitted_tasks(vm_id)
        )
        for vm_id in vm_ids
    }


class TestWithdrawReadmitEqualsFresh:
    def test_withdraw_and_readmit_matches_fresh_controller(self, setup):
        system, chains, tasks = setup
        controller = _fresh_controller(system, tasks)
        # Withdraw the middle hop of every chain, then re-admit.
        withdrawn = []
        for chain in chains:
            hop = system.tasks[chain.task_names[len(chain) // 2]]
            removed = controller.withdraw(hop.vm_id, hop.name)
            assert removed.name == hop.name
            withdrawn.append(hop)
        for hop in withdrawn:
            decision = controller.try_admit(hop)
            assert decision.schedulable, decision.summary()

        fresh = AdmissionController(system.table, system.servers)
        for task in tasks:
            if task.name not in {hop.name for hop in withdrawn}:
                assert fresh.try_admit(task).schedulable
        for hop in withdrawn:
            assert fresh.try_admit(hop).schedulable

        vm_ids = [spec.vm_id for spec in system.servers]
        assert _population(controller, vm_ids) == _population(fresh, vm_ids)
        for vm_id in vm_ids:
            assert controller.vm_utilization(vm_id) == pytest.approx(
                fresh.vm_utilization(vm_id)
            )

    def test_next_decision_identical_to_fresh_controller(self, setup):
        system, chains, tasks = setup
        controller = _fresh_controller(system, tasks)
        hop = system.tasks[chains[0].task_names[1]]
        controller.withdraw(hop.vm_id, hop.name)
        controller.try_admit(hop)

        fresh = _fresh_controller(system, tasks)
        probe = IOTask(
            "probe", period=40, wcet=1, vm_id=hop.vm_id, device="io0"
        )
        # LSchedResult compares by value: the withdrawn-then-readmitted
        # controller must produce the same verdict, witness and horizon
        # as the fresh one.  Only the set's insertion order may differ
        # (the re-admitted hop joins at the back), so task_names is
        # compared as a set.
        mine = controller.try_admit(probe)
        theirs = fresh.try_admit(probe)
        assert mine.schedulable == theirs.schedulable
        assert mine.reason == theirs.reason
        assert replace(
            mine.test_result, task_names=sorted(mine.test_result.task_names)
        ) == replace(
            theirs.test_result,
            task_names=sorted(theirs.test_result.task_names),
        )

    def test_withdraw_actually_frees_demand(self, setup):
        system, _chains, _tasks = setup
        victim_vm = system.servers[0].vm_id
        spec = system.server_for(victim_vm)

        def filler(name, wcet):
            return IOTask(
                name,
                period=3 * spec.pi,
                wcet=wcet,
                vm_id=victim_vm,
                device="io0",
            )

        # Largest solo-admissible budget at this period, found against
        # throwaway controllers.  Two copies of a maximal filler always
        # overflow Theorem 4 at the point where wcet+1 first fails, so
        # the twin's verdict below is deterministic.
        best = None
        for wcet in range(3 * spec.pi, 0, -1):
            throwaway = AdmissionController(system.table, system.servers)
            if throwaway.try_admit(filler("probe", wcet)).schedulable:
                best = wcet
                break
        assert best is not None, "even a one-slot filler was rejected"

        controller = AdmissionController(system.table, system.servers)
        assert controller.try_admit(filler("filler", best)).schedulable
        twin = filler("twin", best)
        assert not controller.try_admit(twin).schedulable
        controller.withdraw(victim_vm, "filler")
        admitted = controller.try_admit(twin)
        assert admitted.schedulable, admitted.summary()
        assert [t.name for t in controller.admitted_tasks(victim_vm)] == [
            "twin"
        ]

    def test_withdraw_unknown_task_raises(self, setup):
        system, _chains, tasks = setup
        controller = _fresh_controller(system, tasks)
        vm_id = system.servers[0].vm_id
        with pytest.raises(KeyError):
            controller.withdraw(vm_id, "never-admitted")
