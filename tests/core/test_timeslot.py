"""Unit tests for the Time Slot Table and its builder."""

import pytest

from repro.core.timeslot import (
    TableOverflowError,
    TimeSlotTable,
    as_slot_count,
    build_pchannel_table,
    merge_tables,
    stagger_offsets,
)
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def predefined(name, period, wcet, offset=0, deadline=None):
    return IOTask(
        name=name,
        period=period,
        wcet=wcet,
        deadline=deadline,
        offset=offset,
        kind=TaskKind.PREDEFINED,
    )


class TestTimeSlotTable:
    def test_counts(self, small_table):
        assert small_table.total_slots == 10
        assert small_table.free_slots == 7
        assert small_table.occupied_slots == 3
        assert small_table.free_fraction == pytest.approx(0.7)

    def test_is_free_wraps_modulo_h(self, small_table):
        assert small_table.is_occupied(0)
        assert small_table.is_occupied(10)  # wraps
        assert small_table.is_free(1)
        assert small_table.is_free(11)

    def test_from_pattern_roundtrip(self):
        pattern = [1, 0, 1, 1, 0]
        table = TimeSlotTable.from_pattern(pattern)
        assert table.occupancy_pattern() == pattern

    def test_indices(self, small_table):
        assert small_table.occupied_indices() == [0, 4, 8]
        assert small_table.free_indices() == [1, 2, 3, 5, 6, 7, 9]

    def test_double_occupation_rejected(self):
        with pytest.raises(ValueError, match="doubly"):
            TimeSlotTable(5, [2, 2])

    def test_out_of_range_slot_rejected(self):
        with pytest.raises(ValueError):
            TimeSlotTable(5, [5])

    def test_entry_without_occupancy_rejected(self):
        task = predefined("p", 10, 1)
        with pytest.raises(ValueError, match="no matching"):
            TimeSlotTable(10, [0], entries={3: task})

    def test_next_free_slot(self, small_table):
        assert small_table.next_free_slot(0) == 1
        assert small_table.next_free_slot(4) == 5
        assert small_table.next_free_slot(9) == 9
        assert small_table.next_free_slot(10) == 11  # wraps into next rep

    def test_next_free_slot_full_table(self):
        table = TimeSlotTable.from_pattern([1, 1])
        with pytest.raises(ValueError, match="no free"):
            table.next_free_slot(0)

    def test_enum_bounds(self, small_table):
        with pytest.raises(ValueError):
            small_table.enum(-1)
        with pytest.raises(ValueError):
            small_table.enum(11)

    def test_length_cap(self):
        with pytest.raises(TableOverflowError):
            TimeSlotTable(10_000_000)


class TestIntegerSlotTime:
    """Slot-table time arguments must be whole slots.

    The simulation layer measures time in floats (``Timeout`` accepts
    ``2.5``); the hypervisor schedules in integer slots.  The slot-table
    entry points normalize integral floats and reject fractional ones
    instead of silently truncating a supply window or deadline.
    """

    def test_as_slot_count_passes_ints(self):
        assert as_slot_count(7) == 7
        assert as_slot_count(0) == 0

    def test_as_slot_count_normalizes_integral_floats(self):
        value = as_slot_count(7.0)
        assert value == 7
        assert isinstance(value, int)

    def test_as_slot_count_rejects_fractions(self):
        with pytest.raises(ValueError, match="whole number of slots"):
            as_slot_count(2.5, "delay")

    def test_as_slot_count_rejects_bool_and_junk(self):
        with pytest.raises(ValueError, match="integer slot count"):
            as_slot_count(True)
        with pytest.raises(ValueError, match="integer slot count"):
            as_slot_count(False)
        with pytest.raises(ValueError, match="integer slot count"):
            as_slot_count("3")
        with pytest.raises(ValueError, match="integer slot count"):
            as_slot_count(float("nan"))

    def test_as_slot_count_rejects_numpy_bool(self):
        """Regression: ``np.True_`` is not a ``bool`` subclass but
        compares equal to 1, so it used to slip through as one slot."""
        np = pytest.importorskip("numpy")
        with pytest.raises(ValueError, match="integer slot count"):
            as_slot_count(np.True_)
        with pytest.raises(ValueError, match="integer slot count"):
            as_slot_count(np.False_, "delay")

    def test_as_slot_count_still_accepts_numpy_ints(self):
        np = pytest.importorskip("numpy")
        assert as_slot_count(np.int64(9)) == 9
        assert as_slot_count(np.int32(0)) == 0

    def test_sbf_fractional_window_rejected(self, small_table):
        with pytest.raises(ValueError, match="whole number of slots"):
            small_table.sbf(2.5)

    def test_sbf_integral_float_window_normalized(self, small_table):
        assert small_table.sbf(4.0) == small_table.sbf(4)

    def test_enum_fractional_window_rejected(self, small_table):
        with pytest.raises(ValueError, match="whole number of slots"):
            small_table.enum(1.5)

    def test_is_occupied_fractional_slot_rejected(self, small_table):
        with pytest.raises(ValueError, match="whole number of slots"):
            small_table.is_occupied(0.25)

    def test_next_free_slot_fractional_rejected(self, small_table):
        with pytest.raises(ValueError, match="whole number of slots"):
            small_table.next_free_slot(1.5)  # iolint: disable=IOL004 -- asserts fractional rejection

    def test_fractional_table_length_rejected(self):
        with pytest.raises(ValueError, match="whole number of slots"):
            TimeSlotTable(5.5)  # iolint: disable=IOL004 -- asserts fractional rejection

    def test_fractional_occupied_slot_rejected(self):
        with pytest.raises(ValueError, match="whole number of slots"):
            TimeSlotTable(10, [0, 1.5])

    def test_integral_float_table_arguments_normalized(self):
        # iolint: disable=IOL004 -- integral floats must normalize, not raise
        table = TimeSlotTable(10.0, [0.0, 4])
        assert table.total_slots == 10
        assert table.occupied_indices() == [0, 4]


class TestBuildPchannelTable:
    def test_empty_set(self):
        table = build_pchannel_table(TaskSet())
        assert table.total_slots == 1
        assert table.free_slots == 1

    def test_single_task_occupancy(self):
        tasks = TaskSet([predefined("p", 10, 3)])
        table = build_pchannel_table(tasks)
        assert table.total_slots == 10
        assert table.occupied_slots == 3

    def test_occupancy_equals_wcet_share(self):
        tasks = TaskSet([
            predefined("a", 10, 2),
            predefined("b", 20, 5),
        ])
        table = build_pchannel_table(tasks)
        assert table.total_slots == 20
        # 2 jobs of a (2 slots each) + 1 job of b (5 slots) per H.
        assert table.occupied_slots == 2 * 2 + 5

    def test_every_job_inside_deadline_window(self):
        tasks = TaskSet([
            predefined("a", 12, 3, deadline=8),
            predefined("b", 24, 6),
            predefined("c", 8, 1, offset=2),
        ])
        table = build_pchannel_table(tasks)
        # Every occupied slot must belong to the window of some job of
        # its task.
        for slot in table.occupied_indices():
            task = table.entries[slot]
            ok = False
            job_count = table.total_slots // task.period
            for j in range(-1, job_count + 1):
                release = task.offset + j * task.period
                if (
                    release <= slot < release + task.deadline
                    or release <= slot + table.total_slots < release + task.deadline
                ):
                    ok = True
                    break
            assert ok, f"slot {slot} of {task.name} outside every window"

    def test_overload_raises(self):
        tasks = TaskSet([
            predefined("a", 4, 3),
            predefined("b", 4, 3),
        ])
        with pytest.raises(TableOverflowError):
            build_pchannel_table(tasks)

    def test_deadline_constrained_placement(self):
        # Task with D < T must fit all its C inside the first D slots of
        # each period window.
        tasks = TaskSet([predefined("a", 20, 4, deadline=5)])
        table = build_pchannel_table(tasks)
        for slot in table.occupied_indices():
            assert slot % 20 < 5

    def test_spread_placement_improves_sbf(self):
        """Spreading gives strictly better small-window supply than the
        worst possible (fully clustered) placement."""
        tasks = TaskSet([predefined("a", 100, 30)])
        table = build_pchannel_table(tasks)
        # With spreading, a 10-slot window always contains free slots.
        assert table.sbf(10) > 0


class TestStaggerOffsets:
    def test_preserves_tasks(self, two_vm_taskset):
        pre = two_vm_taskset.predefined()
        staggered = stagger_offsets(pre)
        assert {t.name for t in staggered} == {t.name for t in pre}

    def test_offsets_within_period(self):
        tasks = TaskSet([predefined(f"p{i}", 10 * (i + 1), 1) for i in range(5)])
        staggered = stagger_offsets(tasks)
        for task in staggered:
            assert 0 <= task.offset < task.period

    def test_distinct_offsets_for_same_period(self):
        tasks = TaskSet([predefined(f"p{i}", 100, 1) for i in range(4)])
        staggered = stagger_offsets(tasks)
        offsets = {task.offset for task in staggered}
        assert len(offsets) == 4


class TestMergeTables:
    def test_merge_disjoint(self):
        a = TimeSlotTable(4, [0])
        b = TimeSlotTable(4, [2])
        merged = merge_tables([a, b])
        assert merged.occupied_indices() == [0, 2]

    def test_merge_different_lengths(self):
        a = TimeSlotTable(6, [0])
        b = TimeSlotTable(3, [1])  # repeats to slots 1 and 4 over H=6
        merged = merge_tables([a, b])
        assert merged.total_slots == 6
        assert merged.occupied_indices() == [0, 1, 4]

    def test_merge_collision_raises(self):
        a = TimeSlotTable(4, [0])
        b = TimeSlotTable(4, [0])
        with pytest.raises(ValueError, match="collision"):
            merge_tables([a, b])

    def test_merge_empty(self):
        merged = merge_tables([])
        assert merged.total_slots == 1
