"""Unit tests for L-Sched and G-Sched."""

import pytest

from repro.core.gsched import Allocation, GlobalScheduler, ServerSpec
from repro.core.lsched import LocalScheduler, edf_policy, fifo_policy
from repro.core.priority_queue import PriorityQueue
from repro.tasks.task import IOTask


def job(name, release, deadline_rel, period=1000):
    task = IOTask(name=name, period=period, wcet=2, deadline=deadline_rel)
    return task.job(release=release, index=0)


class TestLocalScheduler:
    def test_edf_selects_earliest_deadline(self):
        queue = PriorityQueue()
        lsched = LocalScheduler(queue)
        late, early = job("late", 0, 90), job("early", 5, 20)
        queue.insert(late)
        queue.insert(early)
        assert lsched.select() is early

    def test_fifo_policy_selects_first_arrival(self):
        queue = PriorityQueue()
        lsched = LocalScheduler(queue, policy=fifo_policy)
        first = job("first", 0, 90)
        second = job("second", 5, 20)
        queue.insert(first)
        queue.insert(second)
        assert lsched.select() is first

    def test_empty_queue_selects_none(self):
        lsched = LocalScheduler(PriorityQueue())
        assert lsched.select() is None

    def test_preemption_counted(self):
        queue = PriorityQueue()
        lsched = LocalScheduler(queue)
        low = job("low", 0, 90)
        queue.insert(low)
        lsched.select()
        urgent = job("urgent", 1, 10)
        queue.insert(urgent)
        lsched.select()
        assert lsched.preemption_count == 1
        assert low.preemption_count == 1

    def test_completion_is_not_preemption(self):
        queue = PriorityQueue()
        lsched = LocalScheduler(queue)
        a = job("a", 0, 10)
        queue.insert(a)
        lsched.select()
        a.remaining = 0
        queue.remove(a)
        b = job("b", 1, 20)
        queue.insert(b)
        lsched.select()
        assert lsched.preemption_count == 0


class TestServerSpec:
    def test_bandwidth(self):
        assert ServerSpec(0, 10, 4).bandwidth == pytest.approx(0.4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ServerSpec(0, 0, 1)
        with pytest.raises(ValueError):
            ServerSpec(0, 10, 0)
        with pytest.raises(ValueError):
            ServerSpec(0, 10, 11)


class TestGlobalScheduler:
    def make(self):
        return GlobalScheduler([
            ServerSpec(0, 10, 2),
            ServerSpec(1, 20, 5),
        ])

    def test_duplicate_vm_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            GlobalScheduler([ServerSpec(0, 10, 2), ServerSpec(0, 5, 1)])

    def test_replenishment_at_period_boundaries(self):
        gsched = self.make()
        gsched.tick(0)
        assert gsched.budget_of(0) == 2
        assert gsched.budget_of(1) == 5

    def test_budget_consumed_on_grant(self):
        gsched = self.make()
        gsched.tick(0)
        allocation = gsched.allocate(0, {0: 100})
        assert allocation == Allocation(vm_id=0, budgeted=True)
        assert gsched.budget_of(0) == 1

    def test_idle_when_no_pending(self):
        gsched = self.make()
        gsched.tick(0)
        assert gsched.allocate(0, {}) is None
        assert gsched.idle_slots == 1

    def test_edf_by_server_deadline(self):
        # VM0 server deadline 10, VM1 server deadline 20: VM0 wins.
        gsched = self.make()
        gsched.tick(0)
        allocation = gsched.allocate(0, {0: 500, 1: 100})
        assert allocation.vm_id == 0

    def test_background_when_budget_exhausted(self):
        gsched = GlobalScheduler([ServerSpec(0, 10, 1)])
        gsched.tick(0)
        first = gsched.allocate(0, {0: 100})
        assert first.budgeted
        second = gsched.allocate(1, {0: 100})
        assert second is not None and not second.budgeted
        assert gsched.background_grants == 1

    def test_background_uses_job_edf(self):
        gsched = GlobalScheduler([ServerSpec(0, 10, 1), ServerSpec(1, 10, 1)])
        gsched.tick(0)
        gsched.allocate(0, {0: 100, 1: 100})
        gsched.allocate(0, {0: 100, 1: 100})
        # Both budgets exhausted: the staged job with the earlier
        # deadline gets the background slot.
        allocation = gsched.allocate(1, {0: 100, 1: 50})
        assert allocation.vm_id == 1
        assert not allocation.budgeted

    def test_replenishment_restores_budget(self):
        gsched = GlobalScheduler([ServerSpec(0, 10, 1)])
        gsched.tick(0)
        gsched.allocate(0, {0: 100})
        assert gsched.budget_of(0) == 0
        for slot in range(1, 11):
            gsched.tick(slot)
        assert gsched.budget_of(0) == 1

    def test_total_bandwidth(self):
        assert self.make().total_bandwidth == pytest.approx(0.2 + 0.25)

    def test_tick_catches_up_after_slot_jump(self):
        """A clock jump over several period boundaries still replenishes.

        Regression: replenishment used to fire only at exact
        ``slot % pi == 0`` ticks, so an executor that skipped those
        slots (P-channel windows, a fault-stalled run) starved the
        server forever.
        """
        gsched = GlobalScheduler([ServerSpec(0, 10, 2)])
        gsched.tick(0)
        gsched.allocate(0, {0: 100})
        gsched.allocate(0, {0: 100})
        assert gsched.budget_of(0) == 0
        # Jump straight past three boundaries to a non-boundary slot.
        gsched.tick(35)
        assert gsched.budget_of(0) == 2

    def test_catchup_deadline_from_most_recent_boundary(self):
        gsched = GlobalScheduler([ServerSpec(0, 10, 2)])
        gsched.tick(0)
        gsched.tick(37)  # most recent boundary is 30
        assert gsched._states[0].deadline == 40

    def test_budget_does_not_accumulate_across_missed_periods(self):
        gsched = GlobalScheduler([ServerSpec(0, 10, 2)])
        gsched.tick(0)
        gsched.tick(95)  # nine boundaries skipped
        assert gsched.budget_of(0) == 2  # theta, not 9 * theta

    def test_mid_period_tick_does_not_replenish(self):
        gsched = GlobalScheduler([ServerSpec(0, 10, 2)])
        gsched.tick(0)
        gsched.allocate(0, {0: 100})
        for slot in range(1, 10):
            gsched.tick(slot)
            assert gsched.budget_of(0) == 1
        gsched.tick(10)
        assert gsched.budget_of(0) == 2

    def test_jump_equivalent_to_slot_by_slot(self):
        """Jumping the clock gives the same state as ticking every slot."""
        specs = [ServerSpec(0, 7, 3), ServerSpec(1, 13, 5)]
        stepped, jumped = GlobalScheduler(specs), GlobalScheduler(specs)
        for slot in range(60):
            stepped.tick(slot)
        jumped.tick(59)
        for spec in specs:
            assert (
                stepped.budget_of(spec.vm_id) == jumped.budget_of(spec.vm_id)
            )
            assert (
                stepped._states[spec.vm_id].deadline
                == jumped._states[spec.vm_id].deadline
            )

    def test_guarantee_over_window(self):
        """A backlogged VM receives at least Theta slots per Pi."""
        gsched = GlobalScheduler([ServerSpec(0, 10, 3), ServerSpec(1, 10, 3)])
        grants = {0: 0, 1: 0}
        for slot in range(100):
            gsched.tick(slot)
            allocation = gsched.allocate(slot, {0: 1000, 1: 1000})
            if allocation is not None and allocation.budgeted:
                grants[allocation.vm_id] += 1
        # 10 periods, 3 budgeted slots each, both VMs always pending.
        assert grants[0] >= 30
        assert grants[1] >= 30
