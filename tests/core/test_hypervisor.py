"""Unit tests for the virtualization manager and the top-level hypervisor."""

import pytest

from repro.core.gsched import ServerSpec
from repro.core.hypervisor import HypervisorConfig, IOGuardHypervisor
from repro.core.driver import VirtualizationDriver
from repro.core.manager import VirtualizationManager
from repro.hw.controller import EthernetController
from repro.hw.devices import EchoDevice
from repro.sim.clock import GlobalTimer
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def predefined_set(device="eth0"):
    return TaskSet([
        IOTask(
            name="p0", period=10, wcet=2, kind=TaskKind.PREDEFINED,
            device=device, payload_bytes=32,
        ),
    ])


def runtime_task(name, vm_id=0, device="eth0", period=50, wcet=3):
    return IOTask(
        name=name, period=period, wcet=wcet, vm_id=vm_id, device=device,
        payload_bytes=32,
    )


def make_driver():
    return VirtualizationDriver(
        EthernetController("eth0"), EchoDevice("dev", service_cycles=50)
    )


class TestVirtualizationManager:
    def make(self):
        return VirtualizationManager(
            device="eth0",
            predefined=predefined_set(),
            servers=[ServerSpec(0, 10, 4)],
        )

    def test_predefined_submission_rejected(self):
        manager = self.make()
        pre = predefined_set().tasks[0]
        with pytest.raises(ValueError, match="initialization"):
            manager.submit(pre.job(0, 0))

    def test_occupied_slots_run_pchannel(self):
        manager = self.make()
        table = manager.table
        occupied = table.occupied_indices()[0]
        manager.execute_slot(occupied)
        assert manager.pchannel.slots_executed == 1

    def test_free_slots_run_rchannel(self):
        manager = self.make()
        job = runtime_task("r0").job(0, 0)
        manager.submit(job)
        free = manager.table.free_indices()
        manager.execute_slot(free[0])
        manager.execute_slot(free[1])
        manager.execute_slot(free[2])
        assert manager.rchannel.jobs_completed == 1
        assert manager.responses_forwarded >= 1

    def test_completion_callback(self):
        completions = []
        manager = VirtualizationManager(
            device="eth0",
            predefined=TaskSet(),
            servers=[ServerSpec(0, 10, 4)],
            on_complete=lambda job, slot: completions.append((job.name, slot)),
        )
        job = runtime_task("r0", wcet=1).job(0, 0)
        manager.submit(job)
        manager.execute_slot(0)
        assert completions == [("r0#0", 0)]


class TestIOGuardHypervisor:
    def build(self, config=None):
        hypervisor = IOGuardHypervisor(config or HypervisorConfig())
        hypervisor.attach_device(
            "eth0", make_driver(), predefined_set(), [ServerSpec(0, 10, 4)]
        )
        return hypervisor

    def test_attach_duplicate_rejected(self):
        hypervisor = self.build()
        with pytest.raises(ValueError, match="already attached"):
            hypervisor.attach_device(
                "eth0", make_driver(), TaskSet(), [ServerSpec(0, 10, 4)]
            )

    def test_predefined_for_other_device_rejected(self):
        hypervisor = IOGuardHypervisor()
        with pytest.raises(ValueError, match="targets"):
            hypervisor.attach_device(
                "eth0",
                make_driver(),
                predefined_set(device="spi9"),
                [ServerSpec(0, 10, 4)],
            )

    def test_submit_unknown_device_rejected(self):
        hypervisor = self.build()
        job = runtime_task("r0", device="missing").job(0, 0)
        with pytest.raises(KeyError, match="unattached"):
            hypervisor.submit(job)

    def test_slot_budget_validation(self):
        # A 1-cycle slot cannot possibly hold an Ethernet operation.
        config = HypervisorConfig(cycles_per_slot=1)
        hypervisor = IOGuardHypervisor(config)
        with pytest.raises(ValueError, match="slot"):
            hypervisor.attach_device(
                "eth0", make_driver(), predefined_set(), [ServerSpec(0, 10, 4)]
            )

    def test_validation_can_be_disabled(self):
        config = HypervisorConfig(cycles_per_slot=1, validate_slot_budget=False)
        hypervisor = IOGuardHypervisor(config)
        hypervisor.attach_device(
            "eth0", make_driver(), predefined_set(), [ServerSpec(0, 10, 4)]
        )

    def test_step_cursor_advances(self):
        hypervisor = self.build()
        hypervisor.step()
        hypervisor.step()
        assert hypervisor._slot_cursor == 2

    def test_run_slots_completes_work(self):
        hypervisor = self.build()
        task = runtime_task("r0", wcet=3)
        hypervisor.submit(task.job(0, 0))
        completed = hypervisor.run_slots(20)
        names = [job.task.name for job in completed]
        assert "r0" in names
        assert "p0" in names  # pre-defined work also ran

    def test_run_slots_negative_rejected(self):
        with pytest.raises(ValueError):
            self.build().run_slots(-1)

    def test_step_fractional_slot_rejected(self):
        # Timeout upstream accepts float delays; the executor schedules
        # whole slots, so a fractional slot leaking in is a caller bug.
        with pytest.raises(ValueError, match="whole number of slots"):
            self.build().step(1.5)

    def test_step_integral_float_slot_normalized(self):
        hypervisor = self.build()
        hypervisor.step(3.0)  # same as step(3), no error

    def test_run_slots_fractional_count_rejected(self):
        with pytest.raises(ValueError, match="whole number of slots"):
            # iolint: disable=IOL004 -- deliberately fractional to assert rejection
            self.build().run_slots(2.5)

    def test_run_slots_fractional_start_rejected(self):
        with pytest.raises(ValueError, match="whole number of slots"):
            # iolint: disable=IOL004 -- deliberately fractional to assert rejection
            self.build().run_slots(4, start=0.5)

    def test_completion_hook(self):
        hypervisor = self.build()
        seen = []
        hypervisor.on_complete(lambda job, slot: seen.append(job.name))
        hypervisor.submit(runtime_task("r0", wcet=1).job(0, 0))
        hypervisor.run_slots(10)
        assert any(name.startswith("r0") for name in seen)

    def test_trace_records_completions(self):
        trace = TraceRecorder()
        hypervisor = IOGuardHypervisor(HypervisorConfig(trace=trace))
        hypervisor.attach_device(
            "eth0", make_driver(), predefined_set(), [ServerSpec(0, 10, 4)]
        )
        hypervisor.run_slots(25)
        assert trace.count("job_complete") == len(hypervisor.completed_jobs)

    def test_multi_device(self):
        hypervisor = IOGuardHypervisor()
        hypervisor.attach_device(
            "eth0", make_driver(), predefined_set(), [ServerSpec(0, 10, 4)]
        )
        driver2 = VirtualizationDriver(
            EthernetController("eth1"), EchoDevice("dev2", service_cycles=50)
        )
        hypervisor.attach_device(
            "eth1", driver2, TaskSet(), [ServerSpec(0, 10, 4)]
        )
        assert hypervisor.device_names() == ["eth0", "eth1"]
        hypervisor.submit(runtime_task("r1", device="eth1", wcet=1).job(0, 0))
        hypervisor.run_slots(5)
        assert any(
            job.task.device == "eth1" for job in hypervisor.completed_jobs
        )

    def test_process_embedding_in_simulator(self):
        hypervisor = self.build()
        sim = Simulator()
        timer = GlobalTimer(sim, cycles_per_slot=1000)
        hypervisor.submit(runtime_task("r0", wcet=2).job(0, 0))
        process = sim.process(
            hypervisor.process(sim, timer, horizon_slots=15), name="hv"
        )
        sim.run()
        assert process.value == len(hypervisor.completed_jobs)
        assert sim.now == 14_000  # last slot boundary reached

    def test_process_slot_mismatch_rejected(self):
        hypervisor = self.build()
        sim = Simulator()
        timer = GlobalTimer(sim, cycles_per_slot=123)
        with pytest.raises(ValueError, match="slot length"):
            # Generator raises on first advance.
            sim.process(hypervisor.process(sim, timer, 5))
            sim.run()
