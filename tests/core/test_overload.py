"""Regression tests for the overload path: rejection accounting,
QueueFullError back-pressure, and shadow-register refresh on removal."""

import pytest

from repro.core.iopool import IOPool
from repro.core.priority_queue import PriorityQueue, QueueFullError
from repro.tasks.task import IOTask


def job(name, deadline=50, vm_id=0, device="io0", release=0, index=0):
    task = IOTask(
        name=name, period=1000, wcet=1, deadline=deadline, vm_id=vm_id,
        device=device,
    )
    return task.job(release=release, index=index)


class TestSubmitRejectionAccounting:
    def test_full_pool_rejects_and_counts(self):
        pool = IOPool(vm_id=0, capacity=2)
        assert pool.submit(job("a"))
        assert pool.submit(job("b"))
        assert not pool.submit(job("c"))
        assert not pool.submit(job("d"))
        assert pool.submitted == 2
        assert pool.rejected == 2
        assert pool.reject_streak == 2
        assert pool.max_reject_streak == 2

    def test_accept_resets_streak_but_not_max(self):
        pool = IOPool(vm_id=0, capacity=1)
        pool.submit(job("a"))
        pool.submit(job("b"))  # rejected
        pool.submit(job("c"))  # rejected
        assert pool.reject_streak == 2
        # Drain one slot of work, freeing capacity.
        pool.execute_slot()
        assert pool.submit(job("d"))
        assert pool.reject_streak == 0
        assert pool.max_reject_streak == 2

    def test_wrong_vm_rejected_loudly_not_counted(self):
        pool = IOPool(vm_id=0, capacity=4)
        with pytest.raises(ValueError, match="per-VM partitioned"):
            pool.submit(job("x", vm_id=3))
        assert pool.rejected == 0


class TestQueueFullBackPressure:
    def test_queue_raises_pool_translates(self):
        """The raw queue raises; the pool converts it to a False return
        the issuing driver can observe as back-pressure."""
        queue = PriorityQueue(capacity=1)
        queue.insert(job("a"))
        with pytest.raises(QueueFullError):
            queue.insert(job("b"))
        pool = IOPool(vm_id=0, capacity=1)
        assert pool.submit(job("a"))
        assert pool.submit(job("b")) is False  # no exception escapes

    def test_rejected_job_not_buffered(self):
        pool = IOPool(vm_id=0, capacity=1)
        pool.submit(job("a"))
        loser = job("b")
        pool.submit(loser)
        assert loser not in pool.queue
        assert len(pool) == 1


class TestShadowRegisterRefresh:
    def test_refresh_after_staged_job_removed(self):
        pool = IOPool(vm_id=0, capacity=8)
        urgent = job("urgent", deadline=10)
        backup = job("backup", deadline=40)
        pool.submit(urgent)
        pool.submit(backup)
        assert pool.shadow is urgent
        dropped = pool.drop_matching(lambda j: j is urgent)
        assert dropped == [urgent]
        assert pool.shadow is backup
        assert pool.staged_deadline() == backup.absolute_deadline

    def test_refresh_after_drain(self):
        pool = IOPool(vm_id=0, capacity=8)
        pool.submit(job("a"))
        pool.submit(job("b"))
        drained = pool.drain()
        assert len(drained) == 2
        assert pool.shadow is None
        assert pool.staged_deadline() is None
        assert not pool.has_pending
        assert pool.dropped == 2

    def test_refresh_after_completion(self):
        pool = IOPool(vm_id=0, capacity=8)
        first = job("first", deadline=10)
        second = job("second", deadline=20)
        pool.submit(first)
        pool.submit(second)
        completed = pool.execute_slot()
        assert completed is first
        assert pool.shadow is second

    def test_drop_matching_leaves_nonmatching(self):
        pool = IOPool(vm_id=0, capacity=8)
        sens = job("s", device="sens1", deadline=10)
        eth = job("e", device="eth0", deadline=20)
        pool.submit(sens)
        pool.submit(eth)
        dropped = pool.drop_matching(lambda j: j.task.device == "sens1")
        assert dropped == [sens]
        assert eth in pool.queue
        assert pool.shadow is eth
        assert pool.dropped == 1

    def test_drained_pool_invisible_to_gsched_view(self):
        """A drained pool must not advertise a stale staged deadline --
        that is how the executor avoids re-selecting a doomed job."""
        pool = IOPool(vm_id=0, capacity=8)
        pool.submit(job("a"))
        assert pool.staged_deadline() is not None
        pool.drain()
        assert pool.staged_deadline() is None
