"""Unit tests for the P-channel and R-channel."""

import pytest

from repro.core.gsched import ServerSpec
from repro.core.pchannel import PChannel
from repro.core.rchannel import RChannel
from repro.core.timeslot import build_pchannel_table
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def predefined_set():
    return TaskSet([
        IOTask(name="p0", period=10, wcet=2, kind=TaskKind.PREDEFINED),
        IOTask(name="p1", period=20, wcet=3, kind=TaskKind.PREDEFINED),
    ])


def runtime_job(name, release, deadline_rel, wcet=2, vm_id=0):
    task = IOTask(
        name=name, period=1000, wcet=wcet, deadline=deadline_rel, vm_id=vm_id
    )
    return task.job(release=release, index=0)


class TestPChannel:
    def test_rejects_runtime_tasks(self):
        tasks = TaskSet([IOTask(name="r", period=10, wcet=1)])
        with pytest.raises(ValueError, match="non-predefined"):
            PChannel(tasks)

    def test_occupies_follows_table(self):
        channel = PChannel(predefined_set())
        table = channel.table
        for slot in range(table.total_slots):
            assert channel.occupies(slot) == table.is_occupied(slot)

    def test_execute_free_slot_raises(self):
        channel = PChannel(predefined_set())
        free_slot = channel.table.free_indices()[0]
        with pytest.raises(ValueError, match="free"):
            channel.execute_slot(free_slot)

    def test_jobs_complete_within_deadlines(self):
        channel = PChannel(predefined_set())
        horizon = 3 * channel.table.total_slots
        for slot in range(horizon):
            if channel.occupies(slot):
                channel.execute_slot(slot)
        assert channel.jobs_completed > 0
        for job in channel.completed_jobs:
            assert job.met_deadline() is True

    def test_job_count_matches_periods(self):
        channel = PChannel(predefined_set())
        hyper = channel.table.total_slots  # 20
        for slot in range(hyper):
            if channel.occupies(slot):
                channel.execute_slot(slot)
        # p0 runs 2x per hyper-period, p1 runs 1x.
        names = [job.task.name for job in channel.completed_jobs]
        assert names.count("p0") == 2
        assert names.count("p1") == 1

    def test_completion_callback(self):
        seen = []
        channel = PChannel(
            predefined_set(), on_complete=lambda job, slot: seen.append(slot)
        )
        for slot in range(channel.table.total_slots):
            if channel.occupies(slot):
                channel.execute_slot(slot)
        assert len(seen) == channel.jobs_completed

    def test_utilization(self):
        channel = PChannel(predefined_set())
        assert channel.utilization == pytest.approx(2 / 10 + 3 / 20)


class TestRChannel:
    def make(self):
        return RChannel([ServerSpec(0, 10, 4), ServerSpec(1, 10, 4)])

    def test_submit_routes_by_vm(self):
        channel = self.make()
        channel.submit(runtime_job("a", 0, 100, vm_id=0))
        channel.submit(runtime_job("b", 0, 100, vm_id=1))
        assert len(channel.pools[0]) == 1
        assert len(channel.pools[1]) == 1

    def test_unknown_vm_rejected(self):
        channel = self.make()
        with pytest.raises(KeyError, match="no I/O pool"):
            channel.submit(runtime_job("a", 0, 100, vm_id=7))

    def test_slot_execution_completes_jobs(self):
        channel = self.make()
        job = runtime_job("a", 0, 100, wcet=2)
        channel.submit(job)
        channel.tick(0)
        assert channel.execute_slot(0) is None
        channel.tick(1)
        assert channel.execute_slot(1) is job
        assert channel.jobs_completed == 1

    def test_idle_slot(self):
        channel = self.make()
        channel.tick(0)
        assert channel.execute_slot(0) is None

    def test_edf_across_vms(self):
        """The tighter staged deadline wins the slot (EDF via G-Sched)."""
        channel = self.make()
        relaxed = runtime_job("relaxed", 0, 500, wcet=1, vm_id=0)
        urgent = runtime_job("urgent", 0, 50, wcet=1, vm_id=1)
        channel.submit(relaxed)
        channel.submit(urgent)
        channel.tick(0)
        completed = channel.execute_slot(0)
        assert completed is urgent

    def test_pending_jobs(self):
        channel = self.make()
        channel.submit(runtime_job("a", 0, 100, vm_id=0))
        channel.submit(runtime_job("b", 0, 100, vm_id=1))
        assert channel.pending_jobs == 2
