"""Unit tests for the online admission controller."""

import warnings

import pytest

from repro.core.admission import (
    AdmissionController,
    ConfigurationError,
    reset_deprecation_warnings,
)
from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask, TaskKind


def controller(free_pattern=None, servers=None):
    table = (
        TimeSlotTable.from_pattern(free_pattern)
        if free_pattern is not None
        else TimeSlotTable.empty(20)
    )
    servers = servers or [ServerSpec(0, 10, 5), ServerSpec(1, 10, 4)]
    return AdmissionController(table, servers)


def runtime_task(name, period, wcet, vm_id=0, deadline=None):
    return IOTask(
        name=name, period=period, wcet=wcet, deadline=deadline, vm_id=vm_id
    )


class TestConstruction:
    def test_duplicate_server_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AdmissionController(
                TimeSlotTable.empty(10),
                [ServerSpec(0, 10, 5), ServerSpec(0, 5, 1)],
            )

    def test_globally_infeasible_servers_rejected(self):
        # Table 50% free, cannot host 0.5 + 0.4 bandwidth of servers.
        table = TimeSlotTable.from_pattern([1, 0] * 10)
        with pytest.raises(ValueError, match="Theorem-2"):
            AdmissionController(
                table, [ServerSpec(0, 10, 5), ServerSpec(1, 10, 4)]
            )

    def test_infeasible_servers_raise_typed_configuration_error(self):
        """Services need a structured rejection: the error is typed and
        carries the Theorem-2 witness plus the offending triples."""
        table = TimeSlotTable.from_pattern([1, 0] * 10)
        with pytest.raises(ConfigurationError) as info:
            AdmissionController(
                table, [ServerSpec(0, 10, 5), ServerSpec(1, 10, 4)]
            )
        assert info.value.failing_t is not None
        assert info.value.servers == ((0, 10, 5), (1, 10, 4))
        # Still a ValueError, so pre-facade callers keep working.
        assert isinstance(info.value, ValueError)

    def test_duplicate_server_error_is_typed(self):
        with pytest.raises(ConfigurationError) as info:
            AdmissionController(
                TimeSlotTable.empty(10),
                [ServerSpec(0, 10, 5), ServerSpec(0, 5, 1)],
            )
        assert info.value.failing_t is None
        assert (0, 10, 5) in info.value.servers


class TestAdmission:
    def test_admit_light_task(self):
        ctrl = controller()
        decision = ctrl.try_admit(runtime_task("a", 100, 5))
        assert decision.schedulable
        assert "a" in ctrl.admitted_tasks(0)
        assert ctrl.admitted_count == 1

    def test_reject_overload(self):
        ctrl = controller()
        first = ctrl.try_admit(runtime_task("a", 40, 8))  # fits (10,5)
        assert first.schedulable
        second = ctrl.try_admit(runtime_task("b", 40, 9))  # would exceed
        assert not second.schedulable
        assert "Theorem 4" in second.reason
        assert "b" not in ctrl.admitted_tasks(0)
        assert ctrl.rejected_count == 1

    def test_rejection_leaves_state_untouched(self):
        ctrl = controller()
        ctrl.try_admit(runtime_task("a", 40, 8))
        before = ctrl.vm_utilization(0)
        ctrl.try_admit(runtime_task("b", 40, 9))
        assert ctrl.vm_utilization(0) == before

    def test_reject_tight_deadline_through_blackout(self):
        ctrl = controller()
        # Server (10, 5) has a 10-slot blackout; D=8 is unprotectable.
        decision = ctrl.try_admit(runtime_task("tight", 100, 1, deadline=8))
        assert not decision.schedulable

    def test_reject_predefined(self):
        ctrl = controller()
        task = IOTask(
            name="p", period=50, wcet=2, kind=TaskKind.PREDEFINED, vm_id=0
        )
        decision = ctrl.try_admit(task)
        assert not decision.schedulable
        assert "initialization" in decision.reason

    def test_reject_unknown_vm(self):
        ctrl = controller()
        decision = ctrl.try_admit(runtime_task("a", 100, 2, vm_id=9))
        assert not decision.schedulable
        assert "no server" in decision.reason

    def test_reject_duplicate_name(self):
        ctrl = controller()
        assert ctrl.try_admit(runtime_task("a", 100, 2))
        decision = ctrl.try_admit(runtime_task("a", 200, 1))
        assert not decision.schedulable
        assert "already admitted" in decision.reason

    def test_vm_isolation(self):
        """A saturated VM 0 does not block admissions into VM 1."""
        ctrl = controller()
        ctrl.try_admit(runtime_task("a", 40, 8, vm_id=0))
        assert not ctrl.try_admit(runtime_task("b", 40, 9, vm_id=0)).schedulable
        assert ctrl.try_admit(runtime_task("c", 100, 5, vm_id=1)).schedulable

    def test_withdraw_frees_capacity(self):
        ctrl = controller()
        ctrl.try_admit(runtime_task("a", 40, 8))
        assert not ctrl.try_admit(runtime_task("b", 40, 8)).schedulable
        withdrawn = ctrl.withdraw(0, "a")
        assert withdrawn.name == "a"
        assert ctrl.try_admit(runtime_task("b", 40, 8)).schedulable

    def test_withdraw_unknown(self):
        ctrl = controller()
        with pytest.raises(KeyError):
            ctrl.withdraw(0, "ghost")
        with pytest.raises(KeyError):
            ctrl.withdraw(9, "a")

    def test_decision_log(self):
        ctrl = controller()
        ctrl.try_admit(runtime_task("a", 100, 2))
        ctrl.try_admit(runtime_task("a", 100, 2))
        assert len(ctrl.decisions) == 2
        assert ctrl.decisions[0].schedulable
        assert not ctrl.decisions[1].schedulable


class TestDecisionRing:
    """The decision log must not grow without bound: a controller living
    inside a long-running server would otherwise leak memory.  The ring
    mirrors the TraceRecorder ``max_events``/``dropped_events`` contract:
    truncation is explicit, totals never decay."""

    def ring_controller(self, max_decisions):
        table = TimeSlotTable.empty(20)
        return AdmissionController(
            table,
            [ServerSpec(0, 10, 5), ServerSpec(1, 10, 4)],
            max_decisions=max_decisions,
        )

    def test_ring_is_bounded_and_counts_evictions(self):
        ctrl = self.ring_controller(max_decisions=3)
        for i in range(8):
            ctrl.try_admit(runtime_task(f"t{i}", 400, 1))
        assert len(ctrl.decisions) == 3
        assert ctrl.dropped_decisions == 5
        # The ring keeps the *newest* decisions.
        assert [d.task_name for d in ctrl.decisions] == ["t5", "t6", "t7"]

    def test_totals_survive_eviction(self):
        ctrl = self.ring_controller(max_decisions=2)
        admitted = rejected = 0
        for i in range(6):
            wcet = 1 if i % 2 == 0 else 300  # odd ones overload -> reject
            if ctrl.try_admit(runtime_task(f"t{i}", 400, wcet)).schedulable:
                admitted += 1
            else:
                rejected += 1
        assert ctrl.admitted_count == admitted
        assert ctrl.rejected_count == rejected
        assert (
            len(ctrl.decisions) + ctrl.dropped_decisions
            == admitted + rejected
        )

    def test_default_is_bounded(self):
        from repro.core.admission import DEFAULT_MAX_DECISIONS

        ctrl = controller()
        assert ctrl.max_decisions == DEFAULT_MAX_DECISIONS

    def test_unbounded_opt_in(self):
        ctrl = self.ring_controller(max_decisions=None)
        for i in range(10):
            ctrl.try_admit(runtime_task(f"t{i}", 400, 1))
        assert len(ctrl.decisions) == 10
        assert ctrl.dropped_decisions == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_decisions"):
            self.ring_controller(max_decisions=0)

    def test_admitted_sets_always_schedulable(self):
        """Invariant: after any admission sequence, every VM's admitted
        set passes Theorem 4 against its server."""
        from repro.analysis.lsched_test import lsched_schedulable
        from repro.sim.rng import RandomSource

        ctrl = controller()
        rng = RandomSource(9, "adm")
        for i in range(30):
            period = rng.choice([20, 40, 50, 100, 200])
            wcet = rng.randint(1, max(1, period // 8))
            ctrl.try_admit(
                runtime_task(f"t{i}", period, wcet, vm_id=rng.choice([0, 1]))
            )
        for vm_id in (0, 1):
            spec = ctrl.server_of(vm_id)
            tasks = ctrl.admitted_tasks(vm_id)
            if len(tasks):
                assert lsched_schedulable(spec.pi, spec.theta, tasks).schedulable


class TestWithdrawInvalidation:
    """`withdraw` must drop the VM's memoized demand curve (the
    incremental-admission state), or subsequent admissions would test
    against the withdrawn task's demand."""

    def test_admit_withdraw_admit_matches_fresh_controller(self):
        sequence = [
            runtime_task("a", 40, 8),
            runtime_task("b", 80, 4),
            runtime_task("c", 120, 6),
        ]
        used = controller()
        for task in sequence:
            assert used.try_admit(task).schedulable
        used.withdraw(0, "b")
        fresh = controller()
        for task in sequence:
            if task.name != "b":
                assert fresh.try_admit(task).schedulable
        probe = runtime_task("probe", 40, 9)
        decision_used = used.try_admit(probe)
        decision_fresh = fresh.try_admit(probe)
        assert decision_used == decision_fresh
        assert decision_used.test_result == decision_fresh.test_result

    def test_withdrawn_demand_is_released(self):
        ctrl = controller()
        assert ctrl.try_admit(runtime_task("big", 40, 8)).schedulable
        assert not ctrl.try_admit(runtime_task("next", 40, 8)).schedulable
        ctrl.withdraw(0, "big")
        # With the stale curve this would still see "big"'s demand.
        assert ctrl.try_admit(runtime_task("next", 40, 8)).schedulable

    def test_incremental_flag_off_matches_on(self):
        table = TimeSlotTable.empty(20)
        servers = [ServerSpec(0, 10, 5), ServerSpec(1, 10, 4)]
        incremental = AdmissionController(table, servers, incremental=True)
        full = AdmissionController(table, servers, incremental=False)
        for i, (period, wcet, vm) in enumerate(
            [(40, 8, 0), (80, 4, 0), (40, 9, 0), (100, 5, 1), (50, 30, 1)]
        ):
            task = runtime_task(f"t{i}", period, wcet, vm_id=vm)
            assert incremental.try_admit(task) == full.try_admit(task)


class TestDeprecationShims:
    def test_admitted_attribute_warns_and_aliases(self):
        reset_deprecation_warnings()
        ctrl = controller()
        decision = ctrl.try_admit(runtime_task("a", 100, 5))
        with pytest.warns(DeprecationWarning, match="admitted is deprecated"):
            assert decision.admitted is decision.schedulable

    def test_admitted_kwarg_warns_and_maps(self):
        from repro.core.admission import AdmissionDecision

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="admitted=."):
            decision = AdmissionDecision(
                admitted=True, task_name="x", vm_id=0
            )
        assert decision.schedulable
        assert bool(decision)

    def test_admitted_attribute_warns_exactly_once_per_process(self):
        """A server touching the shim per request must not flood its log:
        even under an ``always`` warnings filter (which defeats Python's
        per-location dedup) the shim fires once per process."""
        reset_deprecation_warnings()
        ctrl = controller()
        decision = ctrl.try_admit(runtime_task("a", 100, 5))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(50):
                assert decision.admitted is decision.schedulable
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_admitted_kwarg_warns_exactly_once_per_process(self):
        from repro.core.admission import AdmissionDecision

        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(50):
                AdmissionDecision(admitted=True, task_name="x", vm_id=0)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_shim_keys_are_independent(self):
        """The attribute and the constructor kwarg each get their own
        once-per-process slot."""
        from repro.core.admission import AdmissionDecision

        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            decision = AdmissionDecision(admitted=True, task_name="x", vm_id=0)
            decision.admitted  # noqa: B018 - shim side effect under test
            AdmissionDecision(admitted=False, task_name="y", vm_id=1)
            decision.admitted  # noqa: B018 - shim side effect under test
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2

    def test_schedulable_kwarg_does_not_warn(self):
        import warnings

        from repro.core.admission import AdmissionDecision

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            decision = AdmissionDecision(
                schedulable=False, task_name="x", vm_id=0
            )
        assert not decision.schedulable

    def test_decision_satisfies_result_protocol(self):
        from repro.analysis.result import SchedulabilityResult

        ctrl = controller()
        decision = ctrl.try_admit(runtime_task("a", 100, 5))
        assert isinstance(decision, SchedulabilityResult)
        assert decision.failing_t is None
        assert "admitted" in decision.summary()
        rejected = ctrl.try_admit(runtime_task("b", 40, 16))
        assert isinstance(rejected, SchedulabilityResult)
        assert rejected.failing_t is not None
