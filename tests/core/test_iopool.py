"""Unit tests for the per-VM I/O pool."""

import pytest

from repro.core.iopool import IOPool
from repro.tasks.task import IOTask


def job(name, release, deadline_rel, wcet=2, vm_id=0, period=1000):
    task = IOTask(
        name=name, period=period, wcet=wcet, deadline=deadline_rel, vm_id=vm_id
    )
    return task.job(release=release, index=0)


class TestIOPool:
    def test_submit_stages_shadow(self):
        pool = IOPool(vm_id=0)
        j = job("a", 0, 50)
        assert pool.submit(j)
        assert pool.shadow is j
        assert pool.staged_deadline() == 50
        assert pool.has_pending

    def test_wrong_vm_rejected(self):
        pool = IOPool(vm_id=0)
        with pytest.raises(ValueError, match="per-VM"):
            pool.submit(job("a", 0, 50, vm_id=1))

    def test_backpressure_on_full_queue(self):
        pool = IOPool(vm_id=0, capacity=1)
        assert pool.submit(job("a", 0, 50))
        assert not pool.submit(job("b", 0, 60))
        assert pool.rejected == 1

    def test_shadow_tracks_earliest_deadline(self):
        pool = IOPool(vm_id=0)
        late = job("late", 0, 90)
        pool.submit(late)
        urgent = job("urgent", 0, 10)
        pool.submit(urgent)
        assert pool.shadow is urgent

    def test_execute_slot_progresses_and_completes(self):
        pool = IOPool(vm_id=0)
        j = job("a", 0, 50, wcet=2)
        pool.submit(j)
        assert pool.execute_slot() is None  # 1 of 2 slots done
        assert j.remaining == 1
        completed = pool.execute_slot()
        assert completed is j
        assert len(pool) == 0
        assert pool.shadow is None
        assert pool.completed == 1

    def test_execute_empty_pool(self):
        pool = IOPool(vm_id=0)
        assert pool.execute_slot() is None

    def test_preemption_mid_job(self):
        """An urgent arrival preempts the staged job between slots."""
        pool = IOPool(vm_id=0)
        low = job("low", 0, 90, wcet=3)
        pool.submit(low)
        pool.execute_slot()  # low runs one slot
        urgent = job("urgent", 1, 10, wcet=1)
        pool.submit(urgent)
        completed = pool.execute_slot()  # urgent runs and completes
        assert completed is urgent
        assert low.remaining == 2
        assert pool.shadow is low  # low resumes

    def test_completion_after_preemption(self):
        pool = IOPool(vm_id=0)
        low = job("low", 0, 90, wcet=2)
        urgent = job("urgent", 0, 10, wcet=1)
        pool.submit(low)
        pool.submit(urgent)
        assert pool.execute_slot() is urgent
        assert pool.execute_slot() is None
        assert pool.execute_slot() is low
