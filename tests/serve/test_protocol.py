"""Wire-protocol unit tests: framing, validation, HTTP adaptation."""

import json

import pytest

from repro.serve.protocol import (
    GET_OPS,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    format_http_response,
    http_path_to_op,
    http_status_for,
    looks_like_http,
    ok_response,
    parse_http_request_line,
    validate_request,
)


class TestFraming:
    def test_encode_is_canonical_and_newline_terminated(self):
        frame = encode_message({"b": 1, "a": 2})
        assert frame == b'{"a":2,"b":1}\n'

    def test_round_trip(self):
        message = {"op": "ping", "seq": 3}
        assert decode_message(encode_message(message)) == message

    def test_equal_messages_are_byte_identical(self):
        one = encode_message({"op": "admit", "seq": 1, "task": {"x": 1}})
        two = encode_message({"task": {"x": 1}, "seq": 1, "op": "admit"})
        assert one == two

    @pytest.mark.parametrize(
        "frame", [b"not json\n", b"[1, 2]\n", b'"text"\n', b"\xff\xfe\n"]
    )
    def test_bad_frames_raise(self, frame):
        with pytest.raises(ProtocolError):
            decode_message(frame)


class TestValidation:
    def test_defaults_seq_to_zero(self):
        assert validate_request({"op": "ping"})["seq"] == 0

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "explode", "seq": 1})

    @pytest.mark.parametrize("seq", [-1, 1.5, "7", True, None])
    def test_bad_seq_rejected(self, seq):
        with pytest.raises(ProtocolError, match="seq"):
            validate_request({"op": "ping", "seq": seq})

    @pytest.mark.parametrize(
        "op,missing",
        [("admit", "task"), ("withdraw", "vm_id"), ("rebalance", "shards")],
    )
    def test_required_fields_enforced(self, op, missing):
        with pytest.raises(ProtocolError, match=missing):
            validate_request({"op": op, "seq": 0})

    def test_every_op_has_a_field_spec(self):
        for op in OPS:
            message = {"op": op, "seq": 0}
            try:
                validate_request(message)
            except ProtocolError as exc:
                assert "requires field" in str(exc)


class TestResponses:
    def test_ok_response_shape(self):
        response = ok_response(5, epoch=2)
        assert response == {
            "v": PROTOCOL_VERSION,
            "seq": 5,
            "ok": True,
            "epoch": 2,
        }

    def test_error_response_carries_kind_and_details(self):
        response = error_response(3, "shedding", "busy", vm_id=1)
        assert response["ok"] is False
        assert response["error"]["kind"] == "shedding"
        assert response["error"]["vm_id"] == 1


class TestHttp:
    def test_sniffing(self):
        assert looks_like_http(b"POST /v1/admit HTTP/1.1\r\n")
        assert looks_like_http(b"GET /v1/stats HTTP/1.1\r\n")
        assert not looks_like_http(b'{"op": "ping"}\n')

    def test_request_line_parsing(self):
        assert parse_http_request_line(b"POST /v1/admit HTTP/1.1\r\n") == (
            "POST",
            "/v1/admit",
        )
        with pytest.raises(ProtocolError):
            parse_http_request_line(b"POST /v1/admit\r\n")

    def test_path_mapping(self):
        assert http_path_to_op("POST", "/v1/admit") == "admit"
        for op in GET_OPS:
            assert http_path_to_op("GET", f"/v1/{op}") == op

    def test_get_rejected_for_mutating_ops(self):
        with pytest.raises(ProtocolError, match="requires POST"):
            http_path_to_op("GET", "/v1/admit")

    @pytest.mark.parametrize(
        "method,path",
        [("POST", "/nope"), ("POST", "/v1/explode"), ("PUT", "/v1/admit")],
    )
    def test_bad_routes_rejected(self, method, path):
        with pytest.raises(ProtocolError):
            http_path_to_op(method, path)

    def test_response_formatting(self):
        body = ok_response(1, epoch=4)
        raw = format_http_response(body)
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert f"Content-Length: {len(payload)}".encode() in head
        assert json.loads(payload) == body

    @pytest.mark.parametrize(
        "kind,status",
        [
            ("protocol", "400 Bad Request"),
            ("unknown_vm", "404 Not Found"),
            ("unknown_task", "404 Not Found"),
            ("configuration", "409 Conflict"),
            ("shedding", "503 Service Unavailable"),
            ("quarantined", "503 Service Unavailable"),
            ("internal", "500 Internal Server Error"),
        ],
    )
    def test_status_mapping(self, kind, status):
        assert http_status_for(error_response(0, kind, "x")) == status

    def test_ok_maps_to_200(self):
        assert http_status_for(ok_response(0)) == "200 OK"
