"""Admission-server tests: dispatch, batching, shedding, rebalance.

Each test runs a real server on an ephemeral loopback port inside
``asyncio.run`` and talks to it over asyncio streams (same loop, no
threads), with the inline shard backend for speed; the process backend
gets one dedicated round trip.
"""

import asyncio
import json

import pytest

from repro.core.admission import ConfigurationError
from repro.serve.protocol import decode_message, encode_message
from repro.serve.server import AdmissionServer, ServeConfig

PATTERN = [1 if slot % 5 == 0 else 0 for slot in range(20)]
SERVERS = [(0, 10, 2), (1, 10, 2), (2, 20, 3), (3, 20, 3)]


def make_config(**overrides):
    defaults = dict(
        table_pattern=PATTERN,
        servers=SERVERS,
        shards=2,
        backend="inline",
        epoch_interval=0.005,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def run_with_server(test_body, **config_overrides):
    """Start a server, hand (server, request) to the coroutine, stop."""

    async def _main():
        server = AdmissionServer(make_config(**config_overrides))
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )

        async def request(message):
            writer.write(encode_message(message))
            await writer.drain()
            return decode_message(await reader.readline())

        try:
            return await test_body(server, request)
        finally:
            writer.close()
            await writer.wait_closed()
            await server.stop()

    return asyncio.run(_main())


def admit(seq, vm_id, name, period=100, wcet=2):
    return {
        "op": "admit",
        "seq": seq,
        "task": {"name": name, "vm_id": vm_id, "period": period, "wcet": wcet},
    }


class TestDispatch:
    def test_ping_reports_epoch(self):
        async def body(server, request):
            response = await request({"op": "ping", "seq": 4})
            assert response["ok"] and response["seq"] == 4
            assert isinstance(response["epoch"], int)

        run_with_server(body)

    def test_admit_withdraw_round_trip(self):
        async def body(server, request):
            response = await request(admit(1, 0, "a"))
            assert response["ok"] and response["decision"]["schedulable"]
            response = await request(
                {"op": "withdraw", "seq": 2, "vm_id": 0, "task_name": "a"}
            )
            assert response["ok"] and response["task"]["name"] == "a"
            response = await request(
                {"op": "withdraw", "seq": 3, "vm_id": 0, "task_name": "a"}
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "unknown_task"

        run_with_server(body)

    def test_unknown_vm_is_typed(self):
        async def body(server, request):
            response = await request(admit(1, 99, "a"))
            assert not response["ok"]
            assert response["error"]["kind"] == "unknown_vm"

        run_with_server(body)

    def test_malformed_line_is_a_protocol_error(self):
        async def body(server, request):
            response = await request({"op": "explode", "seq": 1})
            assert not response["ok"]
            assert response["error"]["kind"] == "protocol"
            assert server.counters["protocol_errors"] == 1

        run_with_server(body)

    def test_stats_and_snapshot_ops(self):
        async def body(server, request):
            await request(admit(1, 0, "a"))
            stats = (await request({"op": "stats", "seq": 2}))["stats"]
            assert stats["shards"] == 2
            assert stats["counters"]["admits"] == 1
            snapshot = (await request({"op": "snapshot", "seq": 3}))[
                "snapshot"
            ]
            assert snapshot["schema_version"] == 1
            assert [entry[0] for entry in snapshot["servers"]] == [0, 1, 2, 3]

        run_with_server(body)

    def test_shutdown_op_stops_serve_loop(self):
        async def _main():
            server = AdmissionServer(make_config())
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(encode_message({"op": "shutdown", "seq": 1}))
            await writer.drain()
            response = decode_message(await reader.readline())
            assert response["ok"] and response["shutting_down"]
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=10)
            writer.close()

        asyncio.run(_main())


class TestDecisionLog:
    def test_log_is_canonical_and_seq_sorted(self):
        async def body(server, request):
            await request(admit(20, 1, "b"))
            await request(admit(10, 0, "a"))
            await request(
                {"op": "withdraw", "seq": 15, "vm_id": 1, "task_name": "b"}
            )
            lines = (await request({"op": "log", "seq": 99}))["log"]
            seqs = [json.loads(line)["seq"] for line in lines]
            assert seqs == [10, 15, 20]
            for line in lines:
                payload = json.loads(line)
                assert line == json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                )

        run_with_server(body)

    def test_log_ring_is_bounded_with_counters(self):
        async def body(server, request):
            for index in range(6):
                await request(admit(index, 0, f"t{index}", period=200, wcet=1))
            assert len(server.log) == 3
            assert server.dropped_log_entries == 3

        run_with_server(body, log_limit=3)


class TestEpochBatching:
    def test_concurrent_analyzes_share_a_batch(self):
        async def _main():
            server = AdmissionServer(make_config(epoch_interval=0.05))
            await server.start()

            async def one_analyze(seq):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode_message({"op": "analyze", "seq": seq, "tasks": []})
                )
                await writer.drain()
                response = decode_message(await reader.readline())
                writer.close()
                return response

            try:
                responses = await asyncio.gather(
                    *[one_analyze(seq) for seq in range(3)]
                )
            finally:
                await server.stop()
            assert all(r["ok"] for r in responses)
            assert all(r["report"]["schedulable"] for r in responses)
            # All three arrived within one epoch interval -> one batch.
            assert server.counters["analyze_batches"] == 1
            assert server.counters["analyzes"] == 3

        asyncio.run(_main())

    def test_analyze_sees_admitted_population(self):
        async def body(server, request):
            await request(admit(1, 0, "a", period=50, wcet=2))
            report = (
                await request({"op": "analyze", "seq": 2, "tasks": []})
            )["report"]
            assert report["schedulable"]
            local = report["local_results"]["0"]
            assert local["task_names"] == ["a"]
            # A what-if probe is analyzed without being admitted.
            probe = {"name": "w", "vm_id": 0, "period": 50, "wcet": 1}
            report = (
                await request({"op": "analyze", "seq": 3, "tasks": [probe]})
            )["report"]
            assert sorted(report["local_results"]["0"]["task_names"]) == [
                "a",
                "w",
            ]
            population = server.pool.population()
            assert [t["name"] for t in population[0]] == ["a"]

        run_with_server(body)


class TestOverload:
    def test_shedding_then_quarantine(self):
        async def body(server, request):
            # queue_limit=0: every admit is shed; reject_limit=2 trips
            # the DegradationPolicy quarantine on the second streak hit.
            first = await request(admit(1, 0, "a"))
            assert first["error"]["kind"] == "shedding"
            assert first["error"]["quarantined"] is False
            second = await request(admit(2, 0, "b"))
            assert second["error"]["kind"] == "shedding"
            assert second["error"]["quarantined"] is True
            third = await request(admit(3, 0, "c"))
            assert third["error"]["kind"] == "quarantined"
            stats = (await request({"op": "stats", "seq": 4}))["stats"]
            assert stats["counters"]["shed"] == 2
            assert stats["counters"]["quarantined_rejects"] == 1
            assert stats["quarantined_vms"] == [0]
            assert stats["quarantine_log"][0]["category"] == "vm"
            # Other VMs are unaffected: isolation holds under overload.
            ok = await request(admit(5, 1, "d"))
            assert ok["error"]["kind"] == "shedding"  # still shed, not quarantined

        run_with_server(body, queue_limit=0, reject_limit=2)

    def test_accept_resets_the_streak(self):
        async def body(server, request):
            shed = await request(admit(1, 0, "a"))
            assert shed["error"]["kind"] == "shedding"
            server.config.queue_limit = 64  # relieve the pressure
            accepted = await request(admit(2, 0, "b"))
            assert accepted["ok"]
            server.config.queue_limit = 0
            shed = await request(admit(3, 0, "c"))
            assert shed["error"]["kind"] == "shedding"
            assert shed["error"]["quarantined"] is False

        run_with_server(body, queue_limit=0, reject_limit=2)


class TestRebalance:
    def test_rebalance_preserves_state_and_decisions(self):
        async def body(server, request):
            for index in range(4):
                await request(admit(index, index, f"t{index}"))
            response = await request({"op": "rebalance", "seq": 10, "shards": 4})
            assert response["ok"] and response["shards"] == 4
            assert server.pool.num_shards == 4
            population = server.pool.population()
            assert [t["name"] for t in population[2]] == ["t2"]
            # Decisions continue as if nothing happened.
            response = await request(admit(11, 2, "probe", period=50, wcet=1))
            assert response["ok"]

        run_with_server(body)

    def test_rebalance_rejects_zero_shards(self):
        async def body(server, request):
            response = await request(
                {"op": "rebalance", "seq": 1, "shards": 0}
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "protocol"

        run_with_server(body)


class TestHttpFraming:
    def test_post_and_get_round_trip(self):
        async def _main():
            server = AdmissionServer(make_config())
            await server.start()

            async def http(raw):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(raw)
                await writer.drain()
                data = await reader.read()
                writer.close()
                head, _, body = data.partition(b"\r\n\r\n")
                return head.split(b"\r\n")[0].decode(), json.loads(body)

            try:
                body = json.dumps(
                    {
                        "seq": 1,
                        "task": {
                            "name": "a",
                            "vm_id": 0,
                            "period": 100,
                            "wcet": 2,
                        },
                    }
                ).encode()
                status, response = await http(
                    b"POST /v1/admit HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                assert status == "HTTP/1.1 200 OK"
                assert response["decision"]["schedulable"]
                status, response = await http(
                    b"GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                assert status == "HTTP/1.1 200 OK"
                assert response["stats"]["counters"]["admits"] == 1
                status, response = await http(
                    b"POST /v1/explode HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 2\r\n\r\n{}"
                )
                assert status == "HTTP/1.1 400 Bad Request"
                assert response["error"]["kind"] == "protocol"
            finally:
                await server.stop()

        asyncio.run(_main())


class TestStartupValidation:
    def test_infeasible_servers_raise_configuration_error(self):
        # Demand 4 + 4 per 10 slots > 8 free slots in every window of 10.
        config = make_config(
            table_pattern=[1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
            servers=[(0, 10, 5), (1, 10, 5)],
        )
        with pytest.raises(ConfigurationError) as excinfo:
            AdmissionServer(config)
        assert excinfo.value.failing_t is not None
        assert excinfo.value.servers == ((0, 10, 5), (1, 10, 5))

    def test_from_system_payload_validates_keys(self):
        with pytest.raises(ValueError, match="servers"):
            ServeConfig.from_system_payload({"table_pattern": [0, 1]})


class TestProcessBackendEndToEnd:
    def test_admit_via_worker_processes(self):
        async def body(server, request):
            response = await request(admit(1, 3, "deep"))
            assert response["ok"] and response["decision"]["schedulable"]
            stats = (await request({"op": "stats", "seq": 2}))["stats"]
            assert stats["pool"]["admitted_count"] == 1

        run_with_server(body, backend="process")
