"""Shard-layer tests: partitioning, backends, snapshot merge/split.

The load-bearing property is shard-count invariance: because per-VM
Theorem-4 admission reads only that VM's state, the same per-VM
request stream must produce byte-identical decisions on a 1-shard and
an N-shard pool.
"""

import pytest

from repro.core.admission import AdmissionController, ControllerSnapshot
from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.serve.shard import (
    AdmissionShard,
    ShardConfig,
    ShardPool,
    merge_snapshots,
    partition_snapshot,
    partition_vms,
)
from repro.tasks.serialization import canonical_json

PATTERN = [1 if slot % 5 == 0 else 0 for slot in range(20)]
SERVERS = [(0, 10, 2), (1, 10, 2), (2, 20, 3), (3, 20, 3)]


def make_pool(num_shards, backend="inline", **kwargs):
    return ShardPool(PATTERN, SERVERS, num_shards, backend=backend, **kwargs)


def admit_request(vm_id, name, period=100, wcet=2):
    return {
        "op": "admit",
        "task": {"name": name, "vm_id": vm_id, "period": period, "wcet": wcet},
    }


class TestPartitioning:
    def test_round_robin_by_sorted_id(self):
        assert partition_vms([3, 1, 0, 2], 2) == [[0, 2], [1, 3]]
        assert partition_vms([3, 1, 0, 2], 3) == [[0, 3], [1], [2]]

    def test_single_shard_owns_everything(self):
        assert partition_vms([5, 1], 1) == [[1, 5]]

    def test_more_shards_than_vms(self):
        assert partition_vms([0], 3) == [[0], [], []]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            partition_vms([0], 0)


class TestShardConfig:
    def test_payload_round_trip(self):
        config = ShardConfig(
            table_pattern=PATTERN,
            servers=[(0, 10, 2)],
            incremental=False,
            max_decisions=7,
        )
        restored = ShardConfig.from_payload(config.to_payload())
        assert restored == config

    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            AdmissionShard()


class TestInlinePool:
    def test_admit_withdraw_population(self):
        pool = make_pool(2)
        shard = pool.shard_for(1)
        reply = shard.call(admit_request(1, "t0"))
        assert reply["ok"] and reply["decision"]["schedulable"]
        assert [t["name"] for t in pool.population()[1]] == ["t0"]
        reply = shard.call({"op": "withdraw", "vm_id": 1, "task_name": "t0"})
        assert reply["ok"] and reply["task"]["name"] == "t0"
        assert pool.population()[1] == []
        pool.stop()

    def test_unknown_vm_and_task_error_kinds(self):
        pool = make_pool(1)
        shard = pool.shard_for(0)
        reply = shard.call({"op": "withdraw", "vm_id": 99, "task_name": "x"})
        assert not reply["ok"] and reply["error"]["kind"] == "unknown_vm"
        reply = shard.call({"op": "withdraw", "vm_id": 0, "task_name": "x"})
        assert not reply["ok"] and reply["error"]["kind"] == "unknown_task"
        pool.stop()

    def test_malformed_task_is_a_protocol_error(self):
        pool = make_pool(1)
        reply = pool.shard_for(0).call({"op": "admit", "task": {"name": "x"}})
        assert not reply["ok"] and reply["error"]["kind"] == "protocol"
        pool.stop()

    def test_counters_aggregate_across_shards(self):
        pool = make_pool(2)
        for vm_id in range(4):
            pool.shard_for(vm_id).call(admit_request(vm_id, f"t{vm_id}"))
        counters = pool.counters()
        assert counters["admitted_count"] + counters["rejected_count"] == 4
        pool.stop()


class TestShardCountInvariance:
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_decisions_match_single_shard(self, num_shards):
        requests = []
        for vm_id in range(4):
            for index in range(5):
                requests.append(
                    admit_request(
                        vm_id,
                        f"vm{vm_id}.t{index}",
                        period=50 if index % 2 else 100,
                        wcet=1 + index % 3,
                    )
                )
        reference = make_pool(1)
        sharded = make_pool(num_shards)
        for request in requests:
            vm_id = request["task"]["vm_id"]
            ref = reference.shard_for(vm_id).call(request)
            got = sharded.shard_for(vm_id).call(request)
            assert canonical_json(got["decision"]) == canonical_json(
                ref["decision"]
            )
        reference.stop()
        sharded.stop()


class TestSnapshotMergeSplit:
    def _loaded_pool(self):
        pool = make_pool(2)
        for vm_id in range(4):
            pool.shard_for(vm_id).call(admit_request(vm_id, f"t{vm_id}"))
        return pool

    def test_merged_snapshot_covers_every_vm(self):
        pool = self._loaded_pool()
        snapshot = pool.snapshot()
        assert [entry[0] for entry in snapshot.servers] == [0, 1, 2, 3]
        assert sorted(snapshot.admitted) == [0, 1, 2, 3]
        assert snapshot.admitted_count == 4
        pool.stop()

    def test_merge_rejects_overlapping_vms(self):
        pool = self._loaded_pool()
        snapshot = pool.snapshot()
        with pytest.raises(ValueError, match="two snapshots"):
            merge_snapshots([snapshot, snapshot])
        pool.stop()

    def test_merge_of_zero_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            merge_snapshots([])

    def test_partition_then_merge_preserves_analytic_state(self):
        pool = self._loaded_pool()
        snapshot = pool.snapshot()
        parts = partition_snapshot(snapshot, 3)
        remerged = merge_snapshots(parts)
        assert remerged.admitted == snapshot.admitted
        assert remerged.memo == snapshot.memo
        # Counters and decisions stay with the service log, not shards.
        assert remerged.admitted_count == 0
        assert remerged.decisions == []
        pool.stop()

    def test_warm_pool_continues_identically(self):
        """A pool rebuilt from a snapshot decides like the original."""
        pool = self._loaded_pool()
        snapshot = pool.snapshot()
        warm = make_pool(3, warm_from=snapshot)
        assert warm.population() == pool.population()
        probe = admit_request(2, "probe", period=50, wcet=1)
        original = pool.shard_for(2).call(probe)
        continued = warm.shard_for(2).call(probe)
        assert canonical_json(continued["decision"]) == canonical_json(
            original["decision"]
        )
        pool.stop()
        warm.stop()

    def test_snapshot_payload_matches_direct_controller(self):
        """A 1-shard pool's snapshot equals a plain controller's."""
        pool = make_pool(1)
        direct = AdmissionController(
            TimeSlotTable.from_pattern(PATTERN),
            [ServerSpec(vm, pi, theta) for vm, pi, theta in SERVERS],
            max_decisions=None,
        )
        for vm_id in range(4):
            request = admit_request(vm_id, f"t{vm_id}")
            pool.shard_for(vm_id).call(request)
            from repro.tasks.serialization import task_from_dict

            direct.try_admit(task_from_dict(request["task"]))
        assert pool.snapshot().to_json() == direct.snapshot().to_json()
        pool.stop()


class TestProcessBackend:
    def test_worker_round_trip(self):
        pool = make_pool(2, backend="process")
        try:
            reply = pool.shard_for(0).call(admit_request(0, "t0"))
            assert reply["ok"] and reply["decision"]["schedulable"]
            snapshot = pool.snapshot()
            assert isinstance(snapshot, ControllerSnapshot)
            assert [t["name"] for t in pool.population()[0]] == ["t0"]
        finally:
            pool.stop()

    def test_stop_is_idempotent(self):
        pool = make_pool(1, backend="process")
        pool.stop()
        pool.stop()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            make_pool(1, backend="carrier-pigeon")
