"""The redesigned api surface: optional servers, synthesize(), shims.

Covers the api_redesign contract end to end:

* ``SystemConfig.servers`` fully optional -- omitted or ``theta=None``
  entries route through :mod:`repro.synth` and land a
  :class:`SynthesisReport` on ``System.synthesis``;
* ``repro.api.synthesize`` round-trips with ``build_system``;
* positional ``ServerConfig`` field order deprecated (one-shot);
* ``ConfigurationError`` names the conflicting device/slot pair for
  infeasible hand-written tables;
* the ``ReportBase`` extraction changes neither reprs nor behavior of
  the existing report classes.
"""

import warnings

import pytest

from repro.api import (
    AnalysisReport,
    ConfigurationError,
    IOTask,
    ReportBase,
    SchedulabilityResult,
    ServerConfig,
    SynthesisReport,
    SystemConfig,
    TableConstraint,
    TaskKind,
    admit,
    analyze,
    build_system,
    synthesize,
)
from repro.core.admission import reset_deprecation_warnings


def runtime_tasks():
    return [
        IOTask(name="steer", period=100, wcet=8, vm_id=0),
        IOTask(name="park", period=200, wcet=20, vm_id=0),
        IOTask(name="media", period=250, wcet=25, vm_id=1),
        IOTask(name="nav", period=500, wcet=30, vm_id=1),
    ]


def demo_config(**overrides):
    defaults = dict(
        name="synth-demo",
        table_pattern=[1, 0, 0, 1, 0, 0, 0, 0, 0, 0],
        tasks=runtime_tasks(),
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestOptionalServers:
    def test_omitted_servers_synthesized(self):
        system = build_system(demo_config())
        assert system.synthesis is not None
        assert system.synthesis.schedulable
        assert system.design is not None
        assert sorted(spec.vm_id for spec in system.servers) == [0, 1]
        assert analyze(system)

    def test_theta_none_pins_period_only(self):
        system = build_system(
            demo_config(
                servers=[
                    ServerConfig(0, pi=10),
                    ServerConfig(1, pi=10, theta=4),
                ]
            )
        )
        assert system.synthesis is not None
        spec0 = system.server_for(0)
        assert spec0.pi == 10
        assert spec0.theta >= 1
        assert (system.server_for(1).pi, system.server_for(1).theta) == (10, 4)

    def test_fully_specified_servers_skip_synthesis(self):
        system = build_system(
            demo_config(
                servers=[
                    ServerConfig(0, pi=20, theta=8),
                    ServerConfig(1, pi=20, theta=6),
                ]
            )
        )
        assert system.synthesis is None
        assert system.design is None

    def test_no_runtime_vms_and_no_servers_stays_empty(self):
        system = build_system(
            SystemConfig(
                name="empty",
                tasks=[
                    IOTask(
                        name="poll",
                        period=10,
                        wcet=1,
                        vm_id=0,
                        kind=TaskKind.PREDEFINED,
                        device="spi0",
                    )
                ],
            )
        )
        assert system.servers == []
        assert system.synthesis is None

    def test_synthesized_admits_same_workload_as_explicit(self):
        # The round-trip claim: a system built without servers admits
        # exactly what the hand-configured one admits.
        synthesized = build_system(demo_config())
        explicit = build_system(
            demo_config(
                servers=[
                    ServerConfig(0, pi=20, theta=8),
                    ServerConfig(1, pi=20, theta=6),
                ]
            )
        )
        probe = IOTask(name="extra", period=400, wcet=1, vm_id=0)
        assert (
            admit(synthesized, probe).schedulable
            == admit(explicit, probe).schedulable
        )


class TestSynthesizeFacade:
    def test_round_trips_with_build_system(self):
        report = synthesize(demo_config())
        system = build_system(demo_config())
        assert report.schedulable
        assert [
            (s.vm_id, s.pi, s.theta) for s in report.servers
        ] == [(s.vm_id, s.pi, s.theta) for s in system.servers]

    def test_is_schedulability_result(self):
        report = synthesize(demo_config())
        assert isinstance(report, SynthesisReport)
        assert isinstance(report, SchedulabilityResult)
        assert bool(report)
        assert report.failing_t is None

    def test_beats_hand_written_baseline(self):
        report = synthesize(demo_config())
        assert report.bandwidth <= 8 / 20 + 6 / 20

    def test_nothing_to_synthesize(self):
        report = synthesize(SystemConfig(name="void", tasks=[]))
        assert report.schedulable
        assert report.servers == []
        assert "nothing to synthesize" in report.reason

    def test_table_constraints_route_through_table_synthesis(self):
        config = SystemConfig(
            name="chain",
            tasks=[
                IOTask(
                    name="sense",
                    period=20,
                    wcet=2,
                    deadline=10,
                    vm_id=0,
                    kind=TaskKind.PREDEFINED,
                    device="lidar",
                ),
                IOTask(
                    name="act",
                    period=20,
                    wcet=1,
                    vm_id=0,
                    kind=TaskKind.PREDEFINED,
                    device="canbus",
                ),
                IOTask(name="ctl", period=100, wcet=5, vm_id=0),
            ],
            table_constraints=[
                TableConstraint("sense", "act", min_lag=2, max_lag=12)
            ],
        )
        report = synthesize(config)
        assert report.schedulable
        assert build_system(config).table.occupancy_pattern() == (
            report.table.occupancy_pattern()
        )


class TestPositionalDeprecation:
    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        reset_deprecation_warnings()
        yield
        reset_deprecation_warnings()

    def test_positional_warns_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = ServerConfig(0, 20, 8)
            second = ServerConfig(1, 20, 6)
        messages = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(messages) == 1
        assert "keyword" in str(messages[0].message)
        assert (first.pi, first.theta) == (20, 8)
        assert (second.pi, second.theta) == (20, 6)

    def test_keyword_form_is_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ServerConfig(0, pi=20, theta=8)
        assert [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ] == []

    def test_positional_and_keyword_conflict_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(TypeError, match="both"):
                ServerConfig(0, 20, pi=30)
            with pytest.raises(TypeError, match="positional"):
                ServerConfig(0, 20, 8, 9)

    def test_pi_required(self):
        with pytest.raises(TypeError, match="pi"):
            ServerConfig(0)


class TestConfigurationErrorNamesConflict:
    def test_infeasible_pinned_table_names_device_and_slot(self):
        config = SystemConfig(
            name="bad-table",
            stagger=False,
            table_pattern=[1, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            tasks=[
                IOTask(
                    name="sense",
                    period=10,
                    wcet=2,
                    deadline=5,
                    vm_id=0,
                    kind=TaskKind.PREDEFINED,
                    device="lidar",
                )
            ],
        )
        with pytest.raises(ConfigurationError) as excinfo:
            build_system(config)
        error = excinfo.value
        assert error.device == "lidar"
        assert error.slot == 0
        assert "lidar" in str(error)
        assert "sense" in str(error)

    def test_pattern_must_tile_predefined_periods(self):
        config = SystemConfig(
            name="bad-tile",
            table_pattern=[1, 0, 0, 0, 0, 0, 0],
            tasks=[
                IOTask(
                    name="poll",
                    period=10,
                    wcet=1,
                    vm_id=0,
                    kind=TaskKind.PREDEFINED,
                    device="spi0",
                )
            ],
        )
        with pytest.raises(ConfigurationError, match="multiple"):
            build_system(config)

    def test_feasible_pinned_table_accepted(self):
        config = SystemConfig(
            name="ok-table",
            stagger=False,
            table_pattern=[1, 1, 0, 0, 0, 1, 0, 0, 0, 0],
            tasks=[
                IOTask(
                    name="sense",
                    period=10,
                    wcet=2,
                    deadline=5,
                    vm_id=0,
                    kind=TaskKind.PREDEFINED,
                    device="lidar",
                )
            ],
        )
        assert build_system(config).table.total_slots == 10


class TestReportBaseShim:
    def test_analysis_report_repr_unchanged(self):
        system = build_system(
            demo_config(
                servers=[
                    ServerConfig(0, pi=20, theta=8),
                    ServerConfig(1, pi=20, theta=6),
                ]
            )
        )
        report = analyze(system)
        text = repr(report)
        # Dataclass-generated repr: ReportBase must not leak into it.
        assert text.startswith("AnalysisReport(")
        assert "ReportBase" not in text

    def test_reports_share_the_base(self):
        system = build_system(demo_config())
        report = analyze(system)
        assert isinstance(report, ReportBase)
        assert isinstance(system.synthesis, ReportBase)
        assert isinstance(report, AnalysisReport)

    def test_bool_and_failing_t_behavior_preserved(self):
        system = build_system(
            demo_config(
                servers=[
                    ServerConfig(0, pi=20, theta=8),
                    ServerConfig(1, pi=20, theta=6),
                ]
            )
        )
        report = analyze(system)
        assert bool(report) is report.schedulable
        if report.schedulable:
            assert report.failing_t is None

    def test_failing_report_surfaces_witness(self):
        config = SystemConfig(
            name="overload",
            table_pattern=[1, 0],
            servers=[ServerConfig(0, pi=10, theta=1)],
            tasks=[IOTask(name="hog", period=10, wcet=8, vm_id=0)],
        )
        report = analyze(build_system(config))
        assert not report
        assert report.failing_t is not None
        assert isinstance(report.summary(), str)
