"""Tests for the ``repro.api`` facade."""

import ast
from pathlib import Path

import pytest

from repro.api import (
    AnalysisReport,
    IOTask,
    SchedulabilityResult,
    ServerConfig,
    SystemConfig,
    TaskKind,
    admit,
    analyze,
    analyze_many,
    build_system,
    simulate,
    withdraw,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
#: Examples ported onto the facade; they must not import any other
#: repro submodule.
PORTED_EXAMPLES = (
    "quickstart.py",
    "schedulability_analysis.py",
    "admission_control.py",
)


def sample_tasks():
    return [
        IOTask(
            name="poll", period=50, wcet=4, vm_id=0,
            kind=TaskKind.PREDEFINED, device="spi0", payload_bytes=16,
        ),
        IOTask(
            name="cmd", period=80, wcet=6, vm_id=0,
            kind=TaskKind.RUNTIME, device="spi0", payload_bytes=32,
        ),
        IOTask(
            name="telemetry", period=120, wcet=10, vm_id=1,
            kind=TaskKind.RUNTIME, device="spi0", payload_bytes=64,
        ),
    ]


class TestBuildSystem:
    def test_auto_design(self):
        system = build_system(SystemConfig(tasks=sample_tasks()))
        assert system.design is not None
        assert sorted(system.vm_ids) == [0, 1]
        assert system.table.total_slots > 0

    def test_pinned_servers_and_table(self):
        system = build_system(
            SystemConfig(
                table_pattern=[1, 0, 0, 0],
                servers=[ServerConfig(0, pi=10, theta=5)],
            )
        )
        assert system.design is None
        assert system.table.total_slots == 4
        spec = system.server_for(0)
        assert (spec.pi, spec.theta) == (10, 5)
        with pytest.raises(KeyError):
            system.server_for(7)


class TestAnalyze:
    def test_schedulable_system(self):
        system = build_system(SystemConfig(tasks=sample_tasks()))
        report = analyze(system)
        assert isinstance(report, AnalysisReport)
        assert isinstance(report, SchedulabilityResult)
        assert report.schedulable
        assert bool(report)
        assert report.failing_t is None
        assert "schedulable" in report.summary()
        assert sorted(report.local_results) == [0, 1]

    def test_unschedulable_reports_witness(self):
        system = build_system(
            SystemConfig(
                tasks=[
                    IOTask(name="heavy", period=20, wcet=15, vm_id=0,
                           kind=TaskKind.RUNTIME),
                ],
                table_pattern=[0] * 10,
                servers=[ServerConfig(0, pi=20, theta=10)],
            )
        )
        report = analyze(system)
        assert not report.schedulable
        assert report.failing_t is not None
        assert not report.local_results[0].schedulable

    def test_engine_override_is_bit_identical(self):
        system = build_system(SystemConfig(tasks=sample_tasks()))
        scalar = analyze(system, engine="scalar")
        fast = analyze(system, engine="vectorized")
        assert scalar.schedulable == fast.schedulable
        assert scalar.global_result == fast.global_result
        assert scalar.local_results == fast.local_results


class TestAnalyzeMany:
    def systems(self):
        mixed = [
            build_system(SystemConfig(tasks=sample_tasks())),
            build_system(
                SystemConfig(
                    tasks=[
                        IOTask(name="heavy", period=20, wcet=15, vm_id=0,
                               kind=TaskKind.RUNTIME),
                    ],
                    table_pattern=[0] * 10,
                    servers=[ServerConfig(0, pi=20, theta=10)],
                )
            ),
            build_system(
                SystemConfig(
                    table_pattern=[1, 0, 0, 1, 0, 0, 0, 0, 0, 0],
                    servers=[ServerConfig(0, pi=20, theta=8), ServerConfig(1, pi=20, theta=6)],
                )
            ),
        ]
        return mixed

    def test_empty_batch(self):
        assert analyze_many([]) == []

    def test_batched_matches_per_system_analyze(self):
        systems = self.systems()
        reports = analyze_many(systems, engine="batched")
        assert len(reports) == len(systems)
        for system, report in zip(systems, reports):
            reference = analyze(system)
            assert report.schedulable == reference.schedulable
            assert report.global_result == reference.global_result
            assert report.local_results == reference.local_results

    def test_non_batched_engines_degrade_to_per_system(self):
        systems = self.systems()
        for engine in ("scalar", "vectorized"):
            reports = analyze_many(systems, engine=engine)
            for system, report in zip(systems, reports):
                reference = analyze(system, engine=engine)
                assert report.schedulable == reference.schedulable
                assert report.local_results == reference.local_results

    def test_mixed_verdicts_keep_order(self):
        reports = analyze_many(self.systems(), engine="batched")
        assert [r.schedulable for r in reports] == [True, False, True]


class TestAdmitAndSimulate:
    def system(self):
        return build_system(
            SystemConfig(
                table_pattern=[1, 0, 0, 1, 0, 0, 0, 0, 0, 0],
                servers=[ServerConfig(0, pi=20, theta=8), ServerConfig(1, pi=20, theta=6)],
            )
        )

    def test_admit_updates_population(self):
        system = self.system()
        decision = admit(system, IOTask(name="a", period=100, wcet=8, vm_id=0))
        assert decision.schedulable
        population = system.runtime_population()
        assert "a" in population[0]
        rejected = admit(
            system, IOTask(name="b", period=150, wcet=45, vm_id=0)
        )
        assert not rejected.schedulable
        assert rejected.failing_t is not None

    def test_withdraw_frees_demand(self):
        system = self.system()
        assert admit(system, IOTask(name="a", period=100, wcet=30, vm_id=0))
        heavy = IOTask(name="b", period=100, wcet=30, vm_id=0)
        assert not admit(system, heavy).schedulable
        assert withdraw(system, 0, "a").name == "a"
        assert admit(system, heavy).schedulable

    def test_baseline_runtime_tasks_seed_controller(self):
        system = build_system(SystemConfig(tasks=sample_tasks()))
        decision = admit(
            system, IOTask(name="extra", period=400, wcet=1, vm_id=0)
        )
        assert decision.schedulable
        population = system.runtime_population()
        assert "cmd" in population[0]
        assert "extra" in population[0]

    def test_simulate_schedulable_system_has_no_misses(self):
        system = build_system(SystemConfig(tasks=sample_tasks()))
        assert analyze(system).schedulable
        run = simulate(system, horizon=1_000)
        assert run.completed > 0
        assert run.deadline_misses == 0
        assert bool(run)
        assert "0 deadline misses" in run.summary()

    def test_simulate_covers_admitted_tasks(self):
        system = self.system()
        admit(system, IOTask(name="a", period=100, wcet=8, vm_id=0))
        run = simulate(system, horizon=500)
        assert run.completed >= 5  # five releases of "a"

    def test_simulate_rejects_negative_horizon(self):
        with pytest.raises(ValueError):
            simulate(self.system(), horizon=-1)


class TestExamplesImportOnlyTheFacade:
    @pytest.mark.parametrize("filename", PORTED_EXAMPLES)
    def test_example_imports(self, filename):
        tree = ast.parse((EXAMPLES / filename).read_text())
        repro_imports = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                repro_imports.update(
                    alias.name for alias in node.names
                    if alias.name.split(".")[0] == "repro"
                )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "repro":
                    repro_imports.add(node.module)
        assert repro_imports == {"repro.api"}, (
            f"{filename} must import only repro.api, got {sorted(repro_imports)}"
        )
