"""Unit tests for metrics: latency stats, success ratio, aggregation."""

import pytest

from repro.baselines.base import TrialResult
from repro.metrics.stats import LatencyStats, percentile, summarize
from repro.metrics.success import aggregate, success_ratio, sweep_table
from repro.tasks.task import Criticality


def make_result(system="sys", util=0.5, miss_safety=0, complete_safety=10,
                bytes_=1000):
    result = TrialResult(
        system=system,
        target_utilization=util,
        horizon_slots=10_000,
        slot_seconds=1e-5,
    )
    for i in range(complete_safety):
        result.record(Criticality.SAFETY, missed=i < miss_safety)
    result.bytes_transferred = bytes_
    return result


class TestLatencyStats:
    def test_summarize_basic(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == 3
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.p50 == 3
        assert stats.jitter == 4

    def test_single_sample(self):
        stats = summarize([7.0])
        assert stats.stdev == 0.0
        assert stats.p99 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_interpolation(self):
        assert percentile([0, 10], 0.5) == 5
        assert percentile([0, 10, 20], 0.25) == 5

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_as_dict(self):
        stats = summarize([1, 2])
        assert set(stats.as_dict()) == {
            "count", "mean", "stdev", "min", "max", "p50", "p95", "p99"
        }


class TestTrialResult:
    def test_success_requires_zero_critical_misses(self):
        assert make_result(miss_safety=0).success
        assert not make_result(miss_safety=1).success

    def test_synthetic_misses_do_not_fail_trial(self):
        result = make_result(miss_safety=0)
        result.record(Criticality.SYNTHETIC, missed=True)
        assert result.success

    def test_critical_unfinished_fails_trial(self):
        result = make_result(miss_safety=0)
        result.critical_unfinished = 1
        assert not result.success

    def test_throughput(self):
        result = make_result(bytes_=12_500)
        # 10_000 slots * 1e-5 s = 0.1 s; 12500 B = 1e5 bits -> 1 Mbps.
        assert result.throughput_mbps == pytest.approx(1.0)


class TestAggregation:
    def test_success_ratio(self):
        results = [make_result(miss_safety=0)] * 3 + [make_result(miss_safety=1)]
        assert success_ratio(results) == pytest.approx(0.75)

    def test_success_ratio_empty_rejected(self):
        with pytest.raises(ValueError):
            success_ratio([])

    def test_aggregate(self):
        results = [
            make_result(miss_safety=0, bytes_=1000),
            make_result(miss_safety=2, bytes_=2000),
        ]
        point = aggregate(results)
        assert point.trials == 2
        assert point.success_ratio == 0.5
        assert point.min_throughput_mbps < point.max_throughput_mbps
        assert point.mean_miss_ratio == pytest.approx((0 + 0.2) / 2)

    def test_aggregate_stdev(self):
        results = [
            make_result(bytes_=1000),
            make_result(bytes_=2000),
            make_result(bytes_=3000),
        ]
        point = aggregate(results)
        assert point.stdev_throughput_mbps > 0
        assert point.throughput_spread == pytest.approx(
            point.max_throughput_mbps - point.min_throughput_mbps
        )
        single = aggregate([make_result()])
        assert single.stdev_throughput_mbps == 0.0

    def test_aggregate_mixed_systems_rejected(self):
        with pytest.raises(ValueError):
            aggregate([make_result(system="a"), make_result(system="b")])

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_sweep_table_ordering(self):
        cells = {
            "b": {0.5: [make_result("b", 0.5)]},
            "a": {0.7: [make_result("a", 0.7)], 0.4: [make_result("a", 0.4)]},
        }
        rows = sweep_table(cells)
        assert [(r.system, r.target_utilization) for r in rows] == [
            ("a", 0.4), ("a", 0.7), ("b", 0.5)
        ]
