"""Unit tests for the global timer."""

import pytest

from repro.sim.clock import GlobalTimer
from repro.sim.engine import SimulationError


class TestGlobalTimer:
    def test_defaults(self, sim):
        timer = GlobalTimer(sim)
        assert timer.frequency_hz == 100_000_000
        assert timer.cycles_per_slot == 1_000

    def test_conversions_roundtrip(self, sim):
        timer = GlobalTimer(sim, frequency_hz=100_000_000, cycles_per_slot=500)
        assert timer.slots_to_cycles(4) == 2_000
        assert timer.cycles_to_slots(2_000) == 4
        assert timer.seconds_to_cycles(0.001) == 100_000
        assert timer.cycles_to_seconds(100_000) == 0.001

    def test_now_views(self, sim):
        timer = GlobalTimer(sim, cycles_per_slot=100)
        sim.schedule(250, lambda: None)
        sim.run()
        assert timer.now_cycles == 250
        assert timer.now_slots == 2
        assert timer.now_seconds == 250 / 100_000_000

    def test_slot_start_cycle(self, sim):
        timer = GlobalTimer(sim, cycles_per_slot=100)
        assert timer.slot_start_cycle(0) == 0
        assert timer.slot_start_cycle(7) == 700

    def test_next_slot_boundary_mid_slot(self, sim):
        timer = GlobalTimer(sim, cycles_per_slot=100)
        sim.schedule(150, lambda: None)
        sim.run()
        assert timer.next_slot_boundary() == 200

    def test_next_slot_boundary_on_boundary(self, sim):
        timer = GlobalTimer(sim, cycles_per_slot=100)
        sim.schedule(200, lambda: None)
        sim.run()
        assert timer.next_slot_boundary() == 300

    def test_invalid_frequency(self, sim):
        with pytest.raises(SimulationError):
            GlobalTimer(sim, frequency_hz=0)

    def test_invalid_slot_size(self, sim):
        with pytest.raises(SimulationError):
            GlobalTimer(sim, cycles_per_slot=0)
