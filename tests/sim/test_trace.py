"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_records_events(self):
        trace = TraceRecorder()
        trace.record(1.0, "release", "taskA", job=1)
        trace.record(2.0, "complete", "taskA", job=1)
        assert len(trace) == 2
        assert trace.events[0].payload == {"job": 1}

    def test_by_category(self):
        trace = TraceRecorder()
        trace.record(1, "a", "s1")
        trace.record(2, "b", "s1")
        trace.record(3, "a", "s2")
        assert [e.time for e in trace.by_category("a")] == [1, 3]
        assert trace.by_category("missing") == []

    def test_count_works_when_disabled(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1, "miss", "x")
        trace.record(2, "miss", "y")
        assert len(trace) == 0
        assert trace.count("miss") == 2

    def test_category_whitelist(self):
        trace = TraceRecorder(categories=["keep"])
        trace.record(1, "keep", "s")
        trace.record(2, "drop", "s")
        assert len(trace) == 1
        assert trace.count("drop") == 1  # counted but not stored

    def test_filter_predicate(self):
        trace = TraceRecorder()
        for t in range(5):
            trace.record(t, "tick", "s")
        late = trace.filter(lambda e: e.time >= 3)
        assert [e.time for e in late] == [3, 4]

    def test_sources_sorted_unique(self):
        trace = TraceRecorder()
        trace.record(1, "x", "beta")
        trace.record(2, "x", "alpha")
        trace.record(3, "x", "beta")
        assert trace.sources() == ["alpha", "beta"]

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1, "x", "s")
        trace.clear()
        assert len(trace) == 0
        assert trace.count("x") == 0

    def test_iteration(self):
        trace = TraceRecorder()
        trace.record(1, "x", "s")
        trace.record(2, "y", "s")
        assert [e.category for e in trace] == ["x", "y"]
