"""Unit tests for the trace recorder."""

import pytest

from repro.core.gsched import ServerSpec
from repro.core.driver import VirtualizationDriver
from repro.core.hypervisor import HypervisorConfig, IOGuardHypervisor
from repro.hw.controller import EthernetController
from repro.hw.devices import EchoDevice
from repro.sim.rng import RandomSource
from repro.sim.trace import TraceRecorder
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


class TestTraceRecorder:
    def test_records_events(self):
        trace = TraceRecorder()
        trace.record(1, "release", "taskA", job=1)
        trace.record(2, "complete", "taskA", job=1)
        assert len(trace) == 2
        assert trace.events[0].payload == {"job": 1}

    def test_by_category(self):
        trace = TraceRecorder()
        trace.record(1, "a", "s1")
        trace.record(2, "b", "s1")
        trace.record(3, "a", "s2")
        assert [e.time for e in trace.by_category("a")] == [1, 3]
        assert trace.by_category("missing") == []

    def test_count_works_when_disabled(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1, "miss", "x")
        trace.record(2, "miss", "y")
        assert len(trace) == 0
        assert trace.count("miss") == 2

    def test_category_whitelist(self):
        trace = TraceRecorder(categories=["keep"])
        trace.record(1, "keep", "s")
        trace.record(2, "drop", "s")
        assert len(trace) == 1
        # A filtered category is invisible to counters too: count() and
        # by_category() must agree on what the recorder observed.
        assert trace.count("drop") == 0
        assert trace.by_category("drop") == []
        assert trace.count("keep") == 1

    def test_whitelist_and_disabled_compose(self):
        # Disabled mode keeps counting, but only whitelisted categories.
        trace = TraceRecorder(enabled=False, categories=["keep"])
        trace.record(1, "keep", "s")
        trace.record(2, "keep", "s")
        trace.record(3, "drop", "s")
        assert len(trace) == 0
        assert trace.count("keep") == 2
        assert trace.count("drop") == 0

    def test_integral_float_times_normalize_to_int(self):
        trace = TraceRecorder()
        trace.record(3.0, "x", "s")  # iolint: disable=IOL004 -- exercises the boundary
        assert trace.events[0].time == 3
        assert isinstance(trace.events[0].time, int)

    def test_fractional_time_rejected(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError):
            trace.record(1.5, "x", "s")  # iolint: disable=IOL004 -- exercises the boundary
        assert len(trace) == 0
        # A rejected record leaves no phantom counter behind.
        assert trace.count("x") == 0

    def test_filter_predicate(self):
        trace = TraceRecorder()
        for t in range(5):
            trace.record(t, "tick", "s")
        late = trace.filter(lambda e: e.time >= 3)
        assert [e.time for e in late] == [3, 4]

    def test_sources_sorted_unique(self):
        trace = TraceRecorder()
        trace.record(1, "x", "beta")
        trace.record(2, "x", "alpha")
        trace.record(3, "x", "beta")
        assert trace.sources() == ["alpha", "beta"]

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1, "x", "s")
        trace.clear()
        assert len(trace) == 0
        assert trace.count("x") == 0

    def test_iteration(self):
        trace = TraceRecorder()
        trace.record(1, "x", "s")
        trace.record(2, "y", "s")
        assert [e.category for e in trace] == ["x", "y"]


class TestRingBuffer:
    def test_max_events_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)
        with pytest.raises(ValueError):
            TraceRecorder(max_events=-3)

    def test_eviction_is_counted_never_silent(self):
        trace = TraceRecorder(max_events=3)
        for t in range(5):
            trace.record(t, "tick", "s")
        assert len(trace) == 3
        assert [e.time for e in trace.events] == [2, 3, 4]
        assert trace.dropped_events == 2
        # Counters keep the full history; the difference to the stored
        # view is exactly the evicted events.
        assert trace.count("tick") == 5
        assert trace.count("tick") - len(trace.by_category("tick")) == 2

    def test_by_category_consistent_after_eviction(self):
        trace = TraceRecorder(max_events=2)
        trace.record(1, "a", "s")
        trace.record(2, "b", "s")
        trace.record(3, "a", "s")  # evicts the a@1 event
        assert [e.time for e in trace.by_category("a")] == [3]
        assert [e.time for e in trace.by_category("b")] == [2]
        trace.record(4, "a", "s")  # evicts b@2; its bucket empties
        assert trace.by_category("b") == []
        assert [e.time for e in trace.by_category("a")] == [3, 4]
        assert trace.dropped_events == 2

    def test_clear_resets_drop_counter(self):
        trace = TraceRecorder(max_events=1)
        trace.record(1, "x", "s")
        trace.record(2, "x", "s")
        assert trace.dropped_events == 1
        trace.clear()
        assert trace.dropped_events == 0
        assert len(trace) == 0

    def test_unbounded_recorder_never_drops(self):
        trace = TraceRecorder()
        for t in range(100):
            trace.record(t, "tick", "s")
        assert len(trace) == 100
        assert trace.dropped_events == 0


def _run_platform(seed: int, horizon: int = 400):
    """One full I/O-GUARD platform run with tracing: hypervisor +
    P-channel table + R-channel servers + randomized runtime arrivals,
    everything stochastic drawn from ``seed``."""
    trace = TraceRecorder()
    hypervisor = IOGuardHypervisor(HypervisorConfig(trace=trace))
    predefined = TaskSet([
        IOTask(
            name="p0", period=10, wcet=2, kind=TaskKind.PREDEFINED,
            device="eth0", payload_bytes=32,
        ),
    ])
    driver = VirtualizationDriver(
        EthernetController("eth0"), EchoDevice("dev", service_cycles=50)
    )
    hypervisor.attach_device(
        "eth0", driver, predefined, [ServerSpec(0, 10, 4)]
    )
    rng = RandomSource(seed, "trace.regression")
    tasks = [
        IOTask(
            name=f"r{i}", period=rng.randint(30, 80), wcet=rng.randint(1, 3),
            vm_id=0, device="eth0", payload_bytes=32,
        )
        for i in range(4)
    ]
    arrivals = sorted(
        (rng.randint(0, horizon // 2), task, index)
        for index, task in enumerate(tasks)
    )
    cursor = 0
    for slot in range(horizon):
        while cursor < len(arrivals) and arrivals[cursor][0] == slot:
            _slot, task, index = arrivals[cursor]
            hypervisor.submit(task.job(release=slot, index=index))
            cursor += 1
        hypervisor.step(slot)
    return trace


class TestFullPlatformTraceRegression:
    """Two identically-seeded platform runs must trace identically.

    This is the end-to-end determinism contract the parallel experiment
    runner builds on: all platform state evolves from the seed alone, so
    a re-run (in any process) replays event for event.
    """

    @staticmethod
    def _comparable(trace):
        return [
            (event.time, event.category, event.source,
             sorted(event.payload.items()))
            for event in trace.events
        ]

    def test_identical_seeds_identical_traces(self):
        first = _run_platform(seed=2021)
        second = _run_platform(seed=2021)
        assert len(first) > 0, "run produced no trace events"
        assert self._comparable(first) == self._comparable(second)
        assert first.counters == second.counters

    def test_different_seeds_diverge(self):
        # Sanity: the trace actually depends on the seed (otherwise the
        # regression above is vacuous).
        baseline = self._comparable(_run_platform(seed=2021))
        for other in (2022, 2023, 2024):
            if self._comparable(_run_platform(seed=other)) != baseline:
                return
        raise AssertionError("traces never vary with the seed")
