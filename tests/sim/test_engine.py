"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


class TestScheduling:
    def test_callbacks_run_in_time_order(self, sim):
        order = []
        sim.schedule(5, order.append, "b")
        sim.schedule(1, order.append, "a")
        sim.schedule(9, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_preserves_insertion_order(self, sim):
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(3, order.append, tag)
        sim.run()
        assert order == ["x", "y", "z"]

    def test_priority_breaks_ties(self, sim):
        order = []
        sim.schedule(3, order.append, "late", priority=1)
        sim.schedule(3, order.append, "early", priority=0)
        sim.run()
        assert order == ["early", "late"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError, match="past"):
            sim.schedule(-1, lambda: None)

    def test_at_schedules_absolute_time(self, sim):
        seen = []
        sim.schedule(5, lambda: sim.at(12, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [12]

    def test_now_advances_to_event_time(self, sim):
        times = []
        sim.schedule(7, lambda: times.append(sim.now))
        sim.run()
        assert times == [7]
        assert sim.now == 7

    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(5, seen.append, "early")
        sim.schedule(50, seen.append, "late")
        sim.run(until=10)
        assert seen == ["early"]
        assert sim.now == 10
        assert sim.pending_events == 1

    def test_run_until_then_resume(self, sim):
        seen = []
        sim.schedule(5, seen.append, 1)
        sim.schedule(15, seen.append, 2)
        sim.run(until=10)
        sim.run()
        assert seen == [1, 2]

    def test_stop_halts_run(self, sim):
        seen = []
        sim.schedule(1, seen.append, 1)
        sim.schedule(2, sim.stop)
        sim.schedule(3, seen.append, 3)
        sim.run()
        assert seen == [1]
        assert sim.pending_events == 1

    def test_event_count_tracks_executions(self, sim):
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.event_count == 5


class TestProcesses:
    def test_timeout_advances_process(self, sim):
        trace = []

        def body():
            trace.append(("start", sim.now))
            yield Timeout(10)
            trace.append(("mid", sim.now))
            yield Timeout(5)
            trace.append(("end", sim.now))

        sim.process(body())
        sim.run()
        assert trace == [("start", 0), ("mid", 10), ("end", 15)]

    def test_process_return_value_captured(self, sim):
        def body():
            yield Timeout(1)
            return 42

        process = sim.process(body())
        sim.run()
        assert process.value == 42
        assert not process.alive

    def test_waiting_on_child_process(self, sim):
        def child():
            yield Timeout(10)
            return "result"

        results = []

        def parent():
            value = yield sim.process(child(), name="child")
            results.append((value, sim.now))

        sim.process(parent())
        sim.run()
        assert results == [("result", 10)]

    def test_waiting_on_already_dead_process(self, sim):
        def child():
            return "early"
            yield  # pragma: no cover

        def parent(child_process):
            value = yield child_process
            return value

        child_process = sim.process(child())
        sim.run()
        parent_process = sim.process(parent(child_process))
        sim.run()
        assert parent_process.value == "early"

    def test_signal_wakes_all_waiters(self, sim):
        signal = sim.signal("door")
        woken = []

        def waiter(tag):
            value = yield signal
            woken.append((tag, value))

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(5, signal.fire, "opened")
        sim.run()
        assert sorted(woken) == [("a", "opened"), ("b", "opened")]

    def test_signal_rearms_after_fire(self, sim):
        signal = sim.signal()
        values = []

        def waiter():
            first = yield signal
            values.append(first)
            second = yield signal
            values.append(second)

        sim.process(waiter())
        sim.schedule(1, signal.fire, 1)
        sim.schedule(2, signal.fire, 2)
        sim.run()
        assert values == [1, 2]
        assert signal.fire_count == 2

    def test_interrupt_raises_inside_process(self, sim):
        caught = []

        def body():
            try:
                yield Timeout(100)
            except Interrupt as interrupt:
                caught.append((sim.now, interrupt.cause))

        process = sim.process(body())
        sim.schedule(5, process.interrupt, "preempted")
        sim.run()
        assert caught == [(5, "preempted")]

    def test_interrupt_dead_process_is_noop(self, sim):
        def body():
            yield Timeout(1)

        process = sim.process(body())
        sim.run()
        process.interrupt("late")  # must not raise
        sim.run()

    def test_interrupt_removes_from_signal_waiters(self, sim):
        signal = sim.signal()

        def body():
            try:
                yield signal
            except Interrupt:
                pass

        process = sim.process(body())
        sim.schedule(1, process.interrupt)
        sim.run()
        assert signal.waiter_count == 0

    def test_unsupported_yield_raises(self, sim):
        def body():
            yield "nonsense"

        sim.process(body())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.5)

    def test_all_of_waits_for_everything(self, sim):
        def worker(delay, value):
            yield Timeout(delay)
            return value

        children = [sim.process(worker(d, d * 10)) for d in (3, 1, 2)]
        collector = sim.process(sim.all_of(children))
        sim.run()
        assert collector.value == [30, 10, 20]
        assert sim.now == 3

    def test_reentrant_run_rejected(self, sim):
        def body():
            sim.run()
            yield Timeout(1)

        sim.process(body())
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()


class TestCompletionSignal:
    def test_completion_fires_with_value(self, sim):
        observed = []

        def child():
            yield Timeout(2)
            return "done"

        process = sim.process(child())

        def observer():
            value = yield process.completion
            observed.append(value)

        sim.process(observer())
        sim.run()
        assert observed == ["done"]


class TestDeterministicReplay:
    """Identically-seeded simulations replay event for event.

    The engine itself is deterministic (heap ordered by time, priority,
    then insertion sequence); combined with seeded random sources this
    makes whole runs reproducible -- the property the parallel
    experiment runner and the trace regression rely on.
    """

    @staticmethod
    def _run_cascade(seed):
        from repro.sim.rng import RandomSource

        sim = Simulator()
        log = []

        def worker(name, rng):
            for round_index in range(10):
                yield Timeout(rng.randint(1, 9))
                log.append((sim.now, name, round_index))

        root = RandomSource(seed, "engine.replay")
        for name in ("a", "b", "c"):
            sim.process(worker(name, root.spawn(name)), name=name)
        sim.run()
        return log, sim.now

    def test_same_seed_same_event_sequence(self):
        first = self._run_cascade(42)
        second = self._run_cascade(42)
        assert first == second
        assert len(first[0]) == 30

    def test_different_seed_diverges(self):
        assert self._run_cascade(42) != self._run_cascade(43)
