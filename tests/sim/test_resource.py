"""Unit tests for Resource and Store."""

import pytest

from repro.sim.engine import SimulationError, Timeout
from repro.sim.resource import Resource, Store


class TestResource:
    def test_acquire_when_free_is_immediate(self, sim):
        resource = Resource(sim, capacity=1)
        done = []

        def body():
            yield from resource.acquire()
            done.append(sim.now)
            resource.release()

        sim.process(body())
        sim.run()
        assert done == [0]
        assert resource.in_use == 0

    def test_contention_serialises_fifo(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def body(tag, hold):
            yield from resource.acquire()
            order.append((tag, sim.now))
            yield Timeout(hold)
            resource.release()

        sim.process(body("a", 10))
        sim.process(body("b", 10))
        sim.process(body("c", 10))
        sim.run()
        assert order == [("a", 0), ("b", 10), ("c", 20)]

    def test_capacity_two_admits_two(self, sim):
        resource = Resource(sim, capacity=2)
        starts = []

        def body(tag):
            yield from resource.acquire()
            starts.append((tag, sim.now))
            yield Timeout(5)
            resource.release()

        for tag in "abc":
            sim.process(body(tag))
        sim.run()
        assert starts == [("a", 0), ("b", 0), ("c", 5)]

    def test_release_idle_raises(self, sim):
        resource = Resource(sim)
        with pytest.raises(SimulationError, match="idle"):
            resource.release()

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_wait_statistics(self, sim):
        resource = Resource(sim, capacity=1)

        def body(hold):
            yield from resource.acquire()
            yield Timeout(hold)
            resource.release()

        sim.process(body(10))
        sim.process(body(10))
        sim.run()
        assert resource.total_acquisitions == 2
        assert resource.total_wait_time == 10
        assert resource.mean_wait == 5
        assert resource.peak_queue_length == 1

    def test_queue_length_live_view(self, sim):
        resource = Resource(sim, capacity=1)

        def holder():
            yield from resource.acquire()
            yield Timeout(100)
            resource.release()

        def waiter():
            yield from resource.acquire()
            resource.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=50)
        assert resource.queue_length == 1


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        got = []

        def producer():
            yield from store.put("item")

        def consumer():
            item = yield from store.get()
            got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((item, sim.now))

        def producer():
            yield Timeout(7)
            yield from store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 7)]

    def test_fifo_order(self, sim):
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield from store.put(i)

        def consumer():
            for _ in range(3):
                item = yield from store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield from store.put("a")
            events.append(("put-a", sim.now))
            yield from store.put("b")
            events.append(("put-b", sim.now))

        def consumer():
            yield Timeout(10)
            item = yield from store.get()
            events.append((f"got-{item}", sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put-a", 0) in events
        assert ("put-b", 10) in events

    def test_try_put_and_try_get(self, sim):
        store = Store(sim, capacity=1)
        assert store.try_put("x") is True
        assert store.try_put("y") is False
        ok, item = store.try_get()
        assert ok and item == "x"
        ok, item = store.try_get()
        assert not ok and item is None

    def test_peek_and_items(self, sim):
        store = Store(sim)
        store.try_put(1)
        store.try_put(2)
        assert store.peek() == 1
        assert store.items() == [1, 2]
        assert len(store) == 2

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_statistics(self, sim):
        store = Store(sim, capacity=2)
        store.try_put("a")
        store.try_put("b")
        store.try_get()
        assert store.total_puts == 2
        assert store.total_gets == 1
        assert store.peak_occupancy == 2
