"""Unit tests for deterministic RNG streams."""

import pytest

from repro.sim.rng import RandomSource, derive_seed, spawn_streams


class TestRandomSource:
    def test_same_seed_same_sequence(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_spawn_is_deterministic(self):
        a = RandomSource(42).spawn("child")
        b = RandomSource(42).spawn("child")
        assert a.random() == b.random()

    def test_spawn_children_independent(self):
        parent = RandomSource(42)
        x = parent.spawn("x")
        y = parent.spawn("y")
        assert x.seed_value != y.seed_value

    def test_spawn_unaffected_by_parent_draws(self):
        parent_a = RandomSource(42)
        parent_b = RandomSource(42)
        parent_b.random()  # extra draw must not change child stream
        assert parent_a.spawn("c").random() == parent_b.spawn("c").random()

    def test_log_uniform_range(self):
        rng = RandomSource(7)
        for _ in range(100):
            value = rng.log_uniform(10, 1000)
            assert 10 <= value <= 1000

    def test_log_uniform_invalid(self):
        rng = RandomSource(7)
        with pytest.raises(ValueError):
            rng.log_uniform(0, 10)
        with pytest.raises(ValueError):
            rng.log_uniform(10, 5)

    def test_uunifast_sums_to_target(self):
        rng = RandomSource(3)
        for total in (0.3, 0.7, 1.5):
            utilizations = rng.uunifast(8, total)
            assert len(utilizations) == 8
            assert sum(utilizations) == pytest.approx(total)
            assert all(u >= 0 for u in utilizations)

    def test_uunifast_single_task(self):
        rng = RandomSource(3)
        assert rng.uunifast(1, 0.5) == [0.5]

    def test_uunifast_invalid(self):
        rng = RandomSource(3)
        with pytest.raises(ValueError):
            rng.uunifast(0, 0.5)
        with pytest.raises(ValueError):
            rng.uunifast(3, -0.1)

    def test_choice_weighted(self):
        rng = RandomSource(5)
        picks = {rng.choice_weighted("ab", [1, 0]) for _ in range(20)}
        assert picks == {"a"}


class TestSeedDerivation:
    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_derive_seed_varies_by_name(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_derive_seed_positive_63_bit(self):
        for name in ("a", "b", "c"):
            seed = derive_seed(999, name)
            assert 0 <= seed < 2**63

    def test_spawn_streams(self):
        streams = spawn_streams(42, ["noc", "tasks"], prefix="exp")
        assert set(streams) == {"noc", "tasks"}
        again = spawn_streams(42, ["noc"], prefix="exp")
        assert streams["noc"].random() == again["noc"].random()

    def test_spawn_streams_prefix_matters(self):
        a = spawn_streams(42, ["s"], prefix="p1")["s"]
        b = spawn_streams(42, ["s"], prefix="p2")["s"]
        assert a.seed_value != b.seed_value
