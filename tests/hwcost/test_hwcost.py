"""Unit tests for the FPGA cost models (Table I, Fig. 8)."""

import pytest

from repro.hwcost.blocks import HYPERVISOR_BLOCKS, hypervisor_cost
from repro.hwcost.fmax import hypervisor_fmax_mhz, legacy_fmax_mhz
from repro.hwcost.models import (
    REFERENCE_DESIGNS,
    reference_design,
    relative_to,
    table1_rows,
)
from repro.hwcost.power import estimate_power_mw
from repro.hwcost.resources import ResourceUsage
from repro.hwcost.scaling import (
    ioguard_system_cost,
    legacy_system_cost,
    scaling_sweep,
)


class TestResourceUsage:
    def test_addition_and_scaling(self):
        a = ResourceUsage(luts=10, registers=20, dsp=1, ram_kb=2, power_mw=5)
        b = ResourceUsage(luts=1, registers=2)
        total = a + b
        assert (total.luts, total.registers) == (11, 22)
        tripled = b.scaled(3)
        assert (tripled.luts, tripled.registers) == (3, 6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceUsage(luts=-1, registers=0)

    def test_cells(self):
        assert ResourceUsage(luts=3, registers=4).cells == 7


class TestHypervisorCost:
    def test_paper_configuration_matches_table1(self):
        """16 VMs / 2 I/Os must reproduce the 'Proposed' row within 1%."""
        cost = hypervisor_cost(16, 2)
        assert cost.luts == pytest.approx(2777, rel=0.01)
        assert cost.registers == pytest.approx(2974, rel=0.01)
        assert cost.dsp == 0
        assert cost.ram_kb == 256
        assert cost.power_mw == pytest.approx(279, rel=0.01)

    def test_scales_with_vms(self):
        small = hypervisor_cost(4, 2)
        large = hypervisor_cost(32, 2)
        assert large.luts > small.luts
        assert large.registers > small.registers

    def test_scales_with_ios(self):
        one = hypervisor_cost(16, 1)
        two = hypervisor_cost(16, 2)
        assert two.luts == 2 * one.luts
        assert two.ram_kb == 2 * one.ram_kb

    def test_no_dsp_anywhere(self):
        assert all(block.dsp == 0 for block in HYPERVISOR_BLOCKS.values())

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            hypervisor_cost(0, 2)
        with pytest.raises(ValueError):
            hypervisor_cost(16, 0)


class TestReferenceDesigns:
    def test_table1_anchor_values(self):
        mb = reference_design("microblaze")
        assert (mb.luts, mb.registers, mb.dsp) == (4908, 4385, 6)
        rv = reference_design("riscv")
        assert (rv.luts, rv.registers) == (7432, 16321)
        assert reference_design("blueio").power_mw == 297

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            reference_design("cortex")

    def test_table1_rows_complete(self):
        rows = dict(table1_rows())
        assert set(rows) == {
            "microblaze", "riscv", "spi", "ethernet", "blueio", "proposed"
        }

    def test_paper_headline_ratios(self):
        """Obs 2: 56.6% LUTs, 67.8% registers, 77.7% power vs MicroBlaze;
        37.4% / 18.2% / 47.9% vs RISC-V."""
        proposed = dict(table1_rows())["proposed"]
        vs_mb = relative_to("microblaze", proposed)
        assert vs_mb["luts"] == pytest.approx(0.566, abs=0.01)
        assert vs_mb["registers"] == pytest.approx(0.678, abs=0.01)
        assert vs_mb["power"] == pytest.approx(0.777, abs=0.01)
        vs_rv = relative_to("riscv", proposed)
        assert vs_rv["luts"] == pytest.approx(0.374, abs=0.01)
        assert vs_rv["registers"] == pytest.approx(0.182, abs=0.01)
        assert vs_rv["power"] == pytest.approx(0.479, abs=0.01)

    def test_proposed_cheaper_than_blueio(self):
        """Obs 2: same memory, fewer LUTs/registers than BS|BV."""
        rows = dict(table1_rows())
        proposed, blueio = rows["proposed"], rows["blueio"]
        assert proposed.luts < blueio.luts
        assert proposed.registers < blueio.registers
        assert proposed.ram_kb == blueio.ram_kb
        assert proposed.power_mw < blueio.power_mw

    def test_proposed_bigger_than_bare_controllers(self):
        rows = dict(table1_rows())
        assert rows["proposed"].luts > rows["ethernet"].luts > rows["spi"].luts


class TestPowerModel:
    def test_affine_in_area(self):
        base = estimate_power_mw(0, 0, 0)
        assert estimate_power_mw(1000, 0, 0) > base
        assert estimate_power_mw(0, 1000, 0) > base
        assert estimate_power_mw(0, 0, 100) > base

    def test_blueio_anchor_within_5_percent(self):
        blueio = reference_design("blueio")
        estimate = estimate_power_mw(blueio.luts, blueio.registers, blueio.ram_kb)
        assert estimate == pytest.approx(297, rel=0.05)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            estimate_power_mw(-1, 0, 0)


class TestFmax:
    def test_hypervisor_above_legacy_everywhere(self):
        """Obs 6: hypervisor never the critical path."""
        for eta in range(0, 7):
            vms = 2**eta
            assert hypervisor_fmax_mhz(vms) > legacy_fmax_mhz(vms)

    def test_degrades_with_scale(self):
        assert hypervisor_fmax_mhz(32) < hypervisor_fmax_mhz(2)
        assert legacy_fmax_mhz(32) < legacy_fmax_mhz(2)

    def test_above_platform_clock(self):
        # Both systems must close timing at the 100 MHz platform clock
        # up to the evaluated eta=5.
        assert legacy_fmax_mhz(32) >= 95
        assert hypervisor_fmax_mhz(32) >= 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            hypervisor_fmax_mhz(0)
        with pytest.raises(ValueError):
            legacy_fmax_mhz(0)


class TestScaling:
    def test_sweep_shape(self):
        points = scaling_sweep(range(0, 6))
        assert [p.vm_count for p in points] == [1, 2, 4, 8, 16, 32]

    def test_obs5_overhead_bounded_20_percent(self):
        for point in scaling_sweep():
            assert 0 < point.area_overhead < 0.20

    def test_obs5_monotone_growth(self):
        points = scaling_sweep()
        legacy_areas = [p.legacy_area for p in points]
        ioguard_areas = [p.ioguard_area for p in points]
        assert all(b >= a for a, b in zip(legacy_areas, legacy_areas[1:]))
        assert all(b >= a for a, b in zip(ioguard_areas, ioguard_areas[1:]))

    def test_power_tracks_area(self):
        for point in scaling_sweep():
            assert point.ioguard.power_mw > point.legacy.power_mw

    def test_ioguard_always_larger(self):
        for vms in (1, 2, 4, 8, 16, 32):
            assert ioguard_system_cost(vms).luts > legacy_system_cost(vms).luts

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            scaling_sweep(range(-1, 3))
