"""Unit tests for the per-block hypervisor cost breakdown."""

import pytest

from repro.hwcost.blocks import block_breakdown, hypervisor_cost


class TestBlockBreakdown:
    def test_breakdown_sums_to_total(self):
        for vm_count, io_count in ((4, 1), (16, 2), (32, 2)):
            breakdown = block_breakdown(vm_count, io_count)
            total = hypervisor_cost(vm_count, io_count)
            assert sum(b.luts for b in breakdown.values()) == total.luts
            assert (
                sum(b.registers for b in breakdown.values()) == total.registers
            )
            assert sum(b.ram_kb for b in breakdown.values()) == total.ram_kb

    def test_pools_dominate_at_scale(self):
        """At large VM counts the per-VM structures are the cost."""
        breakdown = block_breakdown(64, 2)
        pools_and_gsched = (
            breakdown["iopools"].luts + breakdown["gsched"].luts
        )
        fixed = breakdown["pchannel"].luts + breakdown["driver"].luts
        assert pools_and_gsched > 2 * fixed

    def test_fixed_blocks_dominate_when_small(self):
        breakdown = block_breakdown(1, 1)
        assert breakdown["driver"].luts > breakdown["iopools"].luts

    def test_memory_is_pure_ram(self):
        breakdown = block_breakdown(16, 2)
        assert breakdown["memory"].luts == 0
        assert breakdown["memory"].ram_kb == 256

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            block_breakdown(0, 2)
        with pytest.raises(ValueError):
            block_breakdown(4, 0)
