"""Unit tests for I/O controllers."""

import pytest

from repro.hw.controller import (
    CANController,
    EthernetController,
    FlexRayController,
    GPIOController,
    I2CController,
    IOController,
    SPIController,
    UARTController,
    controller_by_name,
)

ALL_TYPES = [
    SPIController,
    I2CController,
    UARTController,
    EthernetController,
    FlexRayController,
    CANController,
    GPIOController,
]


class TestTimingModel:
    @pytest.mark.parametrize("controller_type", ALL_TYPES)
    def test_transfer_cycles_positive_and_monotone(self, controller_type):
        controller = controller_type()
        a = controller.transfer_cycles(8)
        b = controller.transfer_cycles(64)
        assert 0 < a <= b

    def test_ethernet_fast_spi_slow(self):
        payload = 256
        eth = EthernetController().transfer_cycles(payload)
        spi = SPIController().transfer_cycles(payload)
        i2c = I2CController().transfer_cycles(payload)
        assert eth < spi < i2c

    def test_serialisation_math(self):
        # 1 Gbps at 100 MHz: 10 bits per cycle; 100 payload + 38 framing
        # bytes = 1104 bits -> 111 cycles (ceil) + 80 overhead.
        eth = EthernetController()
        assert eth.transfer_cycles(100) == 80 + 111

    def test_flexray_rate_matches_paper(self):
        # The paper's result path: FlexRay at 10 Mbps.
        assert FlexRayController.bitrate_bps == 10_000_000

    def test_ethernet_rate_matches_paper(self):
        assert EthernetController.bitrate_bps == 1_000_000_000

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            SPIController().transfer_cycles(-1)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            SPIController(frequency_hz=0)


class TestAccounting:
    def test_record_transfer_accumulates(self):
        controller = SPIController("spi0")
        c1 = controller.record_transfer(16)
        c2 = controller.record_transfer(32)
        assert controller.transfers == 2
        assert controller.bytes_moved == 48
        assert controller.busy_cycles == c1 + c2

    def test_throughput(self):
        controller = EthernetController()
        controller.record_transfer(1000)
        bps = controller.throughput_bps(elapsed_cycles=100_000_000)  # 1 s
        assert bps == pytest.approx(8000)

    def test_throughput_zero_window(self):
        assert SPIController().throughput_bps(0) == 0.0


class TestRegistry:
    def test_lookup_all_protocols(self):
        for protocol in ("spi", "i2c", "uart", "ethernet", "flexray", "can", "gpio"):
            controller = controller_by_name(protocol, name=f"{protocol}0")
            assert controller.protocol == protocol
            assert controller.name == f"{protocol}0"

    def test_unknown_protocol(self):
        with pytest.raises(KeyError, match="supported"):
            controller_by_name("usb4")

    def test_default_name_is_protocol(self):
        assert SPIController().name == "spi"
