"""Unit tests for devices and memory banks."""

import pytest

from repro.hw.devices import ActuatorDevice, EchoDevice, IODevice, SensorDevice
from repro.hw.memory import MemoryBank, MemoryBankFullError
from repro.sim.rng import RandomSource


class TestDevices:
    def test_deterministic_service(self):
        device = IODevice("d", service_cycles=100)
        assert device.serve(16) == 100
        assert device.requests_served == 1

    def test_jitter_bounded(self):
        device = IODevice(
            "d", service_cycles=100, jitter_cycles=20, rng=RandomSource(1)
        )
        for _ in range(50):
            cycles = device.serve(16)
            assert 100 <= cycles <= 120
        assert device.wcrt_cycles() == 120

    def test_echo_response(self):
        assert EchoDevice("e").response_bytes(48) == 48

    def test_sensor_fixed_reading(self):
        sensor = SensorDevice("imu", reading_bytes=12)
        assert sensor.response_bytes(4) == 12
        assert sensor.response_bytes(4000) == 12

    def test_actuator_ack(self):
        assert ActuatorDevice("act").response_bytes(128) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IODevice("d", service_cycles=-1)
        with pytest.raises(ValueError):
            SensorDevice("s", reading_bytes=0)
        with pytest.raises(ValueError):
            IODevice("d").serve(-1)


class TestMemoryBank:
    def test_load_and_accounting(self):
        bank = MemoryBank("b", capacity_bytes=1000)
        bank.load("seg1", 300)
        bank.load("seg2", 200)
        assert bank.used_bytes == 500
        assert bank.free_bytes == 500
        assert bank.utilization == pytest.approx(0.5)
        assert bank.segments() == ["seg1", "seg2"]
        assert "seg1" in bank

    def test_overflow_rejected(self):
        bank = MemoryBank("b", capacity_bytes=100)
        bank.load("a", 80)
        with pytest.raises(MemoryBankFullError):
            bank.load("b", 30)

    def test_duplicate_segment_rejected(self):
        bank = MemoryBank("b")
        bank.load("x", 10)
        with pytest.raises(ValueError, match="already"):
            bank.load("x", 10)

    def test_unload(self):
        bank = MemoryBank("b", capacity_bytes=100)
        bank.load("x", 60)
        assert bank.unload("x") == 60
        bank.load("y", 100)  # space reclaimed
        with pytest.raises(KeyError):
            bank.unload("x")

    def test_size_of(self):
        bank = MemoryBank("b")
        bank.load("x", 42)
        assert bank.size_of("x") == 42

    def test_invalid(self):
        with pytest.raises(ValueError):
            MemoryBank("b", capacity_bytes=0)
        with pytest.raises(ValueError):
            MemoryBank("b").load("x", -1)

    def test_paper_bank_size_default(self):
        # Table I: 256 KB RAM for the hypervisor memory.
        assert MemoryBank("b").capacity_bytes == 256 * 1024
