"""Unit tests for processors and VM contexts."""

import pytest

from repro.hw.processor import Processor, VMContext
from repro.sim.clock import GlobalTimer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def vm_with_task(vm_id=0, period=10, wcet=2, jitter=0, kind=TaskKind.RUNTIME):
    task = IOTask(
        name=f"vm{vm_id}.t", period=period, wcet=wcet, vm_id=vm_id,
        jitter=jitter, kind=kind,
    )
    return VMContext(vm_id, TaskSet([task]))


class TestVMContext:
    def test_task_vm_mismatch_rejected(self):
        task = IOTask(name="t", period=10, wcet=1, vm_id=3)
        with pytest.raises(ValueError):
            VMContext(0, TaskSet([task]))

    def test_runtime_tasks_filter(self):
        runtime = IOTask(name="r", period=10, wcet=1, vm_id=0)
        pre = IOTask(
            name="p", period=10, wcet=1, vm_id=0, kind=TaskKind.PREDEFINED
        )
        vm = VMContext(0, TaskSet([runtime, pre]))
        assert [t.name for t in vm.runtime_tasks()] == ["r"]


class TestProcessor:
    def test_vm_cap_three(self):
        processor = Processor(0)
        for vm_id in range(3):
            processor.add_vm(vm_with_task(vm_id))
        with pytest.raises(ValueError, match="3 VMs"):
            processor.add_vm(vm_with_task(3))

    def test_release_process_generates_periodic_jobs(self):
        sim = Simulator()
        timer = GlobalTimer(sim, cycles_per_slot=100)
        vm = vm_with_task(period=10)
        processor = Processor(0, vms=[vm])
        released = []
        processor.start_release_processes(
            sim, timer, lambda job: released.append(job) or True,
            RandomSource(1), horizon_slots=50,
        )
        sim.run()
        assert len(released) == 5  # releases at 0, 10, 20, 30, 40
        assert vm.jobs_released == 5
        assert vm.jobs_rejected == 0
        releases = [job.release for job in released]
        assert releases == [0, 10, 20, 30, 40]

    def test_rejected_submissions_counted(self):
        sim = Simulator()
        timer = GlobalTimer(sim, cycles_per_slot=100)
        vm = vm_with_task(period=10)
        processor = Processor(0, vms=[vm])
        processor.start_release_processes(
            sim, timer, lambda job: False, RandomSource(1), horizon_slots=30
        )
        sim.run()
        assert vm.jobs_rejected == 3

    def test_jitter_delays_but_preserves_separation(self):
        sim = Simulator()
        timer = GlobalTimer(sim, cycles_per_slot=100)
        vm = vm_with_task(period=20, jitter=5)
        processor = Processor(0, vms=[vm])
        released = []
        processor.start_release_processes(
            sim, timer, lambda job: released.append(job) or True,
            RandomSource(7), horizon_slots=200,
        )
        sim.run()
        for index, job in enumerate(released):
            nominal = index * 20
            assert nominal <= job.release <= nominal + 5

    def test_predefined_tasks_not_released(self):
        sim = Simulator()
        timer = GlobalTimer(sim, cycles_per_slot=100)
        vm = vm_with_task(kind=TaskKind.PREDEFINED)
        processor = Processor(0, vms=[vm])
        processes = processor.start_release_processes(
            sim, timer, lambda job: True, RandomSource(1), horizon_slots=100
        )
        assert processes == []
