"""Unit tests for the automotive case-study catalog."""

import pytest

from repro.tasks.automotive import (
    AUTOMOTIVE_FUNCTION_TASKS,
    AUTOMOTIVE_SAFETY_TASKS,
    CASE_STUDY_HYPERPERIOD,
    build_case_study_taskset,
    catalog_utilization,
    snap_period,
)
from repro.tasks.task import Criticality, TaskKind


class TestCatalog:
    def test_twenty_plus_twenty(self):
        assert len(AUTOMOTIVE_SAFETY_TASKS) == 20
        assert len(AUTOMOTIVE_FUNCTION_TASKS) == 20

    def test_catalog_utilization_near_forty_percent(self):
        # Paper: "overall system utilization approximately 40%".
        assert 0.36 <= catalog_utilization() <= 0.44

    def test_criticalities(self):
        assert all(
            spec.criticality == Criticality.SAFETY
            for spec in AUTOMOTIVE_SAFETY_TASKS
        )
        assert all(
            spec.criticality == Criticality.FUNCTION
            for spec in AUTOMOTIVE_FUNCTION_TASKS
        )

    def test_names_unique(self):
        names = [
            spec.name
            for spec in AUTOMOTIVE_SAFETY_TASKS + AUTOMOTIVE_FUNCTION_TASKS
        ]
        assert len(names) == len(set(names))

    def test_wcets_short_relative_to_min_deadline(self):
        """Max WCET stays well below the tightest deadline (DESIGN.md)."""
        tasks = [
            spec.to_task()
            for spec in AUTOMOTIVE_SAFETY_TASKS + AUTOMOTIVE_FUNCTION_TASKS
        ]
        max_wcet = max(task.wcet for task in tasks)
        min_deadline = min(task.deadline for task in tasks)
        assert max_wcet * 5 <= min_deadline


class TestSnapPeriod:
    def test_snaps_to_divisor(self):
        for period in (97, 100, 333, 1999, 49_000):
            snapped = snap_period(period)
            assert CASE_STUDY_HYPERPERIOD % snapped == 0

    def test_exact_divisor_unchanged(self):
        assert snap_period(100) == 100
        assert snap_period(2_500) == 2_500

    def test_small_relative_error(self):
        # The 2^a * 5^b divisor grid's widest relative gap sits between
        # 1250 and 2000: worst-case snap error is 23 %.
        for period in range(100, 5_000, 137):
            snapped = snap_period(period)
            assert abs(snapped - period) / period < 0.24

    def test_invalid(self):
        with pytest.raises(ValueError):
            snap_period(0)
        with pytest.raises(ValueError):
            snap_period(100, hyperperiod=0)


class TestBuildTaskset:
    def test_default_build(self):
        ts = build_case_study_taskset(vm_count=4)
        assert len(ts) == 40
        assert ts.vm_ids() == [0, 1, 2, 3]
        assert all(task.kind == TaskKind.RUNTIME for task in ts)

    def test_hyperperiod_bounded(self):
        ts = build_case_study_taskset(vm_count=4)
        assert CASE_STUDY_HYPERPERIOD % ts.hyperperiod == 0

    def test_vm_count_spread(self):
        ts = build_case_study_taskset(vm_count=8)
        per_vm = ts.by_vm()
        assert len(per_vm) == 8
        assert all(len(tasks) == 5 for tasks in per_vm.values())

    def test_invalid_vm_count(self):
        with pytest.raises(ValueError):
            build_case_study_taskset(vm_count=0)

    def test_spec_subset(self):
        ts = build_case_study_taskset(specs=AUTOMOTIVE_SAFETY_TASKS[:5])
        assert len(ts) == 5

    def test_unsnapped_build(self):
        ts = build_case_study_taskset(snap=False)
        assert len(ts) == 40


class TestSpec:
    def test_to_task_units(self):
        spec = AUTOMOTIVE_SAFETY_TASKS[0]
        task = spec.to_task(slot_us=10.0)
        assert task.period == snap_period(int(spec.period_ms * 100))
        assert task.wcet >= 1

    def test_utilization_property(self):
        spec = AUTOMOTIVE_SAFETY_TASKS[0]
        assert spec.utilization == pytest.approx(
            spec.wcet_us / (spec.period_ms * 1000)
        )
