"""Property tests for the random task-set generator.

Three contracts the schedulability sweeps lean on: UUniFast splits the
requested utilization exactly (the realized task set only deviates by
integer-slot rounding), a fixed seed replays bit-identically, and
periods stay inside the configured log-uniform range.
"""

import math

import pytest

from repro.analysis.hyperperiod import lcm_all
from repro.sim.rng import RandomSource
from repro.tasks.generators import (
    HyperperiodBasis,
    TaskSetGenerator,
    generate_factorized_taskset,
    generate_random_taskset,
    target_wcet,
)


def _fingerprint(taskset):
    return [
        (
            task.name,
            task.period,
            task.wcet,
            task.deadline,
            task.vm_id,
            task.kind,
            task.device,
            task.payload_bytes,
        )
        for task in taskset
    ]


class TestUUniFastSums:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("n,total", [(1, 0.5), (3, 0.7), (8, 2.5)])
    def test_utilizations_sum_exactly_to_target(self, seed, n, total):
        rng = RandomSource(seed, "uunifast-prop")
        utilizations = rng.uunifast(n, total)
        assert len(utilizations) == n
        assert all(u >= 0 for u in utilizations)
        assert sum(utilizations) == pytest.approx(total, abs=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_taskset_utilization_within_rounding(self, seed):
        target = 0.8
        taskset = generate_random_taskset(
            seed, task_count=6, total_utilization=target,
            period_min=10, period_max=200,
        )
        # C = floor(u*T) clamped to [1, T] puts each task within 1/T of
        # its drawn utilization; aggregate deviation is bounded by the sum.
        slack = sum(1 / task.period for task in taskset)
        assert abs(taskset.utilization - target) <= slack

    def test_infeasible_target_rejected(self):
        with pytest.raises(ValueError, match="cannot pack"):
            generate_random_taskset(1, task_count=2, total_utilization=2.5)


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 2021, 999_983])
    def test_bit_identical_across_runs(self, seed):
        kwargs = dict(
            task_count=8, total_utilization=1.2, vm_count=3,
            period_min=20, period_max=500,
        )
        assert _fingerprint(
            generate_random_taskset(seed, **kwargs)
        ) == _fingerprint(generate_random_taskset(seed, **kwargs))

    def test_seed_changes_output(self):
        kwargs = dict(task_count=8, total_utilization=1.2)
        assert _fingerprint(
            generate_random_taskset(1, **kwargs)
        ) != _fingerprint(generate_random_taskset(2, **kwargs))

    def test_generator_object_replays_from_fresh_rng(self):
        generator = TaskSetGenerator(period_min=10, period_max=100)
        one = generator.generate(RandomSource(5, "a"), 5, 0.9)
        two = generator.generate(RandomSource(5, "a"), 5, 0.9)
        assert _fingerprint(one) == _fingerprint(two)


class TestPeriodRange:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize(
        "period_min,period_max", [(5, 50), (20, 2_000), (2, 10), (100, 101)]
    )
    def test_periods_respect_configured_range(
        self, seed, period_min, period_max
    ):
        taskset = generate_random_taskset(
            seed, task_count=10, total_utilization=0.5,
            period_min=period_min, period_max=period_max,
        )
        low = max(2, period_min)
        for task in taskset:
            assert low <= task.period <= period_max
            assert 1 <= task.wcet <= task.deadline <= task.period


class TestWcetQuantization:
    """The single quantization rule: ``C = floor(U * T)`` clamped.

    Flooring (rather than ``round``) guarantees a realized task never
    exceeds its requested utilization except through the ``minimum``
    clamp -- sweeps position cells just below the schedulability
    boundary, and round-up bias silently pushed them over it.
    """

    def test_round_half_up_regression(self):
        # round(0.7 * 5) banker's-rounds to 4 (U = 0.8 > 0.7 requested);
        # floor gives 3 (U = 0.6 <= 0.7).
        assert target_wcet(0.7, 5) == 3

    def test_clamps(self):
        assert target_wcet(0.9, 1) == 1  # floor would give 0
        assert target_wcet(2.0, 5) == 5  # capped at the period
        assert target_wcet(0.01, 10, minimum=2) == 2

    @pytest.mark.parametrize("seed", range(20))
    def test_realized_never_overshoots_beyond_clamp(self, seed):
        target = 0.75
        taskset = generate_random_taskset(
            seed, task_count=8, total_utilization=target,
            period_min=10, period_max=400,
        )
        # floor keeps each unclamped task at or below its share; only
        # min-WCET-clamped tasks (wcet == 1 exceeding floor(u*T)) can
        # push the aggregate above the request, by at most 1/T each.
        clamp_allowance = sum(
            1 / task.period for task in taskset if task.wcet == 1
        )
        assert taskset.utilization <= target + clamp_allowance + 1e-12


class TestHyperperiodBasis:
    def test_candidates_divide_the_hyperperiod(self):
        basis = HyperperiodBasis(factors=(2, 2, 3, 5), period_min=2)
        hyperperiod = basis.hyperperiod()
        assert hyperperiod == 60
        for period in basis.candidate_periods():
            assert hyperperiod % period == 0

    def test_sampled_periods_stay_in_range(self):
        basis = HyperperiodBasis(
            factors=(2, 2, 2, 3, 3, 5), period_min=6, period_max=90
        )
        rng = RandomSource(11, "basis-prop")
        for _draw in range(200):
            period = basis.sample_period(rng)
            assert 6 <= period <= 90
            assert basis.hyperperiod() % period == 0

    def test_sampling_is_deterministic(self):
        basis = HyperperiodBasis()
        first = [basis.sample_period(RandomSource(3, "det")) for _ in range(5)]
        second = [basis.sample_period(RandomSource(3, "det")) for _ in range(5)]
        assert first == second

    def test_invalid_bases_rejected(self):
        with pytest.raises(ValueError):
            HyperperiodBasis(factors=())
        with pytest.raises(ValueError):
            HyperperiodBasis(factors=(1, 2))
        with pytest.raises(ValueError):
            HyperperiodBasis(factors=(2, 3), period_min=7)  # no candidate

    @pytest.mark.parametrize("seed", range(10))
    def test_factorized_taskset_lcms_stay_bounded(self, seed):
        basis = HyperperiodBasis(factors=(2, 2, 2, 3, 3, 5), period_min=4)
        taskset = generate_factorized_taskset(
            seed, task_count=8, total_utilization=0.6, basis=basis
        )
        periods = [task.period for task in taskset]
        # The LCM of ANY subset of sampled periods divides the basis
        # hyper-period -- the whole point of the factorized draw.
        assert basis.hyperperiod() % lcm_all(periods) == 0
        assert math.lcm(*periods) == lcm_all(periods)
