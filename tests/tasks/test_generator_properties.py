"""Property tests for the random task-set generator.

Three contracts the schedulability sweeps lean on: UUniFast splits the
requested utilization exactly (the realized task set only deviates by
integer-slot rounding), a fixed seed replays bit-identically, and
periods stay inside the configured log-uniform range.
"""

import pytest

from repro.sim.rng import RandomSource
from repro.tasks.generators import TaskSetGenerator, generate_random_taskset


def _fingerprint(taskset):
    return [
        (
            task.name,
            task.period,
            task.wcet,
            task.deadline,
            task.vm_id,
            task.kind,
            task.device,
            task.payload_bytes,
        )
        for task in taskset
    ]


class TestUUniFastSums:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("n,total", [(1, 0.5), (3, 0.7), (8, 2.5)])
    def test_utilizations_sum_exactly_to_target(self, seed, n, total):
        rng = RandomSource(seed, "uunifast-prop")
        utilizations = rng.uunifast(n, total)
        assert len(utilizations) == n
        assert all(u >= 0 for u in utilizations)
        assert sum(utilizations) == pytest.approx(total, abs=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_taskset_utilization_within_rounding(self, seed):
        target = 0.8
        taskset = generate_random_taskset(
            seed, task_count=6, total_utilization=target,
            period_min=10, period_max=200,
        )
        # C = max(1, round(u*T)) puts each task within 1/T of its drawn
        # utilization; the aggregate deviation is bounded by the sum.
        slack = sum(1 / task.period for task in taskset)
        assert abs(taskset.utilization - target) <= slack

    def test_infeasible_target_rejected(self):
        with pytest.raises(ValueError, match="cannot pack"):
            generate_random_taskset(1, task_count=2, total_utilization=2.5)


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 2021, 999_983])
    def test_bit_identical_across_runs(self, seed):
        kwargs = dict(
            task_count=8, total_utilization=1.2, vm_count=3,
            period_min=20, period_max=500,
        )
        assert _fingerprint(
            generate_random_taskset(seed, **kwargs)
        ) == _fingerprint(generate_random_taskset(seed, **kwargs))

    def test_seed_changes_output(self):
        kwargs = dict(task_count=8, total_utilization=1.2)
        assert _fingerprint(
            generate_random_taskset(1, **kwargs)
        ) != _fingerprint(generate_random_taskset(2, **kwargs))

    def test_generator_object_replays_from_fresh_rng(self):
        generator = TaskSetGenerator(period_min=10, period_max=100)
        one = generator.generate(RandomSource(5, "a"), 5, 0.9)
        two = generator.generate(RandomSource(5, "a"), 5, 0.9)
        assert _fingerprint(one) == _fingerprint(two)


class TestPeriodRange:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize(
        "period_min,period_max", [(5, 50), (20, 2_000), (2, 10), (100, 101)]
    )
    def test_periods_respect_configured_range(
        self, seed, period_min, period_max
    ):
        taskset = generate_random_taskset(
            seed, task_count=10, total_utilization=0.5,
            period_min=period_min, period_max=period_max,
        )
        low = max(2, period_min)
        for task in taskset:
            assert low <= task.period <= period_max
            assert 1 <= task.wcet <= task.deadline <= task.period
