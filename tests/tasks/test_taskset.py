"""Unit tests for TaskSet."""

import pytest

from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet, merge


def make_set():
    return TaskSet(
        [
            IOTask(name="a", period=10, wcet=2, vm_id=0),
            IOTask(name="b", period=20, wcet=4, vm_id=1),
            IOTask(name="c", period=40, wcet=4, vm_id=0,
                   kind=TaskKind.PREDEFINED),
        ],
        name="s",
    )


class TestContainer:
    def test_len_iter_contains_getitem(self):
        ts = make_set()
        assert len(ts) == 3
        assert {t.name for t in ts} == {"a", "b", "c"}
        assert "a" in ts and "z" not in ts
        assert ts["b"].period == 20

    def test_duplicate_name_rejected(self):
        ts = make_set()
        with pytest.raises(ValueError, match="duplicate"):
            ts.add(IOTask(name="a", period=5, wcet=1))

    def test_remove(self):
        ts = make_set()
        removed = ts.remove("b")
        assert removed.name == "b"
        assert len(ts) == 2
        with pytest.raises(KeyError):
            ts.remove("b")

    def test_extend(self):
        ts = TaskSet(name="x")
        ts.extend([IOTask(name=f"t{i}", period=10, wcet=1) for i in range(3)])
        assert len(ts) == 3


class TestDerived:
    def test_utilization(self):
        ts = make_set()
        assert ts.utilization == pytest.approx(0.2 + 0.2 + 0.1)

    def test_hyperperiod(self):
        assert make_set().hyperperiod == 40
        assert TaskSet().hyperperiod == 1

    def test_max_laxity_gap(self):
        ts = TaskSet([
            IOTask(name="x", period=10, wcet=1, deadline=6),
            IOTask(name="y", period=20, wcet=1, deadline=20),
        ])
        assert ts.max_laxity_gap == 4
        assert TaskSet().max_laxity_gap == 0

    def test_summary(self):
        summary = make_set().summary()
        assert summary["tasks"] == 3
        assert summary["predefined"] == 1
        assert summary["runtime"] == 2
        assert summary["vms"] == 2


class TestPartitions:
    def test_by_vm(self):
        partitions = make_set().by_vm()
        assert set(partitions) == {0, 1}
        assert {t.name for t in partitions[0]} == {"a", "c"}

    def test_for_vm_and_vm_ids(self):
        ts = make_set()
        assert ts.vm_ids() == [0, 1]
        assert {t.name for t in ts.for_vm(1)} == {"b"}

    def test_kind_partitions(self):
        ts = make_set()
        assert {t.name for t in ts.predefined()} == {"c"}
        assert {t.name for t in ts.runtime()} == {"a", "b"}

    def test_criticality_partition(self):
        ts = TaskSet([
            IOTask(name="s", period=10, wcet=1, criticality=Criticality.SAFETY),
            IOTask(name="f", period=10, wcet=1, criticality=Criticality.FUNCTION),
        ])
        assert {t.name for t in ts.of_criticality(Criticality.SAFETY)} == {"s"}

    def test_devices(self):
        ts = TaskSet([
            IOTask(name="x", period=10, wcet=1, device="eth0"),
            IOTask(name="y", period=10, wcet=1, device="spi0"),
        ])
        assert ts.devices() == ["eth0", "spi0"]


class TestTransforms:
    def test_split_predefined_fraction(self):
        ts = TaskSet([
            IOTask(name=f"t{i}", period=100, wcet=10 - i) for i in range(10)
        ])
        split = ts.split_predefined(0.4)
        assert len(split.predefined()) == 4
        assert len(split.runtime()) == 6
        # Heaviest-utilization tasks go first.
        predefined_names = {t.name for t in split.predefined()}
        assert predefined_names == {"t0", "t1", "t2", "t3"}

    def test_split_predefined_extremes(self):
        ts = make_set()
        assert len(ts.split_predefined(0.0).predefined()) == 0
        assert len(ts.split_predefined(1.0).runtime()) == 0

    def test_split_predefined_invalid(self):
        with pytest.raises(ValueError):
            make_set().split_predefined(1.5)

    def test_split_does_not_mutate_original(self):
        ts = make_set()
        ts.split_predefined(1.0)
        assert len(ts.runtime()) == 2

    def test_assign_round_robin(self):
        ts = TaskSet([IOTask(name=f"t{i}", period=10, wcet=1) for i in range(6)])
        assigned = ts.assign_round_robin(3)
        by_vm = assigned.by_vm()
        assert set(by_vm) == {0, 1, 2}
        assert all(len(tasks) == 2 for tasks in by_vm.values())

    def test_assign_round_robin_invalid(self):
        with pytest.raises(ValueError):
            make_set().assign_round_robin(0)

    def test_scaled_wcet(self):
        ts = make_set()
        scaled = ts.scaled_wcet(2.0)
        assert scaled["a"].wcet == 4
        # WCET capped at the deadline.
        capped = ts.scaled_wcet(100.0)
        for task in capped:
            assert task.wcet <= task.deadline

    def test_scaled_wcet_invalid(self):
        with pytest.raises(ValueError):
            make_set().scaled_wcet(0)

    def test_merge(self):
        a = TaskSet([IOTask(name="x", period=10, wcet=1)], name="a")
        b = TaskSet([IOTask(name="y", period=10, wcet=1)], name="b")
        merged = merge([a, b])
        assert len(merged) == 2

    def test_merge_name_clash_rejected(self):
        a = TaskSet([IOTask(name="x", period=10, wcet=1)], name="a")
        b = TaskSet([IOTask(name="x", period=10, wcet=1)], name="b")
        with pytest.raises(ValueError):
            merge([a, b])
