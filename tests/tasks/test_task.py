"""Unit tests for IOTask and Job."""

import pytest

from repro.tasks.task import Criticality, IOTask, Job, TaskKind


class TestIOTaskValidation:
    def test_basic_construction(self):
        task = IOTask(name="t", period=10, wcet=3)
        assert task.deadline == 10  # implicit deadline defaults to period
        assert task.utilization == pytest.approx(0.3)
        assert task.density == pytest.approx(0.3)

    def test_constrained_deadline_allowed(self):
        task = IOTask(name="t", period=10, wcet=3, deadline=5)
        assert task.density == pytest.approx(0.6)

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(ValueError, match="constrained"):
            IOTask(name="t", period=10, wcet=3, deadline=11)

    def test_wcet_beyond_deadline_rejected(self):
        with pytest.raises(ValueError, match="never meet"):
            IOTask(name="t", period=10, wcet=6, deadline=5)

    @pytest.mark.parametrize("field,value", [
        ("period", 0), ("period", -3), ("wcet", 0), ("offset", -1), ("jitter", -2),
    ])
    def test_invalid_values_rejected(self, field, value):
        kwargs = dict(name="t", period=10, wcet=2)
        kwargs[field] = value
        with pytest.raises(ValueError):
            IOTask(**kwargs)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError):
            IOTask(name="t", period=10, wcet=1, deadline=0)

    def test_task_ids_unique(self):
        a = IOTask(name="a", period=10, wcet=1)
        b = IOTask(name="b", period=10, wcet=1)
        assert a.task_id != b.task_id

    def test_renamed_copies_fields_fresh_id(self):
        task = IOTask(
            name="orig", period=20, wcet=4, deadline=15, vm_id=2,
            criticality=Criticality.SAFETY, device="eth0", payload_bytes=128,
        )
        copy = task.renamed("copy")
        assert copy.name == "copy"
        assert copy.period == 20 and copy.wcet == 4 and copy.deadline == 15
        assert copy.vm_id == 2 and copy.device == "eth0"
        assert copy.task_id != task.task_id

    def test_with_vm(self):
        task = IOTask(name="t", period=10, wcet=1, vm_id=0)
        moved = task.with_vm(3)
        assert moved.vm_id == 3
        assert task.vm_id == 0  # original untouched


class TestCriticality:
    def test_counts_for_success(self):
        assert Criticality.SAFETY.counts_for_success
        assert Criticality.FUNCTION.counts_for_success
        assert not Criticality.SYNTHETIC.counts_for_success


class TestJob:
    def test_job_fields(self):
        task = IOTask(name="t", period=10, wcet=3, deadline=8)
        job = task.job(release=20, index=2)
        assert job.absolute_deadline == 28
        assert job.remaining == 3
        assert job.name == "t#2"
        assert not job.completed
        assert job.met_deadline() is None
        assert job.response_time is None

    def test_execute_decrements(self):
        job = IOTask(name="t", period=10, wcet=3).job(0, 0)
        job.execute()
        assert job.remaining == 2
        job.execute(5)
        assert job.remaining == 0  # clamped

    def test_execute_negative_rejected(self):
        job = IOTask(name="t", period=10, wcet=3).job(0, 0)
        with pytest.raises(ValueError):
            job.execute(-1)

    def test_deadline_met_and_missed(self):
        task = IOTask(name="t", period=10, wcet=2)
        met = task.job(0, 0)
        met.completed_at = 9.0
        assert met.met_deadline() is True
        assert met.response_time == 9.0
        missed = task.job(0, 1)
        missed.completed_at = 10.5
        assert missed.met_deadline() is False

    def test_deadline_boundary_is_met(self):
        task = IOTask(name="t", period=10, wcet=2)
        job = task.job(0, 0)
        job.completed_at = 10.0
        assert job.met_deadline() is True
