"""Unit tests for task-set JSON serialization."""

import json

import pytest

from repro.tasks import build_case_study_taskset
from repro.tasks.serialization import (
    load_taskset,
    save_taskset,
    task_from_dict,
    task_to_dict,
    taskset_from_json,
    taskset_to_json,
)
from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet


class TestRoundTrip:
    def test_single_task(self):
        task = IOTask(
            name="t", period=100, wcet=5, deadline=80, vm_id=3,
            kind=TaskKind.PREDEFINED, criticality=Criticality.SAFETY,
            device="spi1", payload_bytes=24, offset=7, jitter=2,
        )
        restored = task_from_dict(task_to_dict(task))
        for attr in (
            "name", "period", "wcet", "deadline", "vm_id", "kind",
            "criticality", "device", "payload_bytes", "offset", "jitter",
        ):
            assert getattr(restored, attr) == getattr(task, attr), attr

    def test_taskset_roundtrip(self):
        original = build_case_study_taskset(vm_count=4)
        restored = taskset_from_json(taskset_to_json(original))
        assert restored.name == original.name
        assert len(restored) == len(original)
        assert restored.utilization == pytest.approx(original.utilization)
        for task in original:
            twin = restored[task.name]
            assert (twin.period, twin.wcet, twin.deadline) == (
                task.period, task.wcet, task.deadline
            )

    def test_file_roundtrip(self, tmp_path):
        original = build_case_study_taskset(vm_count=2)
        path = save_taskset(original, tmp_path / "tasks.json")
        restored = load_taskset(path)
        assert len(restored) == len(original)

    def test_json_is_valid_and_stable(self):
        text = taskset_to_json(build_case_study_taskset())
        payload = json.loads(text)
        assert "tasks" in payload
        assert all("name" in item for item in payload["tasks"])


class TestSchemaValidation:
    def test_missing_required_field(self):
        with pytest.raises(ValueError, match="required field 'period'"):
            task_from_dict({"name": "x", "wcet": 1})

    def test_defaults_applied(self):
        task = task_from_dict({"name": "x", "period": 10, "wcet": 2})
        assert task.deadline == 10
        assert task.kind == TaskKind.RUNTIME
        assert task.criticality == Criticality.FUNCTION

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            task_from_dict(
                {"name": "x", "period": 10, "wcet": 2, "kind": "warp"}
            )

    def test_unknown_criticality(self):
        with pytest.raises(ValueError, match="unknown criticality"):
            task_from_dict(
                {"name": "x", "period": 10, "wcet": 2, "criticality": "meh"}
            )

    def test_invalid_payload_structure(self):
        with pytest.raises(ValueError, match="tasks"):
            taskset_from_json("[1, 2, 3]")

    def test_task_constraints_still_enforced(self):
        # Serialization must not bypass the IOTask validation.
        with pytest.raises(ValueError):
            task_from_dict(
                {"name": "x", "period": 10, "wcet": 20}
            )

    def test_null_deadline_means_implicit(self):
        task = task_from_dict(
            {"name": "x", "period": 10, "wcet": 2, "deadline": None}
        )
        assert task.deadline == 10
