"""Unit tests for random task-set generation."""

import pytest

from repro.sim.rng import RandomSource
from repro.tasks.generators import (
    TaskSetGenerator,
    generate_random_taskset,
    harmonic_periods,
    target_wcet,
)


class TestGenerator:
    def test_requested_count_and_utilization(self):
        ts = generate_random_taskset(1, 10, 0.5)
        assert len(ts) == 10
        # Rounding WCETs to integers perturbs utilization slightly.
        assert ts.utilization == pytest.approx(0.5, abs=0.1)

    def test_deterministic_under_seed(self):
        a = generate_random_taskset(7, 5, 0.4, name="x")
        b = generate_random_taskset(7, 5, 0.4, name="x")
        for task_a, task_b in zip(a, b):
            assert (task_a.period, task_a.wcet) == (task_b.period, task_b.wcet)

    def test_different_seeds_differ(self):
        a = generate_random_taskset(1, 5, 0.4, name="x")
        b = generate_random_taskset(2, 5, 0.4, name="x")
        assert any(
            (ta.period, ta.wcet) != (tb.period, tb.wcet)
            for ta, tb in zip(a, b)
        )

    def test_periods_within_range(self):
        generator = TaskSetGenerator(period_min=50, period_max=100)
        ts = generator.generate(RandomSource(3), 20, 0.5)
        for task in ts:
            assert 50 <= task.period <= 101  # rounding tolerance

    def test_implicit_deadlines_default(self):
        ts = generate_random_taskset(5, 8, 0.4)
        assert all(task.deadline == task.period for task in ts)

    def test_constrained_deadlines(self):
        ts = generate_random_taskset(5, 20, 0.6, implicit_deadlines=False)
        assert all(task.wcet <= task.deadline <= task.period for task in ts)

    def test_vm_assignment_round_robin(self):
        ts = generate_random_taskset(5, 8, 0.4, vm_count=4)
        assert ts.vm_ids() == [0, 1, 2, 3]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_random_taskset(1, 0, 0.5)
        with pytest.raises(ValueError):
            generate_random_taskset(1, 5, -0.5)
        with pytest.raises(ValueError):
            generate_random_taskset(1, 2, 3.0)  # > per-task cap

    def test_every_task_valid(self):
        ts = generate_random_taskset(11, 30, 0.9)
        for task in ts:
            assert 1 <= task.wcet <= task.deadline <= task.period


class TestHelpers:
    def test_harmonic_periods(self):
        assert harmonic_periods(10, 4) == [10, 20, 40, 80]

    def test_harmonic_invalid(self):
        with pytest.raises(ValueError):
            harmonic_periods(0, 3)

    def test_target_wcet(self):
        assert target_wcet(0.5, 10) == 5
        assert target_wcet(0.001, 10) == 1  # floor at minimum
        assert target_wcet(2.0, 10) == 10  # capped at period
