"""Unit tests for synthetic workload padding."""

import pytest

from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask
from repro.tasks.taskset import TaskSet
from repro.tasks.workload import (
    SYNTHETIC_PERIODS,
    pad_to_target_utilization,
    synthetic_task,
)


def base_set(utilization=0.4):
    wcet = int(utilization * 100)
    return TaskSet([IOTask(name="base", period=100, wcet=wcet, vm_id=0)])


class TestSyntheticTask:
    def test_construction(self):
        task = synthetic_task("s0", period=100, utilization=0.05)
        assert task.criticality == Criticality.SYNTHETIC
        assert task.wcet == 5
        assert not task.criticality.counts_for_success

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            synthetic_task("s", 100, 0.0)
        with pytest.raises(ValueError):
            synthetic_task("s", 100, 1.5)


class TestPadding:
    def test_reaches_target(self, rng):
        padded = pad_to_target_utilization(base_set(), 0.8, rng)
        assert padded.utilization == pytest.approx(0.8, abs=0.03)

    def test_base_tasks_preserved(self, rng):
        padded = pad_to_target_utilization(base_set(), 0.7, rng)
        assert "base" in padded

    def test_original_not_mutated(self, rng):
        base = base_set()
        pad_to_target_utilization(base, 0.9, rng)
        assert len(base) == 1

    def test_already_above_target_returns_copy(self, rng):
        base = base_set(0.5)
        padded = pad_to_target_utilization(base, 0.3, rng)
        assert len(padded) == 1
        assert padded.utilization == base.utilization

    def test_padding_tasks_synthetic_only(self, rng):
        padded = pad_to_target_utilization(base_set(), 0.9, rng)
        for task in padded:
            if task.name != "base":
                assert task.criticality == Criticality.SYNTHETIC
                assert task.period in SYNTHETIC_PERIODS

    def test_vm_spread(self, rng):
        padded = pad_to_target_utilization(
            base_set(), 0.9, rng, vm_count=4
        )
        synthetic_vms = {
            task.vm_id for task in padded if task.name != "base"
        }
        assert synthetic_vms == {0, 1, 2, 3}

    def test_deterministic(self):
        a = pad_to_target_utilization(base_set(), 0.8, RandomSource(1, "p"))
        b = pad_to_target_utilization(base_set(), 0.8, RandomSource(1, "p"))
        assert [(t.name, t.period, t.wcet) for t in a] == [
            (t.name, t.period, t.wcet) for t in b
        ]

    def test_negative_target_rejected(self, rng):
        with pytest.raises(ValueError):
            pad_to_target_utilization(base_set(), -0.1, rng)

    def test_all_synthetic_periods_divide_case_study_hyperperiod(self):
        from repro.tasks.automotive import CASE_STUDY_HYPERPERIOD

        for period in SYNTHETIC_PERIODS:
            assert CASE_STUDY_HYPERPERIOD % period == 0
