"""Chain derivation from hand-built traces: exact register semantics."""

from repro.chains.model import CauseEffectChain
from repro.obs.chains import (
    CHAIN_TRACE_CATEGORIES,
    derive_chain_instances,
    derive_chain_reactions,
    derive_chain_spans,
)
from repro.obs.events import IOPOOL_ENQUEUE, JOB_COMPLETE
from repro.sim.trace import TraceRecorder


def _record_job(recorder, task, index, release, complete_slot, vm=0):
    """One job's release and (optionally) completion, executor style.

    ``complete_slot`` follows the trace convention: the job finishes
    *in* that slot, so its value is published at ``complete_slot + 1``.
    """
    recorder.record(
        release, IOPOOL_ENQUEUE, f"iopool.vm{vm}",
        vm=vm, job=f"{task}#{index}", deadline=release + 100,
    )
    if complete_slot is not None:
        recorder.record(
            complete_slot, JOB_COMPLETE, "hypervisor.dev",
            job=f"{task}#{index}", deadline_met=True,
        )


def _two_hop_trace():
    """a (T=4) feeds b: a#0 [0,2), a#1 [4,6), b#0 [5,7), b#1 [9,11)."""
    recorder = TraceRecorder(categories=list(CHAIN_TRACE_CATEGORIES))
    _record_job(recorder, "a", 0, release=0, complete_slot=1)
    _record_job(recorder, "a", 1, release=4, complete_slot=5)
    _record_job(recorder, "b", 0, release=5, complete_slot=6, vm=1)
    _record_job(recorder, "b", 1, release=9, complete_slot=10, vm=1)
    return recorder, CauseEffectChain("ab", ("a", "b"))


class TestDeriveChainInstances:
    def test_reads_latest_publication_at_release(self):
        recorder, chain = _two_hop_trace()
        instances = derive_chain_instances(recorder, chain)
        assert len(instances) == 2
        # b#0 released at 5: a#0 published at 2, a#1 only at 6 -> reads a#0.
        assert instances[0].releases == (0, 5)
        assert instances[0].completions == (2, 7)
        assert instances[0].data_age == 7 - 0
        # b#1 released at 9: a#1 (published 6) is the freshest value.
        assert instances[1].releases == (4, 9)
        assert instances[1].data_age == 11 - 4

    def test_publication_at_release_boundary_is_visible(self):
        recorder = TraceRecorder(categories=list(CHAIN_TRACE_CATEGORIES))
        # a#0 finishes in slot 4 -> published at 5, exactly b#0's release.
        _record_job(recorder, "a", 0, release=0, complete_slot=4)
        _record_job(recorder, "b", 0, release=5, complete_slot=6, vm=1)
        instances = derive_chain_instances(
            recorder, CauseEffectChain("ab", ("a", "b"))
        )
        assert len(instances) == 1
        assert instances[0].releases == (0, 5)

    def test_warmup_instance_without_predecessor_is_skipped(self):
        recorder = TraceRecorder(categories=list(CHAIN_TRACE_CATEGORIES))
        _record_job(recorder, "a", 0, release=0, complete_slot=3)
        # b#0 releases at 2, before any a publication (available at 4).
        _record_job(recorder, "b", 0, release=2, complete_slot=5, vm=1)
        _record_job(recorder, "b", 1, release=6, complete_slot=8, vm=1)
        instances = derive_chain_instances(
            recorder, CauseEffectChain("ab", ("a", "b"))
        )
        assert [inst.releases for inst in instances] == [(0, 6)]

    def test_incomplete_output_job_is_skipped(self):
        recorder, chain = _two_hop_trace()
        _record_job(recorder, "b", 2, release=13, complete_slot=None, vm=1)
        instances = derive_chain_instances(recorder, chain)
        assert len(instances) == 2

    def test_rederivation_is_identical(self):
        recorder, chain = _two_hop_trace()
        assert derive_chain_instances(recorder, chain) == (
            derive_chain_instances(recorder, chain)
        )


class TestDeriveChainReactions:
    def test_forward_propagation_from_missed_input(self):
        recorder, chain = _two_hop_trace()
        reactions = derive_chain_reactions(recorder, chain)
        # Input just after a#0's release 0: sampled by a#1 (release 4,
        # published 6); first b release >= 6 is b#1 at 9, done at 11.
        assert len(reactions) == 1
        sample = reactions[0]
        assert sample.input_slot == 0
        assert sample.releases == (4, 9)
        assert sample.completions == (6, 11)
        assert sample.reaction == 11 - 0

    def test_sample_falling_off_horizon_is_dropped(self):
        recorder = TraceRecorder(categories=list(CHAIN_TRACE_CATEGORIES))
        _record_job(recorder, "a", 0, release=0, complete_slot=1)
        _record_job(recorder, "a", 1, release=4, complete_slot=5)
        # No b job releases at/after 6: the reaction never completes.
        _record_job(recorder, "b", 0, release=5, complete_slot=6, vm=1)
        reactions = derive_chain_reactions(
            recorder, CauseEffectChain("ab", ("a", "b"))
        )
        assert reactions == []

    def test_incomplete_sampling_job_is_dropped(self):
        recorder = TraceRecorder(categories=list(CHAIN_TRACE_CATEGORIES))
        _record_job(recorder, "a", 0, release=0, complete_slot=1)
        _record_job(recorder, "a", 1, release=4, complete_slot=None)
        _record_job(recorder, "b", 0, release=9, complete_slot=10, vm=1)
        reactions = derive_chain_reactions(
            recorder, CauseEffectChain("ab", ("a", "b"))
        )
        assert reactions == []


class TestDeriveChainSpans:
    def test_spans_cover_sample_to_output(self):
        recorder, chain = _two_hop_trace()
        spans = derive_chain_spans(recorder, chain)
        assert [span.name for span in spans] == ["ab#0", "ab#1"]
        assert spans[0].track == "chain.ab"
        assert spans[0].start_slot == 0
        assert spans[0].end_slot == 7
        assert spans[0].args["data_age"] == 7
        assert spans[0].args["kind"] == "chain"
        assert spans[1].args["hops"] == 2
