"""Trace-ordering invariants over real instrumented runs.

These assert structural properties of the event stream the exporter and
span deriver rely on: EDF staging precedes dispatch per job, G-Sched
grants are exclusive per slot, and fault-plan edges fire ahead of
same-slot workload events (``FAULT_EVENT_PRIORITY``).
"""

from repro.exp.isolation import build_isolation_fault_plan
from repro.obs.capture import capture_fault_isolation
from repro.obs.events import (
    GSCHED_GRANT,
    LSCHED_STAGE,
    RCHANNEL_DISPATCH,
)
from repro.sim.engine import FAULT_EVENT_PRIORITY, Simulator

HORIZON = 1_500


def _capture():
    return capture_fault_isolation(seed=2021, horizon_slots=HORIZON)


class TestStageBeforeDispatch:
    def test_edf_dispatch_never_precedes_same_job_stage(self):
        """A job must be staged by L-Sched before the R-channel runs it,
        both in stream order and in slot time."""
        capture = _capture()
        first_stage = {}
        first_stage_index = {}
        checked = 0
        for index, event in enumerate(capture.recorder):
            job = event.payload.get("job")
            if not isinstance(job, str):
                continue
            if event.category == LSCHED_STAGE and job not in first_stage:
                first_stage[job] = event.time
                first_stage_index[job] = index
            elif event.category == RCHANNEL_DISPATCH:
                assert job in first_stage, (
                    f"{job} dispatched without a prior stage event"
                )
                assert first_stage[job] <= event.time
                assert first_stage_index[job] < index
                checked += 1
        assert checked > 0, "run produced no dispatch events to check"


class TestGrantExclusivity:
    def test_one_vm_granted_per_slot(self):
        """G-Sched hands each free slot to exactly one VM: two grant
        events never share a slot, and every grant names one VM."""
        capture = _capture()
        grants = capture.recorder.by_category(GSCHED_GRANT)
        assert grants, "run produced no grant events"
        seen_slots = set()
        for event in grants:
            assert isinstance(event.payload.get("vm"), int)
            assert event.time not in seen_slots, (
                f"slot {event.time} granted twice"
            )
            seen_slots.add(event.time)


class TestFaultEventPriority:
    def test_fault_edges_precede_same_slot_workload(self):
        """Edges consumed from a fault plan run at FAULT_EVENT_PRIORITY,
        strictly before priority-0 workload callbacks at the same slot."""
        assert FAULT_EVENT_PRIORITY < 0
        plan = build_isolation_fault_plan(seed=2021, horizon_slots=HORIZON)
        edge_slots = sorted({slot for slot, _, _, _ in plan.events()})
        assert edge_slots, "plan has no edges at this horizon"

        order = []
        sim = Simulator()
        for slot in edge_slots:
            sim.at(slot, order.append, ("workload", slot))
        scheduled = sim.consume_fault_plan(
            plan, lambda action, fault, slot: order.append(("fault", slot))
        )
        assert scheduled == sum(1 for _ in plan.events())
        sim.run()

        by_slot = {}
        for index, (kind, slot) in enumerate(order):
            by_slot.setdefault(slot, []).append(kind)
        for slot, kinds in by_slot.items():
            workload_at = kinds.index("workload")
            assert all(kind == "fault" for kind in kinds[:workload_at]), (
                f"slot {slot}: workload ran before a fault edge ({kinds})"
            )
            assert "fault" not in kinds[workload_at:], (
                f"slot {slot}: fault edge ran after workload ({kinds})"
            )


class TestCaptureDeterminism:
    def test_rerun_is_byte_identical(self):
        first = _capture()
        second = _capture()
        assert first.registry.to_json() == second.registry.to_json()
        assert [
            (e.time, e.category, e.source, sorted(e.payload.items()))
            for e in first.recorder
        ] == [
            (e.time, e.category, e.source, sorted(e.payload.items()))
            for e in second.recorder
        ]

    def test_tracing_does_not_perturb_results(self):
        """Observability is read-only: the traced run's isolation result
        digests match an untraced run of the same scenario."""
        from repro.exp.isolation import run_fault_isolation

        traced = _capture().result
        plain = run_fault_isolation(seed=2021, horizon_slots=HORIZON)
        assert traced.fault_trace_digest == plain.fault_trace_digest
        assert traced.sim_trace_digests == plain.sim_trace_digests
        assert traced.victim_misses == plain.victim_misses
