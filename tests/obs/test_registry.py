"""Unit tests for the unified metrics registry."""

import json

import pytest

from repro.metrics.stats import summarize
from repro.obs.registry import MetricsRegistry
from repro.sim.trace import TraceRecorder


class TestCounter:
    def test_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs.completed")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_non_int_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(TypeError):
            counter.inc(1.5)
        with pytest.raises(TypeError):
            counter.inc(True)


class TestRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError):
            registry.gauge("dual")
        with pytest.raises(ValueError):
            registry.histogram("dual")

    def test_names_sorted_across_kinds(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("c")
        registry.histogram("a")
        assert registry.names() == ["a", "b", "c"]

    def test_snapshot_deterministic_json(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.count").inc(3)
            registry.gauge("a.level").set(0.5)
            histogram = registry.histogram("m.sample")
            for value in (1, 5, 2):
                histogram.observe(value)
            return registry

        assert build().to_json() == build().to_json()
        # Insertion order must not leak into the snapshot.
        reordered = MetricsRegistry()
        histogram = reordered.histogram("m.sample")
        for value in (1, 5, 2):
            histogram.observe(value)
        reordered.gauge("a.level").set(0.5)
        reordered.counter("z.count").inc(3)
        assert reordered.to_json() == build().to_json()

    def test_snapshot_parses_and_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        data = json.loads(registry.to_json())
        assert list(data["counters"]) == ["a", "b"]

    def test_empty_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        assert registry.snapshot()["histograms"]["empty"] == {"count": 0}

    def test_histogram_summary_matches_latency_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        sample = [3.0, 1.0, 4.0, 1.0, 5.0]
        for value in sample:
            histogram.observe(value)
        assert histogram.summary() == summarize(sample).as_dict()


class TestIngestion:
    def test_ingest_trace_counts_and_drops(self):
        recorder = TraceRecorder(max_events=2)
        for slot in range(4):
            recorder.record(slot, "tick", "s")
        registry = MetricsRegistry()
        registry.ingest_trace(recorder)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["trace.events.tick"] == 4
        assert snapshot["counters"]["trace.dropped_events"] == 2
        assert snapshot["gauges"]["trace.stored_events"] == 2.0

    def test_ingest_latency(self):
        registry = MetricsRegistry()
        registry.ingest_latency("wait", summarize([2.0, 4.0, 6.0]))
        snapshot = registry.snapshot()
        assert snapshot["counters"]["wait.count"] == 3
        assert snapshot["gauges"]["wait.mean"] == 4.0
        assert snapshot["gauges"]["wait.jitter"] == 4.0

    def test_ingest_cache_stats_explicit(self):
        registry = MetricsRegistry()
        registry.ingest_cache_stats(
            {"kern": {"hits": 7, "misses": 2, "currsize": 2, "maxsize": -1}}
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cache.kern.hits"] == 7
        assert snapshot["counters"]["cache.kern.misses"] == 2
        assert snapshot["gauges"]["cache.kern.currsize"] == 2.0
