"""End-to-end tests for ``python -m repro.obs``."""

import json

from repro.obs.cli import main
from repro.obs.perfetto import validate_chrome_trace

HORIZON = "800"


class TestExport:
    def test_writes_valid_artifacts(self, tmp_path, capsys):
        exit_code = main(
            ["export", "--out", str(tmp_path), "--horizon", HORIZON]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "trace.json" in out and "metrics.json" in out

        document = json.loads((tmp_path / "trace.json").read_text())
        validate_chrome_trace(document)
        assert document["otherData"]["slot_us"] == 10

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["meta"]["scenario"] == "fault-isolation"
        assert metrics["meta"]["seed"] == 2021
        assert "counters" in metrics["metrics"]
        assert metrics["metrics"]["counters"]["trace.dropped_events"] == 0

    def test_rerun_is_byte_identical(self, tmp_path):
        for name in ("a", "b"):
            main(
                ["export", "--out", str(tmp_path / name), "--horizon", HORIZON]
            )
        assert (tmp_path / "a" / "trace.json").read_bytes() == (
            tmp_path / "b" / "trace.json"
        ).read_bytes()
        assert (tmp_path / "a" / "metrics.json").read_bytes() == (
            tmp_path / "b" / "metrics.json"
        ).read_bytes()

    def test_ring_buffer_eviction_is_reported(self, tmp_path, capsys):
        main(
            [
                "export", "--out", str(tmp_path), "--horizon", HORIZON,
                "--max-events", "50",
            ]
        )
        captured = capsys.readouterr()
        assert "evicted" in captured.err
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["metrics"]["counters"]["trace.dropped_events"] > 0

    def test_slot_us_scales_timestamps(self, tmp_path):
        main(
            [
                "export", "--out", str(tmp_path / "x1"), "--horizon", HORIZON,
                "--slot-us", "1",
            ]
        )
        main(
            [
                "export", "--out", str(tmp_path / "x5"), "--horizon", HORIZON,
                "--slot-us", "5",
            ]
        )
        narrow = json.loads((tmp_path / "x1" / "trace.json").read_text())
        wide = json.loads((tmp_path / "x5" / "trace.json").read_text())
        narrow_ts = [e["ts"] for e in narrow["traceEvents"] if e["ph"] == "i"]
        wide_ts = [e["ts"] for e in wide["traceEvents"] if e["ph"] == "i"]
        assert wide_ts == [ts * 5 for ts in narrow_ts]


class TestTextCommands:
    def test_summary_prints_registry_table(self, capsys):
        assert main(["summary", "--horizon", HORIZON]) == 0
        out = capsys.readouterr().out
        assert "Metrics registry" in out
        assert "trace.events.gsched.grant" in out
        assert "isolation.ioguard.victim_misses" in out

    def test_spans_prints_derived_spans(self, capsys):
        assert main(["spans", "--horizon", HORIZON, "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "derived job spans" in out
        assert "run" in out

    def test_sweep_serial(self, capsys):
        assert main(["sweep", "--seeds", "7", "--horizon", "500",
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Bounded traced sweep" in out
        assert "trace digest" in out
