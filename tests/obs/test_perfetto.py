"""Perfetto/Chrome trace export: schema, tracks, determinism."""

import json

import pytest

from repro.faults.trace import FaultTrace
from repro.obs.events import Span, derive_job_spans, job_wait_slots
from repro.obs.perfetto import (
    chrome_trace,
    render_chrome_trace,
    validate_chrome_trace,
)
from repro.sim.trace import TraceRecorder


def _sample_recorder() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record(0, "gsched.replenish", "gsched", vm=0, budget=4)
    trace.record(1, "iopool.enqueue", "iopool.vm0", vm=0, job="j#0", deadline=20)
    trace.record(1, "lsched.stage", "iopool.vm0.lsched", vm=0, job="j#0", deadline=20)
    trace.record(2, "gsched.grant", "gsched", vm=0, budgeted=True, budget_left=3)
    trace.record(2, "rchannel.dispatch", "rchannel", vm=0, job="j#0", remaining=2, budgeted=True)
    trace.record(3, "rchannel.dispatch", "rchannel", vm=0, job="j#0", remaining=1, budgeted=True)
    trace.record(3, "job_complete", "hypervisor.eth0", job="j#0", deadline_met=True)
    trace.record(4, "driver.retry", "eth0.ctl", device="eth0", attempt=1, penalty_cycles=2000)
    return trace


class TestSpanDerivation:
    def test_wait_and_run_spans(self):
        spans = derive_job_spans(_sample_recorder())
        by_name = {span.name: span for span in spans}
        wait = by_name["j#0 wait"]
        assert (wait.start_slot, wait.end_slot, wait.track) == (1, 2, "vm0")
        run = by_name["j#0 run"]
        assert (run.start_slot, run.end_slot) == (2, 4)
        assert run.args["dispatch_slots"] == 2

    def test_wait_slots(self):
        assert job_wait_slots(_sample_recorder()) == {"j#0": 1}

    def test_never_dispatched_job_has_no_span(self):
        trace = TraceRecorder()
        trace.record(1, "iopool.enqueue", "iopool.vm0", vm=0, job="stuck#0", deadline=9)
        assert derive_job_spans(trace) == []
        assert job_wait_slots(trace) == {}

    def test_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Span(name="x", track="vm0", start_slot=5, end_slot=4)


class TestChromeTrace:
    def test_document_validates(self):
        document = chrome_trace(_sample_recorder())
        validate_chrome_trace(document)

    def test_track_layout(self):
        document = chrome_trace(_sample_recorder())
        events = document["traceEvents"]
        process_names = {
            event["pid"]: event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert process_names == {
            1: "scheduler", 2: "vms", 3: "devices", 4: "faults"
        }
        thread_names = {
            (event["pid"], event["tid"]): event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert thread_names[(2, 1)] == "VM 0"
        assert "eth0" in thread_names.values()
        assert thread_names[(1, 1)] == "G-Sched"

    def test_timestamps_scale_with_slot_us(self):
        document = chrome_trace(_sample_recorder(), slot_us=25)
        instants = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "i" and event["name"] == "gsched.grant"
        ]
        assert [event["ts"] for event in instants] == [50]

    def test_bad_slot_us_rejected(self):
        for bad in (0, -1, 2.5, True):
            with pytest.raises(ValueError):
                chrome_trace(_sample_recorder(), slot_us=bad)

    def test_rendering_is_byte_stable(self):
        first = render_chrome_trace(chrome_trace(_sample_recorder()))
        second = render_chrome_trace(chrome_trace(_sample_recorder()))
        assert first == second
        json.loads(first)  # well-formed

    def test_fault_trace_lands_on_fault_track(self):
        faults = FaultTrace()
        faults.record(5, "device-stall", "sens1", "activate")
        document = chrome_trace(_sample_recorder(), fault_trace=faults)
        validate_chrome_trace(document)
        fault_events = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "i" and event["pid"] == 4
        ]
        assert len(fault_events) == 1
        assert fault_events[0]["name"] == "device-stall:activate"
        assert fault_events[0]["args"]["target"] == "sens1"


class TestValidator:
    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})

    def test_rejects_float_timestamps(self):
        document = chrome_trace(_sample_recorder())
        document["traceEvents"].append(
            {
                "name": "bad", "ph": "i", "ts": 1.5, "pid": 1, "tid": 1,
                "s": "t", "args": {},
            }
        )
        with pytest.raises(ValueError):
            validate_chrome_trace(document)

    def test_rejects_unknown_phase(self):
        document = chrome_trace(_sample_recorder())
        document["traceEvents"].append(
            {"name": "bad", "ph": "Q", "ts": 1, "pid": 1, "tid": 1, "args": {}}
        )
        with pytest.raises(ValueError):
            validate_chrome_trace(document)

    def test_rejects_zero_duration_span(self):
        document = chrome_trace(_sample_recorder())
        document["traceEvents"].append(
            {
                "name": "bad", "ph": "X", "ts": 1, "dur": 0, "pid": 1,
                "tid": 1, "args": {},
            }
        )
        with pytest.raises(ValueError):
            validate_chrome_trace(document)
