"""Unit tests for fault plans: derivation, serialization, determinism."""

import pytest

from repro.faults.plan import (
    DeviceStallFault,
    FaultPlan,
    FaultWindow,
    NocLinkFault,
    PacketDropFault,
    QueueStormFault,
    generate_fault_plan,
)


def full_plan(seed=7, horizon=10_000):
    return generate_fault_plan(
        seed,
        horizon_slots=horizon,
        devices=("sens1", "eth0"),
        storm_vms=(1,),
        links=(((0, 0), (1, 0)),),
        packet_drop=True,
        name="test",
    )


class TestFaultWindow:
    def test_half_open_interval(self):
        window = FaultWindow(start_slot=10, duration_slots=5)
        assert window.end_slot == 15
        assert not window.active(9)
        assert window.active(10)
        assert window.active(14)
        assert not window.active(15)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(start_slot=-1, duration_slots=5)
        with pytest.raises(ValueError):
            FaultWindow(start_slot=0, duration_slots=0)


class TestFaultSpecs:
    def test_drop_fault_matches_by_modulus(self):
        fault = PacketDropFault(
            window=FaultWindow(0, 10), modulus=5, phase=2
        )
        assert fault.matches(2)
        assert fault.matches(7)
        assert not fault.matches(3)

    def test_drop_fault_validation(self):
        with pytest.raises(ValueError):
            PacketDropFault(window=FaultWindow(0, 10), modulus=1, phase=0)
        with pytest.raises(ValueError):
            PacketDropFault(window=FaultWindow(0, 10), modulus=4, phase=4)

    def test_storm_validation(self):
        window = FaultWindow(0, 10)
        with pytest.raises(ValueError):
            QueueStormFault(
                window=window, vm_id=-1, jobs_per_slot=2, deadline_slots=8
            )
        with pytest.raises(ValueError):
            QueueStormFault(
                window=window, vm_id=0, jobs_per_slot=0, deadline_slots=8
            )
        with pytest.raises(ValueError):
            QueueStormFault(
                window=window, vm_id=0, jobs_per_slot=2, deadline_slots=4,
                wcet_slots=5,
            )

    def test_targets(self):
        assert (
            DeviceStallFault(window=FaultWindow(0, 5), device="sens1").target
            == "sens1"
        )
        link = NocLinkFault(
            window=FaultWindow(0, 5), source=(0, 0), destination=(1, 0)
        )
        assert link.target == "(0, 0)->(1, 0)"
        assert link.link == ((0, 0), (1, 0))


class TestGeneration:
    def test_same_seed_same_plan(self):
        assert full_plan(7).digest() == full_plan(7).digest()
        assert full_plan(7) == full_plan(7)

    def test_different_seed_different_plan(self):
        assert full_plan(7).digest() != full_plan(8).digest()

    def test_stateless_per_fault_streams(self):
        """Adding a fault never perturbs another fault's drawn params."""
        small = generate_fault_plan(
            7, horizon_slots=10_000, storm_vms=(1,), name="test"
        )
        big = full_plan(7)
        assert small.storms == big.storms

    def test_storm_rate_override(self):
        plan = generate_fault_plan(
            7, horizon_slots=10_000, storm_vms=(1,),
            storm_jobs_per_slot=9, storm_device="sens1",
        )
        (storm,) = plan.storms
        assert storm.jobs_per_slot == 9
        assert storm.device == "sens1"

    def test_kind_filters(self):
        plan = full_plan()
        assert len(plan.device_stalls) == 2
        assert len(plan.storms) == 1
        assert len(plan.link_faults) == 1
        assert len(plan.drop_faults) == 1
        assert len(plan) == 5
        with pytest.raises(ValueError, match="unknown fault kind"):
            plan.of_kind("meteor-strike")

    def test_windows_inside_horizon_neighbourhood(self):
        plan = full_plan(horizon=1_000)
        for fault in plan:
            assert 0 <= fault.window.start_slot <= 1_000
        assert plan.horizon_hint > 0

    def test_short_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            generate_fault_plan(7, horizon_slots=5)


class TestSerialization:
    def test_roundtrip(self):
        plan = full_plan()
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.digest() == plan.digest()

    def test_canonical_json_stable(self):
        plan = full_plan()
        assert plan.canonical_json() == full_plan().canonical_json()
        assert " " not in plan.canonical_json()

    def test_unknown_kind_rejected(self):
        data = full_plan().to_dict()
        data["faults"][0]["kind"] = "gamma-ray"
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict(data)


class TestEvents:
    def test_edges_sorted_and_paired(self):
        plan = full_plan()
        edges = list(plan.events())
        assert len(edges) == 2 * len(plan)
        slots = [slot for slot, _a, _i, _f in edges]
        assert slots == sorted(slots)
        for index in range(len(plan)):
            actions = [a for _s, a, i, _f in edges if i == index]
            assert actions == ["activate", "clear"]

    def test_clear_precedes_activate_at_same_slot(self):
        plan = FaultPlan(
            name="adjacent", seed=0,
            faults=(
                DeviceStallFault(window=FaultWindow(0, 10), device="a"),
                DeviceStallFault(window=FaultWindow(10, 5), device="a"),
            ),
        )
        edges = [(slot, action) for slot, action, _i, _f in plan.events()]
        assert edges == [
            (0, "activate"), (10, "clear"), (10, "activate"), (15, "clear")
        ]

    def test_event_order_is_reproducible(self):
        plan = full_plan()
        assert list(plan.events()) == list(plan.events())
