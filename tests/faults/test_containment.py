"""Unit tests for hypervisor-side containment: guarded driver path,
degradation policy, R-channel quarantine and the manager integration."""

import pytest

from repro.core.driver import GuardedOperation, RetryPolicy, VirtualizationDriver
from repro.core.gsched import ServerSpec
from repro.core.manager import DegradationPolicy, VirtualizationManager
from repro.core.rchannel import RChannel
from repro.hw.controller import SPIController
from repro.hw.devices import EchoDevice
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def runtime_job(name, vm_id=0, release=0, deadline=50, wcet=2, device="io0",
                index=0):
    task = IOTask(
        name=name, period=1000, wcet=wcet, deadline=deadline, vm_id=vm_id,
        device=device,
    )
    return task.job(release=release, index=index)


def make_driver():
    return VirtualizationDriver(
        SPIController("spi0"), EchoDevice("dev", service_cycles=100)
    )


class TestRetryPolicy:
    def test_penalty_grows_linearly(self):
        policy = RetryPolicy(
            max_attempts=3, timeout_cycles=1000, backoff_cycles=200
        )
        assert policy.penalty_cycles(1) == 1000
        assert policy.penalty_cycles(2) == 1200
        assert policy.penalty_cycles(3) == 1400
        assert policy.worst_case_penalty_cycles == 3600

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_cycles=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_cycles=-1)


class TestGuardedDriverPath:
    def test_healthy_device_single_attempt(self):
        driver = make_driver()
        outcome = driver.execute_guarded(64)
        assert outcome.succeeded
        assert outcome.attempts == 1
        assert outcome.penalty_cycles == 0
        assert outcome.total_cycles == outcome.timing.total
        assert driver.retries_performed == 0
        assert driver.operations_timed_out == 0

    def test_stalled_device_bounded_timeout(self):
        driver = make_driver()
        driver.device.begin_stall()
        policy = RetryPolicy(
            max_attempts=3, timeout_cycles=500, backoff_cycles=100
        )
        outcome = driver.execute_guarded(64, policy)
        assert not outcome.succeeded
        assert outcome.timing is None
        assert outcome.attempts == 3
        # Cost is exactly the policy's worst case -- never unbounded.
        assert outcome.penalty_cycles == policy.worst_case_penalty_cycles
        assert outcome.total_cycles == policy.worst_case_penalty_cycles
        assert driver.retries_performed == 2
        assert driver.operations_timed_out == 1
        assert driver.device.stalled_requests == 3

    def test_penalty_charged_to_driver_cycles(self):
        driver = make_driver()
        driver.device.begin_stall()
        policy = RetryPolicy(max_attempts=2, timeout_cycles=300,
                             backoff_cycles=0)
        driver.execute_guarded(16, policy)
        assert driver.total_cycles == 600

    def test_recovered_device_serves_again(self):
        driver = make_driver()
        driver.device.begin_stall()
        driver.execute_guarded(16, RetryPolicy(max_attempts=1))
        driver.device.end_stall()
        outcome = driver.execute_guarded(16)
        assert outcome.succeeded

    def test_stall_idempotent(self):
        device = EchoDevice("dev")
        device.begin_stall()
        device.begin_stall()
        assert device.stall_windows == 1
        device.end_stall()
        assert not device.stalled


class TestDegradationPolicy:
    def test_stall_streak_trips_at_limit(self):
        policy = DegradationPolicy(stall_limit=3)
        assert not policy.note_stall("sens1", 10)
        assert not policy.note_stall("sens1", 11)
        assert policy.note_stall("sens1", 12)
        assert policy.device_quarantined("sens1")
        (event,) = policy.log
        assert (event.slot, event.category, event.target) == (12, "device", "sens1")

    def test_service_resets_stall_streak(self):
        policy = DegradationPolicy(stall_limit=2)
        policy.note_stall("sens1", 1)
        policy.note_service("sens1")
        assert not policy.note_stall("sens1", 2)
        assert not policy.device_quarantined("sens1")

    def test_rejection_streak_trips_vm(self):
        policy = DegradationPolicy(reject_limit=3)
        for slot in range(2):
            assert not policy.note_rejection(7, slot)
        assert policy.note_rejection(7, 2)
        assert policy.vm_quarantined(7)
        assert policy.quarantine_count == 1

    def test_accept_resets_rejection_streak(self):
        policy = DegradationPolicy(reject_limit=2)
        policy.note_rejection(7, 0)
        policy.note_accept(7)
        assert not policy.note_rejection(7, 1)

    def test_quarantined_target_reports_false(self):
        policy = DegradationPolicy(stall_limit=1)
        assert policy.note_stall("sens1", 0)
        assert not policy.note_stall("sens1", 1)
        assert len(policy.log) == 1

    def test_streaks_are_per_target(self):
        policy = DegradationPolicy(stall_limit=2)
        policy.note_stall("a", 0)
        policy.note_stall("b", 0)
        assert not policy.device_quarantined("a")
        assert not policy.device_quarantined("b")

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(stall_limit=0)
        with pytest.raises(ValueError):
            DegradationPolicy(reject_limit=0)


class TestRChannelQuarantine:
    def make(self):
        return RChannel(
            [ServerSpec(0, 10, 3), ServerSpec(1, 10, 3)], pool_capacity=8
        )

    def test_quarantine_drains_and_masks(self):
        channel = self.make()
        for i in range(3):
            channel.submit(runtime_job(f"r{i}", vm_id=1, index=i))
        drained = channel.quarantine_vm(1)
        assert len(drained) == 3
        assert len(channel.pools[1]) == 0
        assert channel.pools[1].dropped == 3
        # Masked from scheduling: only VM0 work would be picked.
        channel.tick(0)
        assert channel.execute_slot(0) is None

    def test_quarantined_submissions_bounce(self):
        channel = self.make()
        channel.quarantine_vm(1)
        assert channel.submit(runtime_job("r", vm_id=1)) is False
        assert channel.quarantine_rejects == 1

    def test_quarantine_idempotent_and_releasable(self):
        channel = self.make()
        channel.submit(runtime_job("r", vm_id=1))
        assert len(channel.quarantine_vm(1)) == 1
        assert channel.quarantine_vm(1) == []
        channel.release_vm(1)
        assert channel.submit(runtime_job("r2", vm_id=1)) is True

    def test_unknown_vm_rejected(self):
        with pytest.raises(KeyError):
            self.make().quarantine_vm(9)

    def test_guard_burns_slot_without_progress(self):
        channel = self.make()
        job = runtime_job("j", vm_id=0, wcet=2)
        channel.submit(job)
        channel.tick(0)
        budget_before = channel.gsched.budget_of(0)
        completed = channel.execute_slot(0, guard=lambda j, s: False)
        assert completed is None
        assert channel.blocked_slots == 1
        assert job.remaining == 2  # no progress
        # The burned slot came out of the faulting VM's own budget.
        assert channel.gsched.budget_of(0) == budget_before - 1

    def test_guard_true_executes_normally(self):
        channel = self.make()
        job = runtime_job("j", vm_id=0, wcet=1)
        channel.submit(job)
        channel.tick(0)
        completed = channel.execute_slot(0, guard=lambda j, s: True)
        assert completed is job


class TestManagerIntegration:
    def make(self, **policy_kwargs):
        policy = DegradationPolicy(**policy_kwargs) if policy_kwargs else None
        manager = VirtualizationManager(
            "io",
            TaskSet([], name="predef"),
            [ServerSpec(0, 10, 3), ServerSpec(1, 10, 3)],
            pool_capacity=4,
            degradation=policy,
        )
        return manager, policy

    def test_babbling_vm_quarantined_after_reject_streak(self):
        manager, policy = self.make(reject_limit=3)
        for i in range(4):
            manager.submit(runtime_job(f"f{i}", vm_id=1, index=i), slot=0)
        assert manager.pending_jobs == 4
        rejected = 0
        for i in range(4, 12):
            if not manager.submit(
                runtime_job(f"f{i}", vm_id=1, index=i), slot=1
            ):
                rejected += 1
        assert policy.vm_quarantined(1)
        assert 1 in manager.rchannel.quarantined_vms
        # The drained pool drops its backlog; victim pool untouched.
        assert manager.rchannel.pools[1].dropped == 4
        assert manager.submit(runtime_job("v", vm_id=0), slot=2) is True

    def test_device_quarantine_drops_targeting_jobs(self):
        manager, policy = self.make(stall_limit=2)
        doomed = runtime_job("d", vm_id=0, device="sens1")
        healthy = runtime_job("h", vm_id=1, device="eth0")
        manager.submit(doomed, slot=0)
        manager.submit(healthy, slot=0)
        assert not manager.report_device_stall("sens1", 5)
        assert manager.report_device_stall("sens1", 6)
        assert doomed not in manager.rchannel.pools[0].queue
        assert healthy in manager.rchannel.pools[1].queue
        # Shadow register refreshed: pool 0 presents no stale work.
        assert manager.rchannel.pools[0].shadow is None
        # Further submissions to the dead device bounce at admission.
        assert (
            manager.submit(runtime_job("d2", vm_id=0, device="sens1"), slot=7)
            is False
        )
        assert manager.device_rejects == 1

    def test_service_resets_streak_through_manager(self):
        manager, policy = self.make(stall_limit=2)
        manager.report_device_stall("sens1", 0)
        manager.report_device_service("sens1")
        assert not manager.report_device_stall("sens1", 1)
        assert not policy.device_quarantined("sens1")

    def test_no_policy_is_inert(self):
        manager, _ = self.make()
        assert manager.report_device_stall("sens1", 0) is False
        manager.report_device_service("sens1")  # no-op, no raise

    def test_guard_forwarded_to_rchannel(self):
        manager, _ = self.make()
        manager.submit(runtime_job("j", vm_id=0, wcet=1), slot=0)
        assert manager.execute_slot(0, guard=lambda j, s: False) is None
        assert manager.rchannel.blocked_slots == 1
