"""Unit tests for fault injectors in slot-loop and event-engine modes."""

import pytest

from repro.faults.injectors import (
    DeviceStallInjector,
    FaultController,
    NocFaultInjector,
    StormInjector,
)
from repro.faults.plan import (
    DeviceStallFault,
    FaultPlan,
    FaultWindow,
    NocLinkFault,
    PacketDropFault,
    QueueStormFault,
)
from repro.faults.trace import FaultTrace
from repro.hw.devices import DeviceStalledError, IODevice
from repro.noc.network import NocNetwork
from repro.noc.packet import Packet, PacketKind
from repro.sim.engine import Simulator


def stall_fault(start=5, duration=10, device="sens1"):
    return DeviceStallFault(
        window=FaultWindow(start, duration), device=device
    )


def storm_fault(start=0, duration=10, rate=3):
    return QueueStormFault(
        window=FaultWindow(start, duration), vm_id=1,
        jobs_per_slot=rate, deadline_slots=8,
    )


class TestDeviceStallInjector:
    def test_window_toggles_stall(self):
        device = IODevice("sens1", service_cycles=10)
        injector = DeviceStallInjector(stall_fault(5, 3), device)
        for slot in range(10):
            injector.on_slot(slot)
            if 5 <= slot < 8:
                assert device.stalled
                with pytest.raises(DeviceStalledError):
                    device.serve(4)
            else:
                assert not device.stalled
        assert device.stall_windows == 1
        assert device.stalled_requests == 3

    def test_device_name_must_match(self):
        with pytest.raises(ValueError, match="targets device"):
            DeviceStallInjector(
                stall_fault(device="sens1"), IODevice("eth0")
            )

    def test_edges_traced(self):
        trace = FaultTrace()
        injector = DeviceStallInjector(
            stall_fault(2, 3), IODevice("sens1"), trace
        )
        for slot in range(8):
            injector.on_slot(slot)
        assert [(e.slot, e.action) for e in trace] == [
            (2, "activate"), (5, "clear")
        ]


class TestStormInjector:
    def test_jobs_only_inside_window(self):
        injector = StormInjector(storm_fault(3, 2, rate=4))
        assert injector.jobs_for_slot(2) == []
        assert len(injector.jobs_for_slot(3)) == 4
        assert len(injector.jobs_for_slot(4)) == 4
        assert injector.jobs_for_slot(5) == []
        assert injector.jobs_generated == 8

    def test_job_identity_is_pure_function_of_slot(self):
        """Two injectors over the same fault emit identical sequences."""
        first = StormInjector(storm_fault(0, 5, rate=2))
        second = StormInjector(storm_fault(0, 5, rate=2))
        for slot in (0, 3, 4):
            ours = first.jobs_for_slot(slot)
            theirs = second.jobs_for_slot(slot)
            assert [j.name for j in ours] == [j.name for j in theirs]
            assert [j.absolute_deadline for j in ours] == [
                j.absolute_deadline for j in theirs
            ]

    def test_indices_unique_across_window(self):
        injector = StormInjector(storm_fault(0, 4, rate=3))
        indices = [
            job.index for slot in range(4) for job in injector.jobs_for_slot(slot)
        ]
        assert indices == sorted(set(indices))

    def test_storm_task_masquerades_as_vm_traffic(self):
        fault = storm_fault()
        injector = StormInjector(fault)
        assert injector.task.vm_id == fault.vm_id
        assert injector.task.deadline == fault.deadline_slots


class TestNocFaultInjector:
    def make_network(self):
        sim = Simulator()
        return sim, NocNetwork(sim)

    def test_link_fault_toggles_network(self):
        sim, network = self.make_network()
        fault = NocLinkFault(
            window=FaultWindow(5, 3), source=(0, 0), destination=(1, 0)
        )
        injector = NocFaultInjector(network, [fault])
        injector.on_slot(5)
        assert network.link_failed(((0, 0), (1, 0)))
        injector.on_slot(8)
        assert not network.link_failed(((0, 0), (1, 0)))

    def test_drop_rule_follows_window(self):
        sim, network = self.make_network()
        fault = PacketDropFault(window=FaultWindow(0, 5), modulus=2, phase=0)
        injector = NocFaultInjector(network, [fault])
        assert network.drop_rule is None
        injector.on_slot(0)
        assert network.drop_rule is not None
        injector.on_slot(5)
        assert network.drop_rule is None

    def test_rejects_non_noc_faults(self):
        sim, network = self.make_network()
        with pytest.raises(TypeError, match="NoC faults only"):
            NocFaultInjector(network, [stall_fault()])

    def test_failed_link_drops_packet(self):
        sim, network = self.make_network()
        network.fail_link(((0, 0), (1, 0)))
        packet = Packet(
            source=(0, 0), destination=(2, 0), kind=PacketKind.REQUEST,
            payload_bytes=4,
        )
        network.inject(packet)
        sim.run()
        assert network.total_dropped == 1
        assert network.dropped[0].reason == "link-down"
        assert not network.delivered

    def test_drop_rule_filters_at_injection(self):
        sim, network = self.make_network()
        network.drop_rule = lambda packet: packet.packet_id % 2 == 0
        packets = [
            Packet(
                source=(0, 0), destination=(1, 0), kind=PacketKind.REQUEST,
                payload_bytes=4,
            )
            for _ in range(4)
        ]
        for packet in packets:
            network.inject(packet)
        sim.run()
        expected_drops = sum(1 for p in packets if p.packet_id % 2 == 0)
        assert network.total_dropped == expected_drops
        assert len(network.delivered) == 4 - expected_drops
        assert all(r.reason == "drop-rule" for r in network.dropped)


class TestFaultController:
    def test_missing_device_rejected(self):
        plan = FaultPlan(name="p", seed=0, faults=(stall_fault(),))
        with pytest.raises(ValueError, match="no such device"):
            FaultController(plan, devices={})

    def test_missing_network_rejected(self):
        fault = NocLinkFault(
            window=FaultWindow(0, 5), source=(0, 0), destination=(1, 0)
        )
        plan = FaultPlan(name="p", seed=0, faults=(fault,))
        with pytest.raises(ValueError, match="no network"):
            FaultController(plan)

    def test_slot_loop_drives_everything(self):
        device = IODevice("sens1")
        plan = FaultPlan(
            name="p", seed=0,
            faults=(stall_fault(2, 3), storm_fault(1, 2, rate=2)),
        )
        controller = FaultController(plan, devices={"sens1": device})
        storm_jobs = []
        for slot in range(8):
            storm_jobs.extend(controller.on_slot(slot))
            assert device.stalled == (2 <= slot < 5)
        assert len(storm_jobs) == 4
        # Edges of both faults land in the shared trace.
        assert controller.trace.count("activate") == 2
        assert controller.trace.count("clear") == 2

    def test_storm_taskset(self):
        plan = FaultPlan(name="p", seed=0, faults=(storm_fault(),))
        controller = FaultController(plan)
        taskset = controller.storm_taskset()
        assert len(taskset) == 1
        assert taskset["storm.vm1"].vm_id == 1


class TestEngineMode:
    def test_attach_schedules_all_edges(self):
        sim = Simulator()
        device = IODevice("sens1")
        plan = FaultPlan(
            name="p", seed=0,
            faults=(stall_fault(5, 10), storm_fault(3, 4)),
        )
        controller = FaultController(plan, devices={"sens1": device})
        scheduled = controller.attach(sim, cycles_per_slot=100)
        assert scheduled == 4
        sim.run(until=400)
        assert not device.stalled  # stall starts at slot 5 = t500
        sim.run(until=500)
        assert device.stalled
        sim.run(until=1500)
        assert not device.stalled
        assert controller.trace.count("activate") == 2

    def test_fault_edges_precede_same_time_events(self):
        """A workload event at the stall edge observes the stall."""
        sim = Simulator()
        device = IODevice("sens1")
        plan = FaultPlan(name="p", seed=0, faults=(stall_fault(5, 3),))
        controller = FaultController(plan, devices={"sens1": device})
        observed = []
        # Scheduled BEFORE attach: insertion order would run it first,
        # only the fault priority makes the toggle win the tie.
        sim.at(5, lambda: observed.append(device.stalled))
        controller.attach(sim, cycles_per_slot=1)
        sim.run()
        assert observed == [True]

    def test_past_edges_rejected(self):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.run()
        plan = FaultPlan(name="p", seed=0, faults=(stall_fault(5, 3),))
        controller = FaultController(
            plan, devices={"sens1": IODevice("sens1")}
        )
        with pytest.raises(Exception, match="past"):
            controller.attach(sim, cycles_per_slot=1)
