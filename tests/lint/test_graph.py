"""Call-graph construction tests: linking, re-exports, methods, cycles.

The fixture is an in-memory mini-package exercising every resolution
path the whole-program rules rely on: plain imports, ``__init__``
re-exports, method calls on scheduler-like classes (both ``self.`` and
through a constructed instance), and a module-level import cycle.  Edge
assertions are exact -- the graph is the foundation for IOL007/IOL009
and a silently dropped edge would silently drop findings.
"""

import ast
import time
from pathlib import Path

from repro.lint import CallGraph, LintConfig, lint_paths, summarize_module

REPO_ROOT = Path(__file__).resolve().parents[2]

MINI_PACKAGE = {
    "src/graphpkg/__init__.py": (
        "from graphpkg.sched import TableScheduler\n"
        "from graphpkg.util import helper as exported_helper\n"
    ),
    "src/graphpkg/util.py": (
        "def helper(x):\n"
        "    return x + 1\n"
        "\n"
        "\n"
        "def uses_helper(x):\n"
        "    return helper(x)\n"
    ),
    "src/graphpkg/sched.py": (
        "from graphpkg.util import helper\n"
        "\n"
        "\n"
        "class TableScheduler:\n"
        "    def plan(self, jobs):\n"
        "        return self.order(jobs)\n"
        "\n"
        "    def order(self, jobs):\n"
        "        return helper(len(jobs))\n"
        "\n"
        "\n"
        "def drive():\n"
        "    sched = TableScheduler()\n"
        "    return sched.plan([])\n"
    ),
    "src/graphpkg/cli.py": (
        "import graphpkg\n"
        "from graphpkg.sched import drive\n"
        "\n"
        "\n"
        "def main():\n"
        "    graphpkg.exported_helper(1)\n"
        "    return drive()\n"
    ),
    # module-level import cycle: a <-> b
    "src/graphpkg/a.py": (
        "from graphpkg.b import beta\n"
        "\n"
        "\n"
        "def alpha():\n"
        "    return beta()\n"
    ),
    "src/graphpkg/b.py": (
        "from graphpkg.a import alpha\n"
        "\n"
        "\n"
        "def beta():\n"
        "    return 0\n"
        "\n"
        "\n"
        "def call_alpha():\n"
        "    return alpha()\n"
    ),
}


def build_graph(files=MINI_PACKAGE, config=None):
    cfg = config if config is not None else LintConfig()
    summaries = [
        summarize_module(rel_path, ast.parse(source), cfg)
        for rel_path, source in sorted(files.items())
    ]
    return CallGraph.build(summaries, cfg)


class TestMiniPackage:
    def test_plain_import_edge(self):
        graph = build_graph()
        assert graph.edges["graphpkg.util.uses_helper"] == (
            "graphpkg.util.helper",
        )

    def test_reexport_through_init(self):
        """graphpkg.exported_helper resolves through the __init__ alias."""
        graph = build_graph()
        assert "graphpkg.util.helper" in graph.edges["graphpkg.cli.main"]
        assert "graphpkg.sched.drive" in graph.edges["graphpkg.cli.main"]

    def test_self_method_call(self):
        graph = build_graph()
        assert graph.edges["graphpkg.sched.TableScheduler.plan"] == (
            "graphpkg.sched.TableScheduler.order",
        )

    def test_method_call_through_instance_var(self):
        """drive() constructs a scheduler and calls .plan on the variable."""
        graph = build_graph()
        assert (
            "graphpkg.sched.TableScheduler.plan"
            in graph.edges["graphpkg.sched.drive"]
        )

    def test_method_body_calls_imported_function(self):
        graph = build_graph()
        assert graph.edges["graphpkg.sched.TableScheduler.order"] == (
            "graphpkg.util.helper",
        )

    def test_import_cycle_terminates_and_links(self):
        """a <-> b import each other; both edges must still resolve."""
        graph = build_graph()
        assert graph.edges["graphpkg.a.alpha"] == ("graphpkg.b.beta",)
        assert graph.edges["graphpkg.b.call_alpha"] == ("graphpkg.a.alpha",)

    def test_every_function_is_registered(self):
        graph = build_graph()
        for qualname in (
            "graphpkg.util.helper",
            "graphpkg.util.uses_helper",
            "graphpkg.sched.TableScheduler.plan",
            "graphpkg.sched.TableScheduler.order",
            "graphpkg.sched.drive",
            "graphpkg.cli.main",
            "graphpkg.a.alpha",
            "graphpkg.b.beta",
            "graphpkg.b.call_alpha",
        ):
            assert qualname in graph.functions, qualname

    def test_reachability_crosses_modules(self):
        graph = build_graph()
        reached = graph.reachable_from(["graphpkg.cli.main"])
        assert "graphpkg.util.helper" in reached
        assert "graphpkg.sched.TableScheduler.order" in reached
        # the a/b cycle is not reachable from cli.main
        assert "graphpkg.a.alpha" not in reached

    def test_chain_is_shortest_and_deterministic(self):
        graph = build_graph()
        reached = graph.reachable_from(["graphpkg.cli.main"])
        chain = graph.chain_to(reached, "graphpkg.util.helper")
        assert chain[0] == "graphpkg.cli.main"
        assert chain[-1] == "graphpkg.util.helper"
        again = graph.chain_to(
            graph.reachable_from(["graphpkg.cli.main"]),
            "graphpkg.util.helper",
        )
        assert chain == again


class TestSelfResolution:
    """The graph must resolve nearly every intra-project call in src/repro."""

    def test_resolution_rate_on_shipped_tree(self):
        result = lint_paths(
            [str(REPO_ROOT / "src" / "repro")],
            config=LintConfig(root=str(REPO_ROOT)),
        )
        assert result.graph is not None
        stats = result.graph.stats
        assert stats.project_candidates > 1000, stats
        assert stats.resolution_rate >= 0.95, (
            f"resolved {stats.resolved}/{stats.project_candidates} "
            f"({stats.resolution_rate:.3f})"
        )

    def test_graph_build_under_two_seconds(self):
        """Acceptance benchmark: call-graph build < 2s on the shipped tree."""
        config = LintConfig(root=str(REPO_ROOT))
        files = {}
        for rel_path in sorted(
            p.relative_to(REPO_ROOT).as_posix()
            for p in (REPO_ROOT / "src" / "repro").rglob("*.py")
        ):
            files[rel_path] = (REPO_ROOT / rel_path).read_text()
        summaries = [
            summarize_module(rel_path, ast.parse(source), config)
            for rel_path, source in files.items()
        ]
        # iolint: disable=IOL003 -- benchmark wall-clock; measures the analyzer, not the sim
        started = time.perf_counter()
        graph = CallGraph.build(summaries, config)
        # iolint: disable=IOL003 -- benchmark wall-clock; measures the analyzer, not the sim
        elapsed = time.perf_counter() - started
        assert graph.functions
        assert elapsed < 2.0, f"graph build took {elapsed:.3f}s"
