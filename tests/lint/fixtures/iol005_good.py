"""IOL005 fixture: digest-scope serialization with pinned key order."""
import hashlib
import json


def digest(payload) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def dump(payload, handle):
    json.dump(payload, handle, sort_keys=True)
