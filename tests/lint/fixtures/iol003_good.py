"""IOL003 fixture: every stochastic input flows from seeded streams."""
from repro.sim.rng import RandomSource, spawn_streams


def draw(seed: int) -> float:
    rng = RandomSource(seed, "fixture")
    return rng.random()  # method on a seeded stream, not the random module


def streams(seed: int):
    return spawn_streams(seed, ["workload", "jitter"])
