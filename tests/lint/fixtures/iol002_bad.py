"""IOL002 fixture: unordered set iteration leaking order."""
names = {"vm0", "vm1", "vm2"}

for name in names:                                     # line 4: bare set
    print(name)

listed = list({"a", "b"})                              # line 7: list(set)

squares = [n for n in set(range(4))]                   # line 9: comprehension

merged = names | {"vm3"}
for name in merged:                                    # line 12: set algebra
    print(name)
