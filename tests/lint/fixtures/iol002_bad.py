"""IOL002 fixture: unordered set iteration leaking order."""
names = {"vm0", "vm1", "vm2"}

for name in names:                                     # line 4: bare set
    print(name)

listed = list({"a", "b"})                              # line 7: list(set)

squares = [n for n in set(range(4))]                   # line 9: comprehension

merged = names | {"vm3"}
for name in merged:                                    # line 12: set algebra
    print(name)


def branch_rebound(cond, items):
    ids = list(items)
    if cond:
        ids = set(items)
    for vm in ids:                                     # line 20: set on one path
        print(vm)


def loop_carried(rows):
    seen = []
    for row in rows:
        for key in seen:                               # line 27: set after iter 1
            print(key)
        seen = set(row)
