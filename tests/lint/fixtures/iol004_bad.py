"""IOL004 fixture: floats leaking into slot math (slot-scope module)."""
supply = 10
demand = 3


def check(budget_slots):
    if budget_slots == 2.5:                            # line 7: float ==
        return False
    return supply / demand == 3.4                      # line 9: division ==


def reserve(run_slots, table):
    table.run_slots(7.5)                               # line 13: float arg
    table.reserve_slots(supply / 2)                    # line 14: division arg
