"""IOL001 fixture: every way id() can poison keys and ordering."""
import heapq

table = {}
job = object()
seq = 7
table[id(job)] = seq                                   # line 7: subscript key
hit = table.get(id(job))                               # line 8: .get probe
present = id(job) in table                             # line 9: membership
ordered = sorted([job], key=lambda j: (0, id(j)))      # line 10: tie-break
heap = []
heapq.heappush(heap, (0, id(job), job))                # line 12: heap entry
