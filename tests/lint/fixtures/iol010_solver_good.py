"""IOL010 fixture: solver dispatch resolved through the SOLVERS registry."""
from repro.synth.solvers import resolve_solver


def choose(tasks, solver=None):
    if resolve_solver(solver) == "ortools":
        return 0
    return 1


def run(tasks, solver=None):
    return tasks


def drive(tasks):
    return run(tasks, solver="python")
