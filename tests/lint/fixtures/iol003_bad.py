"""IOL003 fixture: ambient entropy and wall clocks."""
import os
import random                                          # line 3: random import
import time
import uuid
from datetime import datetime

value = random.random()
stamp = time.time()                                    # line 9: wall clock
token = os.urandom(8)                                  # line 10: entropy
ident = uuid.uuid4()                                   # line 11: entropy
now = datetime.now()                                   # line 12: wall clock
