"""IOL004 fixture: float event times flowing into trace recorders."""


def emit(trace, recorder, slot):
    trace.record(1.5, "grant", "gsched")               # line 5: float literal
    recorder.record(slot / 2, "stage", "lsched")       # line 6: division
    trace.record(time=3.25, category="x", source="s")  # line 7: float kwarg
    self_trace = trace
    self_trace.record(slot * 0.5, "fire", "pchannel")  # line 9: float product
