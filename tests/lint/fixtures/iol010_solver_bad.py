"""IOL010 fixture: solver dispatch bypassing the SOLVERS registry."""
from repro.synth.solvers import resolve_solver


def pick(tasks, solver=None):
    if solver == "python":                       # line 6: raw param compare
        return 0
    return 1


def choose(tasks, solver=None):
    if resolve_solver(solver) == "gurobi":       # line 12: unknown literal
        return 0
    return 1


def run(tasks, solver=None):
    return tasks


def drive(tasks):
    return run(tasks, solver="cplex")            # line 22: unknown kwarg
