"""IOL004 fixture: integer slot math behind as_slot_count boundaries."""
from repro.core.timeslot import as_slot_count

supply = 10
demand = 3


def check(budget_slots):
    if budget_slots == 2:
        return False
    return supply // demand == 3


def reserve(table, cycles, cycles_per_slot):
    table.run_slots(as_slot_count(cycles / cycles_per_slot))
    table.reserve_slots(supply // 2)
