"""IOL006 fixture: per-call and per-instance state ownership."""
from typing import List, Optional


def enqueue(job, queue: Optional[List] = None):
    if queue is None:
        queue = []
    queue.append(job)
    return queue


class RSchedScheduler:
    __slots__ = ["backlog", "quotas"]  # dunder lists are effectively const
    quantum = 4  # immutable class attribute: fine

    def __init__(self):
        self.backlog = []
        self.quotas = {}

    def admit(self, job):
        self.backlog.append(job)
