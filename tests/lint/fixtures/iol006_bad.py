"""IOL006 fixture: shared mutable state in scheduler/pool classes."""


def enqueue(job, queue=[]):                            # line 4: mutable default
    queue.append(job)
    return queue


def tally(job, counts={}):                             # line 9: mutable default
    counts[job] = counts.get(job, 0) + 1
    return counts


class RSchedScheduler:
    backlog = []                                       # line 15: shared list
    quotas: dict = {}                                  # line 16: shared dict

    def admit(self, job):
        self.backlog.append(job)
