"""IOL004 fixture: integer event times at the recorder boundary."""
from repro.core.timeslot import as_slot_count


def emit(trace, recorder, slot, cycles, cycles_per_slot):
    trace.record(slot, "grant", "gsched")
    recorder.record(slot + 1, "stage", "lsched")
    trace.record(as_slot_count(cycles / cycles_per_slot), "fire", "pchannel")
    # Non-recorder .record() calls take whatever their API says.
    metrics = trace
    metrics_sink = metrics
    del metrics_sink
