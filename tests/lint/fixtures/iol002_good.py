"""IOL002 fixture: sorted views and ordered containers."""
names = {"vm0", "vm1", "vm2"}

for name in sorted(names):
    print(name)

listed = sorted({"a", "b"})

ordered_names = ["vm0", "vm1", "vm2"]
for name in ordered_names:
    print(name)


def local_scope_is_isolated():
    # `names` here is a list; the module-level set must not poison it
    names = ["x", "y"]
    for name in names:
        print(name)


def sorted_rebind_launders(items):
    # rebinding to sorted(...) turns the set into a list; iterating the
    # rebound name is fine
    pending = set(items)
    pending = sorted(pending)
    for item in pending:
        print(item)


def both_branches_rebind(cond, items):
    ids = set(items)
    if cond:
        ids = sorted(ids)
    else:
        ids = list(items)
    for vm in ids:
        print(vm)
