"""IOL002 fixture: sorted views and ordered containers."""
names = {"vm0", "vm1", "vm2"}

for name in sorted(names):
    print(name)

listed = sorted({"a", "b"})

ordered_names = ["vm0", "vm1", "vm2"]
for name in ordered_names:
    print(name)


def local_scope_is_isolated():
    # `names` here is a list; the module-level set must not poison it
    names = ["x", "y"]
    for name in names:
        print(name)
