"""Suppression fixture: justified opt-outs are honored, silent ones not."""
table = {}
obj = object()

table[id(obj)] = 1  # iolint: disable=IOL001 -- debug map, never ordering

# iolint: disable=IOL002 -- result feeds a commutative sum only
total = sum(x for x in {1, 2, 3})

table[id(obj)] = 2  # iolint: disable=IOL001
