"""IOL005 fixture: digest-scope serialization with loose key order."""
import hashlib
import json


def digest(payload) -> str:
    text = json.dumps(payload)                         # line 7: no sort_keys
    return hashlib.sha256(text.encode()).hexdigest()


def dump(payload, handle, pin):
    json.dump(payload, handle, sort_keys=pin)          # line 12: not literal
