"""IOL001 fixture: monotonic handles instead of object ids."""
import heapq
import itertools

_sequence = itertools.count()

table = {}
job = object()
seq = next(_sequence)
table[seq] = job
ordered = sorted(table.items(), key=lambda entry: entry[0])
heap = []
heapq.heappush(heap, (0, seq, job))
debug_label = f"job@{id(job):#x}"  # id() in a repr is fine: never a key
