"""v2 engine tests: parallel phase-1, AST cache, and SARIF output."""

import json

import pytest

from repro.lint import Baseline, LintConfig, lint_paths
from repro.lint.cli import main
from repro.lint.engine import resolve_jobs
from repro.lint.formatters import format_sarif

TREE = {
    "src/pkg/bad.py": (
        "table = {}\n"
        "obj = object()\n"
        "table[id(obj)] = 1\n"
    ),
    "src/pkg/sets.py": (
        "names = {'a', 'b'}\n"
        "for n in names:\n"
        "    print(n)\n"
    ),
    "src/pkg/suppressed.py": (
        "import time\n"
        "t = time.time()  # iolint: disable=IOL003 -- host-side only\n"
    ),
    "src/pkg/clean.py": "x = 1\n",
}


def write_tree(tmp_path):
    for rel_path, source in TREE.items():
        target = tmp_path / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


class TestParallelPhase1:
    def test_jobs_output_is_byte_identical(self, tmp_path, capsys):
        """Acceptance criterion: --jobs 2 output == serial output."""
        write_tree(tmp_path)
        code_serial = main(
            ["--root", str(tmp_path), "--no-cache", "--jobs", "1", "src"]
        )
        serial = capsys.readouterr().out
        code_parallel = main(
            ["--root", str(tmp_path), "--no-cache", "--jobs", "2", "src"]
        )
        parallel = capsys.readouterr().out
        assert code_serial == code_parallel == 1
        assert parallel == serial

    def test_jobs_findings_match_lint_paths(self, tmp_path):
        write_tree(tmp_path)
        config = LintConfig(root=str(tmp_path))
        serial = lint_paths([str(tmp_path / "src")], config=config, jobs=1)
        parallel = lint_paths([str(tmp_path / "src")], config=config, jobs=2)
        assert [f.to_dict() for f in serial.findings] == [
            f.to_dict() for f in parallel.findings
        ]
        assert serial.files_checked == parallel.files_checked == len(TREE)

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == 1
        assert resolve_jobs(-2) == 1
        assert resolve_jobs(0) >= 1


class TestAstCache:
    def test_second_run_hits_cache_with_same_findings(self, tmp_path):
        write_tree(tmp_path)
        config = LintConfig(root=str(tmp_path))
        cache_dir = str(tmp_path / ".iolint-cache")
        cold = lint_paths(
            [str(tmp_path / "src")], config=config, cache_dir=cache_dir
        )
        warm = lint_paths(
            [str(tmp_path / "src")], config=config, cache_dir=cache_dir
        )
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(TREE)
        assert warm.cache_hits == len(TREE)
        assert warm.cache_misses == 0
        assert [f.to_dict() for f in cold.findings] == [
            f.to_dict() for f in warm.findings
        ]

    def test_edited_file_invalidates_only_itself(self, tmp_path):
        write_tree(tmp_path)
        config = LintConfig(root=str(tmp_path))
        cache_dir = str(tmp_path / ".iolint-cache")
        lint_paths([str(tmp_path / "src")], config=config, cache_dir=cache_dir)
        (tmp_path / "src/pkg/clean.py").write_text("x = 2\n")
        result = lint_paths(
            [str(tmp_path / "src")], config=config, cache_dir=cache_dir
        )
        assert result.cache_misses == 1
        assert result.cache_hits == len(TREE) - 1

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        write_tree(tmp_path)
        config = LintConfig(root=str(tmp_path))
        cache_dir = tmp_path / ".iolint-cache"
        lint_paths(
            [str(tmp_path / "src")], config=config, cache_dir=str(cache_dir)
        )
        for entry in cache_dir.iterdir():
            entry.write_bytes(b"not a pickle")
        result = lint_paths(
            [str(tmp_path / "src")], config=config, cache_dir=str(cache_dir)
        )
        assert result.cache_hits == 0
        assert result.cache_misses == len(TREE)
        assert result.exit_code == 1

    def test_parallel_run_uses_cache(self, tmp_path):
        write_tree(tmp_path)
        config = LintConfig(root=str(tmp_path))
        cache_dir = str(tmp_path / ".iolint-cache")
        lint_paths(
            [str(tmp_path / "src")], config=config, cache_dir=cache_dir, jobs=2
        )
        warm = lint_paths(
            [str(tmp_path / "src")], config=config, cache_dir=cache_dir, jobs=2
        )
        assert warm.cache_hits == len(TREE)


class TestSarif:
    def result(self, tmp_path):
        write_tree(tmp_path)
        config = LintConfig(root=str(tmp_path))
        return lint_paths([str(tmp_path / "src")], config=config)

    def test_sarif_is_valid_and_byte_stable(self, tmp_path):
        result = self.result(tmp_path)
        text = format_sarif(result)
        assert format_sarif(result) == text
        doc = json.loads(text)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"IOL001", "IOL002", "IOL007", "IOL008"} <= rule_ids

    def test_sarif_results_carry_fingerprints_and_suppressions(self, tmp_path):
        result = self.result(tmp_path)
        doc = json.loads(format_sarif(result))
        results = doc["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        assert "IOL001" in by_rule and "IOL002" in by_rule
        for entry in results:
            assert entry["partialFingerprints"]["iolintFingerprint/v1"]
        suppressed = by_rule["IOL003"]
        assert suppressed["suppressions"][0]["kind"] == "inSource"
        assert "host-side only" in suppressed["suppressions"][0]["justification"]

    def test_cli_sarif_format(self, tmp_path, capsys):
        write_tree(tmp_path)
        code = main(
            ["--root", str(tmp_path), "--format=sarif", "--no-cache", "src"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["runs"][0]["results"]

    def test_baselined_findings_downgraded_to_note(self, tmp_path, capsys):
        write_tree(tmp_path)
        assert main(["--root", str(tmp_path), "--write-baseline", "src"]) == 0
        capsys.readouterr()
        assert main(["--root", str(tmp_path), "--format=sarif", "src"]) == 0
        doc = json.loads(capsys.readouterr().out)
        errors = [
            r
            for r in doc["runs"][0]["results"]
            if r["level"] == "error" and not r.get("suppressions")
        ]
        assert errors == []


class TestProfileOutput:
    def test_profile_lists_phases(self, tmp_path, capsys):
        write_tree(tmp_path)
        main(["--root", str(tmp_path), "--profile", "--no-cache", "src"])
        out = capsys.readouterr().out
        assert "parse" in out
        assert "call-graph build" in out
        assert "whole-program rules" in out

    def test_stats_lists_per_rule_seconds(self, tmp_path, capsys):
        write_tree(tmp_path)
        main(["--root", str(tmp_path), "--stats", "--no-cache", "src"])
        out = capsys.readouterr().out
        assert "seconds" in out
        assert "IOL001" in out


@pytest.mark.parametrize("jobs", [1, 2])
def test_baseline_respected_under_jobs(tmp_path, capsys, jobs):
    write_tree(tmp_path)
    assert main(["--root", str(tmp_path), "--write-baseline", "src"]) == 0
    capsys.readouterr()
    assert (
        main(["--root", str(tmp_path), "--jobs", str(jobs), "src"]) == 0
    )
    baseline = Baseline.load(tmp_path / "iolint-baseline.json")
    assert len(baseline) > 0
