"""Whole-program rule tests: IOL007-IOL010 over in-memory projects.

Each fixture is a multi-module project dict fed through
:func:`repro.lint.lint_sources` with the file-local rules disabled, so
the assertions isolate exactly one inter-procedural rule.  The
regression classes mirror ``TestRegressionGuards``: they strip the
shipped overflow guards back out of the real kernels and prove IOL008
still catches the original code.
"""

from pathlib import Path

from repro.lint import LintConfig, lint_sources
from repro.lint.program_rules import (
    EngineParityRule,
    EntropyTaintRule,
    Int64OverflowRule,
    RunnerClosureRule,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_rule(files, rule, config=None):
    findings = lint_sources(
        files, config=config, rules=(), program_rules=(rule,)
    )
    return [f for f in findings if f.active]


def locations(findings):
    return [(f.path, f.line, f.rule_id) for f in findings]


class TestIOL007EntropyTaint:
    PROJECT = {
        "src/repro/obs/export.py": (
            "from repro.exp.work import compute\n"
            "\n"
            "\n"
            "def export_table():\n"
            "    return compute()\n"
        ),
        "src/repro/exp/work.py": (
            "from repro.exp.util import stamp\n"
            "\n"
            "\n"
            "def compute():\n"
            "    return stamp()\n"
        ),
        "src/repro/exp/util.py": (
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
    }

    def test_transitive_entropy_flagged_at_site(self):
        findings = run_rule(self.PROJECT, EntropyTaintRule())
        assert locations(findings) == [("src/repro/exp/util.py", 5, "IOL007")]

    def test_message_carries_the_chain(self):
        (finding,) = run_rule(self.PROJECT, EntropyTaintRule())
        assert "export_table" in finding.message
        assert "->" in finding.message
        assert "time.time" in finding.message

    def test_unreachable_entropy_is_clean(self):
        project = dict(self.PROJECT)
        # sever the export -> work edge; stamp() is no longer reachable
        project["src/repro/obs/export.py"] = (
            "def export_table():\n    return 0\n"
        )
        assert run_rule(project, EntropyTaintRule()) == []

    def test_rng_allowlist_module_exempt(self):
        project = {
            "src/repro/obs/export.py": (
                "from repro.sim.rng import reseed\n"
                "\n"
                "\n"
                "def export_table():\n"
                "    return reseed()\n"
            ),
            "src/repro/sim/rng.py": (
                "import os\n"
                "\n"
                "\n"
                "def reseed():\n"
                "    return os.urandom(8)\n"
            ),
        }
        assert run_rule(project, EntropyTaintRule()) == []

    def test_name_marker_roots_outside_digest_modules(self):
        project = {
            "src/repro/core/table.py": (
                "import time\n"
                "\n"
                "\n"
                "def canonical_form(rows):\n"
                "    return (time.monotonic(), rows)\n"
            ),
        }
        findings = run_rule(project, EntropyTaintRule())
        assert locations(findings) == [("src/repro/core/table.py", 5, "IOL007")]


class TestIOL008Int64Overflow:
    def test_tainted_product_flagged(self):
        project = {
            "src/repro/analysis/kern.py": (
                "import numpy as np\n"
                "\n"
                "\n"
                "def grid_demand(periods, horizon):\n"
                "    steps = np.asarray(periods)\n"
                "    return steps * horizon\n"
            ),
        }
        findings = run_rule(project, Int64OverflowRule())
        assert locations(findings) == [("src/repro/analysis/kern.py", 6, "IOL008")]
        assert "product" in findings[0].message

    def test_tainted_cumsum_flagged(self):
        project = {
            "src/repro/analysis/kern.py": (
                "import numpy as np\n"
                "\n"
                "\n"
                "def total_demand(horizon):\n"
                "    demands = np.arange(horizon)\n"
                "    return np.cumsum(demands)\n"
            ),
        }
        findings = run_rule(project, Int64OverflowRule())
        assert locations(findings) == [("src/repro/analysis/kern.py", 6, "IOL008")]
        assert "cumsum" in findings[0].message

    def test_cap_guard_forgives_hazards(self):
        project = {
            "src/repro/analysis/kern.py": (
                "import numpy as np\n"
                "\n"
                "GRID_CAP = 1 << 40\n"
                "\n"
                "\n"
                "def grid_demand(periods, horizon):\n"
                "    if horizon > GRID_CAP:\n"
                "        raise OverflowError('horizon too large')\n"
                "    return np.asarray(periods) * horizon\n"
            ),
        }
        assert run_rule(project, Int64OverflowRule()) == []

    def test_untainted_product_is_clean(self):
        project = {
            "src/repro/analysis/kern.py": (
                "import numpy as np\n"
                "\n"
                "\n"
                "def scale(values, factor):\n"
                "    return np.asarray(values) * factor\n"
            ),
        }
        assert run_rule(project, Int64OverflowRule()) == []

    def test_out_of_scope_module_is_clean(self):
        project = {
            "src/repro/sim/kern.py": (
                "import numpy as np\n"
                "\n"
                "\n"
                "def grid_demand(periods, horizon):\n"
                "    return np.asarray(periods) * horizon\n"
            ),
        }
        assert run_rule(project, Int64OverflowRule()) == []

    def test_pure_python_module_is_clean(self):
        """No numpy import -> Python ints cannot wrap, rule stays quiet."""
        project = {
            "src/repro/analysis/kern.py": (
                "def grid_demand(periods, horizon):\n"
                "    return [p * horizon for p in periods]\n"
            ),
        }
        assert run_rule(project, Int64OverflowRule()) == []


RUNNER_MODULE = (
    "class ExperimentRunner:\n"
    "    def map(self, fn, cells):\n"
    "        return [fn(c) for c in cells]\n"
)


class TestIOL009RunnerClosure:
    def project(self, sweep_source):
        return {
            "src/repro/exp/runner.py": RUNNER_MODULE,
            "src/repro/exp/sweep.py": sweep_source,
        }

    def test_lambda_rejected(self):
        project = self.project(
            "from repro.exp.runner import ExperimentRunner\n"
            "\n"
            "\n"
            "def sweep(cells):\n"
            "    runner = ExperimentRunner()\n"
            "    return runner.map(lambda c: c + 1, cells)\n"
        )
        findings = run_rule(project, RunnerClosureRule())
        assert locations(findings) == [("src/repro/exp/sweep.py", 6, "IOL009")]
        assert "lambda" in findings[0].message

    def test_nested_closure_rejected(self):
        project = self.project(
            "from repro.exp.runner import ExperimentRunner\n"
            "\n"
            "\n"
            "def sweep(cells, scale):\n"
            "    runner = ExperimentRunner()\n"
            "\n"
            "    def worker(c):\n"
            "        return c * scale\n"
            "\n"
            "    return runner.map(worker, cells)\n"
        )
        findings = run_rule(project, RunnerClosureRule())
        assert locations(findings) == [("src/repro/exp/sweep.py", 10, "IOL009")]
        assert "scale" in findings[0].message

    def test_mutable_global_read_rejected(self):
        project = self.project(
            "from repro.exp.runner import ExperimentRunner\n"
            "\n"
            "_CACHE = {}\n"
            "\n"
            "\n"
            "def cell(c):\n"
            "    return _CACHE.get(c)\n"
            "\n"
            "\n"
            "def sweep(cells):\n"
            "    runner = ExperimentRunner()\n"
            "    return runner.map(cell, cells)\n"
        )
        findings = run_rule(project, RunnerClosureRule())
        assert locations(findings) == [("src/repro/exp/sweep.py", 12, "IOL009")]
        assert "_CACHE" in findings[0].message

    def test_whitelisted_global_read_allowed(self):
        project = self.project(
            "from repro.exp.runner import ExperimentRunner\n"
            "\n"
            "_CACHE = {}\n"
            "\n"
            "\n"
            "def cell(c):\n"
            "    return _CACHE.get(c)\n"
            "\n"
            "\n"
            "def sweep(cells):\n"
            "    runner = ExperimentRunner()\n"
            "    return runner.map(cell, cells)\n"
        )
        config = LintConfig(runner_shared_whitelist=("_CACHE",))
        assert run_rule(project, RunnerClosureRule(), config=config) == []

    def test_global_write_rejected(self):
        project = self.project(
            "from repro.exp.runner import ExperimentRunner\n"
            "\n"
            "\n"
            "def cell(c):\n"
            "    global _COUNT\n"
            "    _COUNT = c\n"
            "    return c\n"
            "\n"
            "\n"
            "def sweep(cells):\n"
            "    runner = ExperimentRunner()\n"
            "    return runner.map(cell, cells)\n"
        )
        findings = run_rule(project, RunnerClosureRule())
        assert locations(findings) == [("src/repro/exp/sweep.py", 12, "IOL009")]
        assert "_COUNT" in findings[0].message

    def test_clean_module_level_worker(self):
        project = self.project(
            "from repro.exp.runner import ExperimentRunner\n"
            "\n"
            "\n"
            "def cell(c):\n"
            "    return c * 2\n"
            "\n"
            "\n"
            "def sweep(cells):\n"
            "    runner = ExperimentRunner()\n"
            "    return runner.map(cell, cells)\n"
        )
        assert run_rule(project, RunnerClosureRule()) == []


ENGINE_REGISTRY = 'ENGINES = ("scalar", "vectorized", "batched")\n'


class TestIOL010EngineParity:
    def project(self, source):
        return {
            "src/repro/analysis/engine.py": ENGINE_REGISTRY,
            "src/repro/analysis/pick.py": source,
        }

    def test_raw_param_compare_flagged(self):
        project = self.project(
            "def decide(tasks, engine=None):\n"
            '    if engine == "scalar":\n'
            "        return 0\n"
            "    return 1\n"
        )
        findings = run_rule(project, EngineParityRule())
        assert locations(findings) == [("src/repro/analysis/pick.py", 2, "IOL010")]
        assert "resolve_engine" in findings[0].message

    def test_resolved_compare_against_registry_member_allowed(self):
        project = self.project(
            "from repro.analysis.engine import resolve_engine\n"
            "\n"
            "\n"
            "def decide(tasks, engine=None):\n"
            '    if resolve_engine(engine) == "scalar":\n'
            "        return 0\n"
            "    return 1\n"
        )
        assert run_rule(project, EngineParityRule()) == []

    def test_resolved_compare_against_unknown_literal_flagged(self):
        project = self.project(
            "from repro.analysis.engine import resolve_engine\n"
            "\n"
            "\n"
            "def decide(tasks, engine=None):\n"
            '    if resolve_engine(engine) == "warp":\n'
            "        return 0\n"
            "    return 1\n"
        )
        findings = run_rule(project, EngineParityRule())
        assert locations(findings) == [("src/repro/analysis/pick.py", 5, "IOL010")]
        assert "warp" in findings[0].message

    def test_unknown_engine_kwarg_flagged(self):
        project = self.project(
            "def run(tasks, engine=None):\n"
            "    return tasks\n"
            "\n"
            "\n"
            "def drive(tasks):\n"
            '    return run(tasks, engine="warp")\n'
        )
        findings = run_rule(project, EngineParityRule())
        assert locations(findings) == [("src/repro/analysis/pick.py", 6, "IOL010")]

    def test_known_engine_kwarg_allowed(self):
        project = self.project(
            "def run(tasks, engine=None):\n"
            "    return tasks\n"
            "\n"
            "\n"
            "def drive(tasks):\n"
            '    return run(tasks, engine="vectorized")\n'
        )
        assert run_rule(project, EngineParityRule()) == []


SOLVER_REGISTRY = 'SOLVERS = ("python", "ortools")\n'
FIXTURES = Path(__file__).parent / "fixtures"


class TestIOL010SolverParity:
    """IOL010's second dispatch surface: the synthesis SOLVERS registry."""

    def project(self, source):
        return {
            "src/repro/synth/solvers.py": SOLVER_REGISTRY,
            "src/repro/synth/pick.py": source,
        }

    def fixture_project(self, name):
        return self.project((FIXTURES / name).read_text(encoding="utf-8"))

    def test_bad_fixture_every_site(self):
        findings = run_rule(
            self.fixture_project("iol010_solver_bad.py"), EngineParityRule()
        )
        assert locations(findings) == [
            ("src/repro/synth/pick.py", 6, "IOL010"),
            ("src/repro/synth/pick.py", 12, "IOL010"),
            ("src/repro/synth/pick.py", 22, "IOL010"),
        ]
        assert "resolve_solver" in findings[0].message
        assert "gurobi" in findings[1].message
        assert "SOLVERS" in findings[2].message

    def test_good_fixture_clean(self):
        assert (
            run_rule(
                self.fixture_project("iol010_solver_good.py"),
                EngineParityRule(),
            )
            == []
        )

    def test_solver_surface_independent_of_engine_registry(self):
        # No ENGINES module in the project: the solver checks still run.
        findings = run_rule(
            {
                "src/repro/synth/solvers.py": SOLVER_REGISTRY,
                "src/repro/synth/pick.py": (
                    "def decide(tasks, solver=None):\n"
                    '    if solver == "ortools":\n'
                    "        return 0\n"
                    "    return 1\n"
                ),
            },
            EngineParityRule(),
        )
        assert locations(findings) == [("src/repro/synth/pick.py", 2, "IOL010")]

    def test_shipped_synth_modules_clean(self):
        files = {}
        for rel in (
            "src/repro/synth/solvers.py",
            "src/repro/synth/table.py",
            "src/repro/exp/synth.py",
        ):
            files[rel] = (REPO_ROOT / rel).read_text(encoding="utf-8")
        findings = run_rule(files, EngineParityRule())
        assert findings == []


class TestShippedKernelRegressions:
    """Stripping the shipped guards must resurface the original findings.

    The overflow guards in ``vectorized.py``/``batched.py`` fix true
    positives IOL008 surfaced on first run (PR-3 pattern: every fixed
    site gets a test proving the rule catches the pre-fix code).
    """

    def _iol008(self, rel_path, source):
        findings = lint_sources(
            {rel_path: source}, rules=(), program_rules=(Int64OverflowRule(),)
        )
        return [f for f in findings if f.active and f.rule_id == "IOL008"]

    def test_step_points_guard_removal_detected(self):
        rel_path = "src/repro/analysis/vectorized.py"
        source = (REPO_ROOT / rel_path).read_text()
        assert self._iol008(rel_path, source) == []
        buggy = source.replace(
            "    if hi > INT64_SAFE_HORIZON:\n"
            "        raise OverflowError(\n"
            '            f"step-point range top {hi} exceeds the int64-safe cap "\n'
            '            f"{INT64_SAFE_HORIZON}; the start + k*period grid points "\n'
            '            f"would wrap in int64 -- use the exact (hyper-period) test"\n'
            "        )\n",
            "",
        )
        assert buggy != source
        hits = self._iol008(rel_path, buggy)
        assert hits, "IOL008 must fire once the guard is stripped"
        assert any("step_points_in_range" in f.message for f in hits)

    def test_tiling_guard_removal_detected(self):
        rel_path = "src/repro/analysis/batched.py"
        source = (REPO_ROOT / rel_path).read_text()
        assert self._iol008(rel_path, source) == []
        buggy = source.replace(
            "    if horizon > INT64_SAFE_HORIZON:\n"
            "        raise OverflowError(\n"
            '            f"tiling horizon {horizon} exceeds the int64-safe cap "\n'
            '            f"{INT64_SAFE_HORIZON}; hyperperiod*shift products would "\n'
            '            f"wrap in int64"\n'
            "        )\n",
            "",
        )
        assert buggy != source
        hits = self._iol008(rel_path, buggy)
        assert hits, "IOL008 must fire once the guard is stripped"
        assert any("_tiled" in f.message for f in hits)

    def test_raw_slack_suppression_removal_detected(self):
        """The two pure-Python suppressions are load-bearing, not decoration."""
        rel_path = "src/repro/analysis/batched.py"
        source = (REPO_ROOT / rel_path).read_text()
        lines = source.splitlines(keepends=True)
        kept = [
            line
            for line in lines
            if "iolint: disable=IOL008" not in line
        ]
        assert len(kept) < len(lines)
        hits = self._iol008(rel_path, "".join(kept))
        assert any("_raw_slack" in f.message for f in hits)
