"""Per-rule fixture tests: exact rule ids, exact line numbers.

Each IOL rule has a bad fixture (every finding asserted by line) and a
good fixture (zero findings).  Fixtures live under ``fixtures/`` which
the engine's default config excludes from production lint runs; the
tests feed them through :func:`lint_source` with a synthetic relative
path so scope-sensitive rules (IOL004 slot scope, IOL005 digest scope)
see the intended context.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.suppressions import META_RULE_ID

FIXTURES = Path(__file__).parent / "fixtures"


def run_fixture(name: str, rel_path: str = "src/repro/fixture.py"):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, rel_path, LintConfig())


def active(findings):
    return [f for f in findings if f.active]


def lines_of(findings, rule_id):
    return [f.line for f in active(findings) if f.rule_id == rule_id]


class TestIOL001:
    def test_bad_fixture_every_site(self):
        findings = run_fixture("iol001_bad.py")
        assert lines_of(findings, "IOL001") == [7, 8, 9, 10, 12]
        assert {f.rule_id for f in active(findings)} == {"IOL001"}

    def test_good_fixture_clean(self):
        assert active(run_fixture("iol001_good.py")) == []


class TestIOL002:
    def test_bad_fixture_every_site(self):
        findings = run_fixture("iol002_bad.py")
        assert lines_of(findings, "IOL002") == [4, 7, 9, 12, 20, 27]

    def test_good_fixture_clean(self):
        assert active(run_fixture("iol002_good.py")) == []


class TestIOL003:
    def test_bad_fixture_every_site(self):
        findings = run_fixture("iol003_bad.py")
        assert lines_of(findings, "IOL003") == [3, 9, 10, 11, 12]

    def test_good_fixture_clean(self):
        assert active(run_fixture("iol003_good.py")) == []

    def test_rng_module_is_allowlisted(self):
        source = "import random\nvalue = random.Random(1).random()\n"
        findings = lint_source(source, "src/repro/sim/rng.py", LintConfig())
        assert active(findings) == []
        flagged = lint_source(source, "src/repro/core/edf.py", LintConfig())
        assert lines_of(flagged, "IOL003") == [1]


class TestIOL004:
    def test_bad_fixture_every_site(self):
        findings = run_fixture("iol004_bad.py", "src/repro/core/fixture.py")
        assert lines_of(findings, "IOL004") == [7, 9, 13, 14]

    def test_good_fixture_clean(self):
        assert active(
            run_fixture("iol004_good.py", "src/repro/core/fixture.py")
        ) == []

    def test_float_eq_only_in_slot_scope(self):
        source = "tolerance = 0.5\nclose = tolerance == 0.5\n"
        outside = lint_source(source, "src/repro/metrics/stats.py", LintConfig())
        assert active(outside) == []
        inside = lint_source(source, "src/repro/core/edf.py", LintConfig())
        assert lines_of(inside, "IOL004") == [2]

    def test_trace_record_bad_fixture_every_site(self):
        # Trace-recorder event times are slot counts; the receiver-name
        # heuristic works outside the slot-scope prefixes too.
        findings = run_fixture(
            "iol004_trace_bad.py", "src/repro/obs/fixture.py"
        )
        assert lines_of(findings, "IOL004") == [5, 6, 7, 9]

    def test_trace_record_good_fixture_clean(self):
        assert active(
            run_fixture("iol004_trace_good.py", "src/repro/obs/fixture.py")
        ) == []

    def test_non_trace_receiver_record_not_flagged(self):
        source = "def f(metrics):\n    metrics.record(1.5, 'x')\n"
        findings = lint_source(
            source, "src/repro/metrics/stats.py", LintConfig()
        )
        assert active(findings) == []


class TestIOL005:
    def test_bad_fixture_every_site(self):
        findings = run_fixture("iol005_bad.py")
        assert lines_of(findings, "IOL005") == [7, 12]

    def test_good_fixture_clean(self):
        assert active(run_fixture("iol005_good.py")) == []

    def test_out_of_scope_module_not_flagged(self):
        source = "import json\ntext = json.dumps({'b': 1, 'a': 2})\n"
        findings = lint_source(source, "src/repro/metrics/stats.py", LintConfig())
        assert active(findings) == []

    def test_digest_filename_puts_module_in_scope(self):
        source = "import json\ntext = json.dumps({'b': 1})\n"
        findings = lint_source(source, "src/repro/faults/trace.py", LintConfig())
        assert lines_of(findings, "IOL005") == [2]


class TestIOL006:
    def test_bad_fixture_every_site(self):
        findings = run_fixture("iol006_bad.py")
        assert lines_of(findings, "IOL006") == [4, 9, 15, 16]

    def test_good_fixture_clean(self):
        assert active(run_fixture("iol006_good.py")) == []

    def test_dataclass_exempt_from_class_attr_check(self):
        source = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class JobPool:\n"
            "    jobs: list = field(default_factory=list)\n"
        )
        assert active(lint_source(source, "src/repro/core/pool.py")) == []

    def test_non_scheduler_class_attr_not_flagged(self):
        source = "class Palette:\n    colors = []\n"
        assert active(lint_source(source, "src/repro/core/palette.py")) == []


class TestSuppressions:
    def test_fixture_dispositions(self):
        findings = run_fixture("suppressed.py")
        by_line = {f.line: f for f in findings if f.rule_id == "IOL001"}
        assert by_line[5].suppressed
        assert by_line[5].justification == "debug map, never ordering"
        # line 10 has a justification-free disable: suppression refused
        assert by_line[10].active
        iol2 = [f for f in findings if f.rule_id == "IOL002"]
        assert len(iol2) == 1 and iol2[0].suppressed
        # and the malformed comment is itself reported
        meta = [f for f in findings if f.rule_id == META_RULE_ID]
        assert [f.line for f in meta] == [10]
        assert "justification" in meta[0].message

    def test_file_wide_suppression(self):
        source = (
            "# iolint: disable-file=IOL003 -- host timing only\n"
            "import time\n"
            "start = time.perf_counter()\n"
        )
        findings = lint_source(source, "src/repro/exp/x.py")
        assert all(f.suppressed for f in findings if f.rule_id == "IOL003")
        assert [f for f in findings if f.active] == []

    def test_unknown_rule_id_is_malformed(self):
        source = "x = 1  # iolint: disable=IOL999 -- because\n"
        findings = lint_source(source, "src/repro/exp/x.py")
        assert [f.rule_id for f in findings] == [META_RULE_ID]

    @pytest.mark.parametrize("name", ["iol001_bad.py", "iol002_bad.py"])
    def test_syntax_error_reported_as_meta(self, name):
        source = (FIXTURES / name).read_text() + "\ndef broken(:\n"
        findings = lint_source(source, "src/repro/fixture.py")
        assert [f.rule_id for f in findings] == [META_RULE_ID]
        assert "does not parse" in findings[0].message
