"""CLI, baseline, formatter and self-check tests for iolint."""

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import Baseline, LintConfig, lint_paths, lint_source
from repro.lint.cli import main
from repro.lint.engine import LintResult
from repro.lint.formatters import format_github, format_json, format_stats

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_MODULE = (
    "table = {}\n"
    "obj = object()\n"
    "table[id(obj)] = 1\n"
)


def write_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "src"
    pkg.mkdir()
    (pkg / "bad.py").write_text(BAD_MODULE)
    (pkg / "good.py").write_text("x = 1\n")
    return tmp_path


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        write_tree(tmp_path)
        code = main(["--root", str(tmp_path), "src"])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/bad.py:3" in out and "IOL001" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_tree(tmp_path)
        (tmp_path / "src" / "bad.py").unlink()
        assert main(["--root", str(tmp_path), "src"]) == 0

    def test_json_format(self, tmp_path, capsys):
        write_tree(tmp_path)
        code = main(["--root", str(tmp_path), "--format=json", "src"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        (finding,) = [f for f in payload["findings"] if not f["suppressed"]]
        assert finding["rule"] == "IOL001"
        assert finding["line"] == 3

    def test_github_format(self, tmp_path, capsys):
        write_tree(tmp_path)
        main(["--root", str(tmp_path), "--format=github", "src"])
        out = capsys.readouterr().out
        assert "::error file=src/bad.py,line=3,col=7,title=IOL001::" in out

    def test_baseline_roundtrip(self, tmp_path, capsys):
        write_tree(tmp_path)
        assert main(["--root", str(tmp_path), "--write-baseline", "src"]) == 0
        baseline = json.loads((tmp_path / "iolint-baseline.json").read_text())
        assert len(baseline["findings"]) == 1
        # baselined debt no longer fails the run...
        assert main(["--root", str(tmp_path), "src"]) == 0
        capsys.readouterr()
        # ...but a NEW finding still does, and --no-baseline sees everything
        (tmp_path / "src" / "worse.py").write_text(BAD_MODULE)
        assert main(["--root", str(tmp_path), "src"]) == 1
        capsys.readouterr()
        assert main(["--root", str(tmp_path), "--no-baseline", "src"]) == 1

    def test_baseline_survives_line_drift(self, tmp_path, capsys):
        write_tree(tmp_path)
        main(["--root", str(tmp_path), "--write-baseline", "src"])
        capsys.readouterr()
        shifted = "# a new comment line\n" + BAD_MODULE
        (tmp_path / "src" / "bad.py").write_text(shifted)
        assert main(["--root", str(tmp_path), "src"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 11):
            assert f"IOL{number:03d}" in out
        assert "(whole-program)" in out

    def test_stats_output(self, tmp_path, capsys):
        write_tree(tmp_path)
        main(["--root", str(tmp_path), "--stats", "src"])
        out = capsys.readouterr().out
        assert "IOL001" in out and "active" in out


class TestFormatters:
    def result(self) -> LintResult:
        result = LintResult(files_checked=1)
        result.findings = lint_source(BAD_MODULE, "src/bad.py", LintConfig())
        return result

    def test_json_is_byte_stable(self):
        assert format_json(self.result()) == format_json(self.result())

    def test_github_escapes_newlines(self):
        result = self.result()
        result.findings[0].message = "line1\nline2"
        assert "%0A" in format_github(result)

    def test_stats_totals(self):
        text = format_stats(self.result())
        assert text.splitlines()[-1].startswith("total")


class TestSelfCheck:
    """The analyzer must hold itself to its own contract."""

    def test_lint_package_is_clean(self):
        result = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "lint")],
            config=LintConfig(root=str(REPO_ROOT)),
        )
        assert result.files_checked >= 9
        assert result.active == [], [f.location() for f in result.active]

    def test_shipped_tree_is_clean(self):
        """Acceptance criterion: `python -m repro.lint src tests` exits 0."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestRegressionGuards:
    """Reintroducing PR-2's bugs must fail the lint run with the right rule."""

    def test_id_keyed_queue_state_detected(self):
        source = (REPO_ROOT / "src/repro/core/priority_queue.py").read_text()
        assert "id(job)" not in source.replace("``id(job)``", "")
        buggy = source.replace(
            "if self._handle_of(job) is not None:",
            "if id(job) in self._seq_of:",
        )
        assert buggy != source
        findings = lint_source(buggy, "src/repro/core/priority_queue.py")
        hits = [f for f in findings if f.active and f.rule_id == "IOL001"]
        assert len(hits) == 1
        assert "membership" in hits[0].message

    def test_unsorted_digest_dumps_detected(self):
        source = (REPO_ROOT / "src/repro/faults/plan.py").read_text()
        buggy = source.replace(
            'json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))',
            'json.dumps(self.to_dict(), separators=(",", ":"))',
        )
        assert buggy != source
        findings = lint_source(buggy, "src/repro/faults/plan.py")
        hits = [f for f in findings if f.active and f.rule_id == "IOL005"]
        assert len(hits) == 1


class TestBaselineDocument:
    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "iolint-baseline.json")
        assert len(baseline) == 0

    def test_save_is_sorted_and_stable(self, tmp_path):
        baseline = Baseline(entries={"bb": "y", "aa": "x"})
        path = baseline.save(tmp_path / "b.json")
        text = path.read_text()
        assert text.index('"aa"') < text.index('"bb"')
        assert baseline.save(tmp_path / "b2.json").read_text() == text
