"""Chain model structure and resolution."""

import pytest

from repro.chains.model import CauseEffectChain, validate_chains
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def _tasks():
    return TaskSet(
        [
            IOTask("rx", period=10, wcet=1, vm_id=0, device="ethernet0"),
            IOTask("proc", period=20, wcet=2, vm_id=1, device="io0"),
            IOTask("tx", period=20, wcet=1, vm_id=0, device="flexray0"),
        ],
        name="chainset",
    )


class TestCauseEffectChain:
    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError, match="no hops"):
            CauseEffectChain(name="empty", task_names=())

    def test_rejects_repeated_hop(self):
        with pytest.raises(ValueError, match="distinct"):
            CauseEffectChain(name="loop", task_names=("rx", "rx"))

    def test_resolves_hops_in_order(self):
        chain = CauseEffectChain("c", ("rx", "proc", "tx"))
        resolved = chain.resolve(_tasks())
        assert [task.name for task in resolved] == ["rx", "proc", "tx"]

    def test_unknown_hop_raises_with_context(self):
        chain = CauseEffectChain("c", ("rx", "ghost"))
        with pytest.raises(KeyError, match="ghost"):
            chain.resolve(_tasks())

    def test_devices_and_vms_follow_chain_order(self):
        chain = CauseEffectChain("c", ("rx", "proc", "tx"))
        assert chain.devices(_tasks()) == ["ethernet0", "io0", "flexray0"]
        assert chain.vm_ids(_tasks()) == [0, 1, 0]

    def test_len_and_iter(self):
        chain = CauseEffectChain("c", ("rx", "tx"))
        assert len(chain) == 2
        assert list(chain) == ["rx", "tx"]

    def test_summary_mentions_hops(self):
        chain = CauseEffectChain("c", ("rx", "tx"))
        assert "rx -> tx" in chain.summary()


class TestValidateChains:
    def test_duplicate_chain_names_rejected(self):
        chains = (
            CauseEffectChain("c", ("rx",)),
            CauseEffectChain("c", ("tx",)),
        )
        with pytest.raises(ValueError, match="duplicate chain name"):
            validate_chains(chains, _tasks())

    def test_all_chains_must_resolve(self):
        chains = (CauseEffectChain("c", ("rx", "nope")),)
        with pytest.raises(KeyError):
            validate_chains(chains, _tasks())

    def test_valid_set_passes(self):
        chains = (
            CauseEffectChain("c0", ("rx", "proc")),
            CauseEffectChain("c1", ("proc", "tx")),
        )
        validate_chains(chains, _tasks())
