"""Chain end-to-end bound composition."""

import pytest

from repro.analysis.response_time import response_time_bound
from repro.chains.analysis import analyze_chain, analyze_chain_set
from repro.chains.model import CauseEffectChain
from repro.core.gsched import ServerSpec
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def _two_hop():
    tasks = TaskSet(
        [
            IOTask("rx", period=10, wcet=2, vm_id=0, device="ethernet0"),
            IOTask("tx", period=20, wcet=3, vm_id=0, device="flexray0"),
        ],
        name="pair",
    )
    servers = {0: ServerSpec(0, 5, 5)}
    chain = CauseEffectChain("c", ("rx", "tx"))
    return chain, tasks, servers


class TestAnalyzeChain:
    def test_composes_per_hop_bounds(self):
        chain, tasks, servers = _two_hop()
        bound = analyze_chain(chain, tasks, servers)
        r_rx = response_time_bound(5, 5, tasks, "rx").wcrt
        r_tx = response_time_bound(5, 5, tasks, "tx").wcrt
        assert [hop.response_bound for hop in bound.hops] == [r_rx, r_tx]
        # Data age drops the last period; reaction pays every period.
        assert bound.data_age_bound == r_rx + r_tx + 10
        assert bound.reaction_time_bound == r_rx + r_tx + 10 + 20

    def test_reaction_exceeds_age_by_last_period(self):
        chain, tasks, servers = _two_hop()
        bound = analyze_chain(chain, tasks, servers)
        assert (
            bound.reaction_time_bound - bound.data_age_bound
            == bound.hops[-1].period
        )

    def test_predefined_hop_uses_table_placement_bound(self):
        tasks = TaskSet(
            [
                IOTask(
                    "ptask",
                    period=10,
                    wcet=1,
                    kind=TaskKind.PREDEFINED,
                    vm_id=0,
                ),
                IOTask("run", period=10, wcet=1, vm_id=0),
            ]
        )
        servers = {0: ServerSpec(0, 5, 4)}
        chain = CauseEffectChain("c", ("ptask", "run"))
        bound = analyze_chain(chain, tasks, servers)
        assert bound.hops[0].channel == "predefined"
        assert bound.hops[0].response_bound == 10  # R = D for the table
        assert bound.hops[1].channel == "runtime"

    def test_starved_hop_yields_unbounded_chain(self):
        tasks = TaskSet(
            [
                # Demands 6 slots in a 10-slot deadline from a server
                # guaranteeing only 1 in 10: the WCRT iteration diverges.
                IOTask("hungry", period=10, wcet=6, vm_id=0),
            ]
        )
        servers = {0: ServerSpec(0, 10, 1)}
        chain = CauseEffectChain("c", ("hungry",))
        bound = analyze_chain(chain, tasks, servers)
        assert not bound.bounded
        assert bound.data_age_bound is None
        assert bound.reaction_time_bound is None
        assert "unbounded" in bound.summary()

    def test_missing_server_raises(self):
        chain, tasks, _ = _two_hop()
        with pytest.raises(KeyError, match="no server"):
            analyze_chain(chain, tasks, {3: ServerSpec(3, 5, 5)})

    def test_engines_agree(self):
        chain, tasks, servers = _two_hop()
        scalar = analyze_chain(chain, tasks, servers, engine="scalar")
        vectorized = analyze_chain(chain, tasks, servers, engine="vectorized")
        assert scalar == vectorized


class TestAnalyzeChainSet:
    def test_keyed_by_chain_name(self):
        chain, tasks, servers = _two_hop()
        other = CauseEffectChain("d", ("tx",))
        bounds = analyze_chain_set((chain, other), tasks, servers)
        assert set(bounds) == {"c", "d"}
        assert bounds["d"].data_age_bound == bounds["d"].hops[0].response_bound

    def test_single_hop_age_has_no_period_term(self):
        chain, tasks, servers = _two_hop()
        solo = CauseEffectChain("solo", ("rx",))
        bound = analyze_chain(solo, tasks, servers)
        r_rx = response_time_bound(5, 5, tasks, "rx").wcrt
        assert bound.data_age_bound == r_rx
        assert bound.reaction_time_bound == r_rx + 10
