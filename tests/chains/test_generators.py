"""Chain workload generation: structure and determinism."""

import pytest

from repro.chains.generators import (
    WATERS_PERIOD_SHARES,
    WATERS_PERIODS_MS,
    ChainWorkloadConfig,
    generate_chain_workload,
)
from repro.tasks.task import TaskKind

SMALL = ChainWorkloadConfig(
    chain_count=4,
    hops_min=2,
    hops_max=4,
    total_utilization=0.6,
    vm_count=3,
    periods=(10, 20, 40, 80),
    period_weights=(4, 3, 2, 1),
)


def _flatten(workload):
    return [
        (
            task.name,
            task.period,
            task.wcet,
            task.deadline,
            task.vm_id,
            task.device,
            task.payload_bytes,
        )
        for task in workload.taskset
    ]


class TestGenerateChainWorkload:
    def test_bit_identical_for_fixed_seed(self):
        one = generate_chain_workload(42, SMALL)
        two = generate_chain_workload(42, SMALL)
        assert _flatten(one) == _flatten(two)
        assert one.chains == two.chains

    def test_different_seeds_differ(self):
        one = generate_chain_workload(42, SMALL)
        two = generate_chain_workload(43, SMALL)
        assert _flatten(one) != _flatten(two)

    def test_chain_count_and_hop_range(self):
        workload = generate_chain_workload(7, SMALL)
        assert len(workload.chains) == SMALL.chain_count
        for chain in workload.chains:
            assert SMALL.hops_min <= len(chain) <= SMALL.hops_max

    def test_entry_and_exit_devices(self):
        workload = generate_chain_workload(7, SMALL)
        for chain in workload.chains:
            devices = chain.devices(workload.taskset)
            assert devices[0] == SMALL.first_device
            if len(devices) > 1:
                assert devices[-1] == SMALL.last_device
            for device in devices[1:-1]:
                assert device in SMALL.compute_devices

    def test_periods_from_configured_set(self):
        workload = generate_chain_workload(7, SMALL)
        for task in workload.taskset:
            assert task.period in SMALL.periods
            assert 1 <= task.wcet <= task.deadline <= task.period

    def test_all_tasks_are_runtime(self):
        workload = generate_chain_workload(7, SMALL)
        assert all(
            task.kind == TaskKind.RUNTIME for task in workload.taskset
        )

    def test_vms_span_configured_count(self):
        workload = generate_chain_workload(7, SMALL)
        vm_ids = set(workload.taskset.vm_ids())
        assert vm_ids <= set(range(SMALL.vm_count))
        # Round-robin over >= vm_count hops touches every VM.
        assert len(vm_ids) == SMALL.vm_count

    def test_utilization_close_to_target(self):
        workload = generate_chain_workload(7, SMALL)
        # Each hop's WCET rounds u*T to an integer >= 1, so the per-hop
        # utilization error is at most 1/T.
        slack = sum(1 / task.period for task in workload.taskset)
        assert abs(workload.utilization - SMALL.total_utilization) <= slack

    def test_default_periods_are_scaled_waters(self):
        config = ChainWorkloadConfig(slots_per_ms=10)
        periods, weights = config.resolved_periods()
        assert periods == tuple(ms * 10 for ms in WATERS_PERIODS_MS[2:])
        assert weights == tuple(float(w) for w in WATERS_PERIOD_SHARES[2:])


class TestConfigValidation:
    def test_rejects_bad_hop_range(self):
        with pytest.raises(ValueError, match="hops_min"):
            generate_chain_workload(
                1, ChainWorkloadConfig(hops_min=3, hops_max=2)
            )

    def test_rejects_nonpositive_utilization(self):
        with pytest.raises(ValueError, match="total_utilization"):
            generate_chain_workload(
                1, ChainWorkloadConfig(total_utilization=0.0)
            )

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError, match="weights"):
            generate_chain_workload(
                1,
                ChainWorkloadConfig(
                    periods=(10, 20), period_weights=(1, 2, 3)
                ),
            )

    def test_rejects_infeasible_packing(self):
        with pytest.raises(ValueError, match="cannot pack"):
            generate_chain_workload(
                1,
                ChainWorkloadConfig(
                    chain_count=1,
                    hops_min=1,
                    hops_max=1,
                    total_utilization=1.5,
                ),
            )
