"""Simulated chain latencies against a pinned generated system."""

import pytest

from repro.api import (
    ChainConfig,
    ChainWorkloadConfig,
    analyze_chains,
    build_chain_system,
    simulate_chains,
)

CONFIG = ChainConfig(
    seed=11,
    workload=ChainWorkloadConfig(
        chain_count=3,
        hops_min=2,
        hops_max=3,
        total_utilization=0.4,
        vm_count=2,
        periods=(10, 20, 40),
        period_weights=(3, 2, 1),
    ),
)


@pytest.fixture(scope="module")
def run():
    system, chains = build_chain_system(CONFIG)
    report = analyze_chains(system, chains)
    assert report.schedulable
    sim = simulate_chains(system, chains, horizon=400)
    return chains, report, sim


class TestSimulateChains:
    def test_observes_instances_for_every_chain(self, run):
        chains, _report, sim = run
        for chain in chains:
            assert len(sim.instances[chain.name]) > 0
            assert len(sim.reactions[chain.name]) > 0

    def test_instance_hops_are_causally_ordered(self, run):
        chains, _report, sim = run
        for chain in chains:
            for instance in sim.instances[chain.name]:
                assert len(instance.releases) == len(chain)
                for hop in range(len(chain) - 1):
                    # The value read at hop+1's release was published
                    # (completed) no later than that release.
                    assert (
                        instance.completions[hop]
                        <= instance.releases[hop + 1]
                    )
                for release, completion in zip(
                    instance.releases, instance.completions
                ):
                    assert completion > release

    def test_no_deadline_misses_when_schedulable(self, run):
        _chains, _report, sim = run
        assert sim.deadline_misses == 0
        assert bool(sim)

    def test_observed_latencies_within_bounds(self, run):
        chains, report, sim = run
        for chain in chains:
            assert (
                sim.max_data_age(chain.name)
                <= report.data_age_bound(chain.name)
            )
            assert (
                sim.max_reaction(chain.name)
                <= report.reaction_time_bound(chain.name)
            )

    def test_reaction_exceeds_data_age_semantics(self, run):
        chains, _report, sim = run
        for chain in chains:
            for sample in sim.reactions[chain.name]:
                # The input waits for its sampling release before the
                # chain even starts.
                assert sample.releases[0] > sample.input_slot
                assert sample.reaction > 0

    def test_summary_counts_instances(self, run):
        _chains, _report, sim = run
        assert f"{sim.instance_count()} chain instances" in sim.summary()

    def test_rejects_non_system(self):
        with pytest.raises(TypeError, match="repro.api.System"):
            simulate_chains(object(), (), horizon=10)

    def test_rerun_is_deterministic(self, run):
        chains, _report, sim = run
        system, chains_again = build_chain_system(CONFIG)
        again = simulate_chains(system, chains_again, horizon=400)
        assert again.instances == sim.instances
        assert again.reactions == sim.reactions
