"""Differential verification: simulated chain latencies vs analysis.

The chain analysis composes per-hop response-time bounds into
max-data-age and max-reaction-time bounds (:mod:`repro.chains.analysis`).
This suite is the contract that makes those bounds trustworthy: over
hundreds of randomly generated systems, **every** simulated chain
instance's observed data age must be at or below the analytical bound,
and every observed reaction likewise.  A failure report pins the seed
and the full instance so the counterexample replays with one call.

The generation space deliberately varies every axis the analysis
composes over: chain length (including single-hop), chain count, VM
count (hops crossing VMs), utilization, and period sets with non-unit
hyperperiod ratios.
"""

import pytest

from repro.api import (
    ChainConfig,
    ChainWorkloadConfig,
    analyze_chains,
    build_chain_system,
    simulate_chains,
)
from repro.sim.rng import RandomSource

#: Chunked so one failure reports quickly under ``-x`` while the whole
#: suite still covers SYSTEMS_PER_CHUNK * chunks randomized systems.
CHUNKS = 10
SYSTEMS_PER_CHUNK = 25
HORIZON = 400

PERIOD_MENU = (
    ((10, 20, 40, 80), (4, 3, 2, 1)),
    ((10, 20, 50, 100), (25, 25, 3, 20)),
    ((8, 16, 64), (2, 2, 1)),
    ((12, 24, 48), (1, 1, 1)),
)


def _draw_config(seed: int) -> ChainConfig:
    """One randomized system shape, fully determined by ``seed``."""
    rng = RandomSource(seed, "chain-differential")
    periods, weights = PERIOD_MENU[rng.randrange(len(PERIOD_MENU))]
    hops_min = rng.randint(1, 2)
    return ChainConfig(
        seed=seed,
        workload=ChainWorkloadConfig(
            chain_count=rng.randint(2, 3),
            hops_min=hops_min,
            hops_max=rng.randint(hops_min + 1, 4),
            total_utilization=round(rng.uniform(0.2, 0.6), 3),
            vm_count=rng.randint(1, 3),
            periods=periods,
            period_weights=weights,
        ),
    )


def _repro_hint(seed: int, config: ChainConfig) -> str:
    return (
        f"seed={seed}; replay with build_chain_system(ChainConfig(seed={seed}, "
        f"workload={config.workload!r})) and simulate_chains(..., "
        f"horizon={HORIZON})"
    )


@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_simulated_latencies_never_exceed_bounds(chunk):
    schedulable = 0
    instances_checked = 0
    reactions_checked = 0
    for offset in range(SYSTEMS_PER_CHUNK):
        seed = 100_000 + chunk * SYSTEMS_PER_CHUNK + offset
        config = _draw_config(seed)
        system, chains = build_chain_system(config)
        report = analyze_chains(system, chains)
        if not report.schedulable:
            # Bounds are only claimed for schedulable systems.
            continue
        schedulable += 1
        sim = simulate_chains(system, chains, horizon=HORIZON)
        assert sim.deadline_misses == 0, (
            f"schedulable system missed deadlines: {sim.summary()}; "
            f"{_repro_hint(seed, config)}"
        )
        for chain in chains:
            age_bound = report.data_age_bound(chain.name)
            reaction_bound = report.reaction_time_bound(chain.name)
            for index, instance in enumerate(sim.instances[chain.name]):
                instances_checked += 1
                assert instance.data_age <= age_bound, (
                    f"DATA-AGE VIOLATION: chain {chain.name!r} instance "
                    f"#{index} observed age {instance.data_age} > bound "
                    f"{age_bound}\n"
                    f"  releases={instance.releases} "
                    f"completions={instance.completions}\n"
                    f"  hop bounds={report.chains[chain.name].hops}\n"
                    f"  {_repro_hint(seed, config)}"
                )
            for index, sample in enumerate(sim.reactions[chain.name]):
                reactions_checked += 1
                assert sample.reaction <= reaction_bound, (
                    f"REACTION VIOLATION: chain {chain.name!r} sample "
                    f"#{index} observed reaction {sample.reaction} > bound "
                    f"{reaction_bound}\n"
                    f"  input={sample.input_slot} releases={sample.releases} "
                    f"completions={sample.completions}\n"
                    f"  hop bounds={report.chains[chain.name].hops}\n"
                    f"  {_repro_hint(seed, config)}"
                )
    # The suite must actually exercise the contract: most drawn systems
    # are schedulable at these utilizations, and each contributes many
    # instances.  A collapse here means the generator drifted.
    assert schedulable >= SYSTEMS_PER_CHUNK // 3, (
        f"only {schedulable}/{SYSTEMS_PER_CHUNK} systems schedulable; "
        "the differential suite lost its coverage"
    )
    assert instances_checked >= 20 * schedulable
    assert reactions_checked >= 5 * schedulable


def test_bound_invariant_reaction_minus_age_is_last_period():
    """Structural invariant of the two bounds, on every generated system."""
    for seed in (1, 2, 3, 4, 5):
        config = _draw_config(10_000 + seed)
        system, chains = build_chain_system(config)
        report = analyze_chains(system, chains)
        if not report.bounded:
            continue
        for chain in chains:
            bound = report.chains[chain.name]
            assert (
                bound.reaction_time_bound - bound.data_age_bound
                == bound.hops[-1].period
            )
