"""Property tests locking down the parallel runner and the memo layer.

Two families of guarantees, both stdlib-``random`` seeded (no hypothesis
needed -- the draws themselves are the fixed property inputs):

* **parallel == serial** -- the experiment sweeps produce identical
  results for any worker count, because every cell derives its own
  randomness from the experiment seed;
* **cached == uncached** -- the memoized analysis kernels agree with
  their retained reference implementations on randomized inputs, and a
  warm cache agrees with a cold one.
"""

import random  # iolint: disable=IOL003 -- seeded random.Random only; test-local data generation

import pytest

from repro.analysis.cache import cache_stats, clear_caches
from repro.analysis.demand import (
    dbf_step_points,
    dbf_taskset,
    dbf_taskset_uncached,
)
from repro.analysis.hyperperiod import lcm_all
from repro.analysis.supply import sbf_server, sbf_server_uncached
from repro.core.timeslot import TimeSlotTable
from repro.exp.acceptance import run_acceptance
from repro.exp.fig7 import CaseStudyConfig, run_case_study
from repro.exp.runner import ExperimentRunner, resolve_jobs
from repro.tasks.generators import generate_random_taskset

SMOKE_CONFIG = CaseStudyConfig(
    utilizations=(0.5, 0.7),
    vm_groups=(4,),
    trials=2,
    horizon_slots=3_000,
    use_env_scale=False,
)


class TestParallelEqualsSerial:
    """The headline runner guarantee, at smoke scale."""

    def test_fig7_sweep_identical(self):
        serial = run_case_study(SMOKE_CONFIG, runner=ExperimentRunner(1))
        parallel = run_case_study(SMOKE_CONFIG, runner=ExperimentRunner(3))
        assert serial.groups.keys() == parallel.groups.keys()
        for vm_count in serial.groups:
            assert serial.groups[vm_count] == parallel.groups[vm_count]

    def test_acceptance_sweep_identical(self):
        kwargs = dict(
            utilizations=(0.4, 0.6), samples=8, task_count=4, seed=7
        )
        serial = run_acceptance(runner=ExperimentRunner(1), **kwargs)
        parallel = run_acceptance(runner=ExperimentRunner(2), **kwargs)
        assert serial.points == parallel.points

    def test_map_preserves_submission_order(self):
        items = list(range(40))
        runner = ExperimentRunner(4, progress=False)
        assert runner.map(_square, items, label="order") == [
            n * n for n in items
        ]

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # one per CPU
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        with pytest.raises(ValueError):
            resolve_jobs(-2)


def _square(n):
    return n * n


def _cached_square(n):
    # Touch a memoized kernel so profiling has a delta to attribute.
    sbf_server(10, 5, n % 20)
    return n * n


class TestRunnerProfiling:
    """``profile=True`` adds timing detail without changing results."""

    def test_profiled_results_match_unprofiled(self):
        items = list(range(12))
        plain = ExperimentRunner(1, progress=False).map(
            _square, items, label="plain"
        )
        profiled_runner = ExperimentRunner(1, progress=False, profile=True)
        profiled = profiled_runner.map(_square, items, label="profiled")
        assert profiled == plain

    def test_profiled_phase_carries_cell_detail(self):
        items = list(range(5))
        runner = ExperimentRunner(1, progress=False, profile=True)
        runner.map(_cached_square, items, label="prof")
        phase = runner.timing.phases[-1]
        assert phase.cell_seconds is not None
        assert len(phase.cell_seconds) == len(items)
        assert all(second >= 0.0 for second in phase.cell_seconds)
        assert phase.kernel_stats is not None
        assert "supply.sbf_server" in phase.kernel_stats
        payload = phase.as_dict()
        assert len(payload["cell_seconds"]) == len(items)
        assert "supply.sbf_server" in payload["kernel_stats"]

    def test_unprofiled_phase_schema_unchanged(self):
        runner = ExperimentRunner(1, progress=False)
        runner.map(_square, [1, 2, 3], label="plain")
        payload = runner.timing.phases[-1].as_dict()
        assert "cell_seconds" not in payload
        assert "kernel_stats" not in payload

    def test_profiled_parallel_matches_serial(self):
        items = list(range(10))
        serial = ExperimentRunner(1, progress=False, profile=True).map(
            _cached_square, items, label="serial"
        )
        parallel = ExperimentRunner(3, progress=False, profile=True).map(
            _cached_square, items, label="parallel"
        )
        assert serial == parallel == [n * n for n in items]


class TestCachedEqualsUncached:
    """Memoized kernels agree with their reference implementations."""

    def test_sbf_server_matches_reference(self):
        rng = random.Random(1234)
        for _ in range(300):
            pi = rng.randint(2, 60)
            theta = rng.randint(1, pi)
            t = rng.randint(0, 6 * pi)
            assert sbf_server(pi, theta, t) == sbf_server_uncached(
                pi, theta, t
            ), (pi, theta, t)

    def test_sbf_server_warm_equals_cold(self):
        rng = random.Random(99)
        queries = [
            (rng.randint(2, 40), None, rng.randint(0, 200))
            for _ in range(100)
        ]
        queries = [(pi, max(1, pi // 2), t) for pi, _, t in queries]
        clear_caches()
        cold = [sbf_server(*q) for q in queries]
        warm = [sbf_server(*q) for q in queries]
        assert cold == warm
        stats = cache_stats()["supply.sbf_server"]
        assert stats["hits"] >= len(queries)

    def test_dbf_taskset_matches_reference(self):
        rng = random.Random(4321)
        for case in range(25):
            tasks = generate_random_taskset(
                seed=1000 + case,
                task_count=rng.randint(1, 6),
                total_utilization=rng.uniform(0.2, 0.8),
                period_min=10,
                period_max=200,
                implicit_deadlines=bool(case % 2),
                name=f"prop.dbf.{case}",
            )
            for _ in range(20):
                t = rng.randint(0, 500)
                assert dbf_taskset(tasks, t) == dbf_taskset_uncached(
                    tasks, t
                ), (case, t)

    def test_dbf_step_points_fresh_copies(self):
        tasks = generate_random_taskset(
            seed=5, task_count=4, total_utilization=0.5, name="prop.steps"
        )
        first = dbf_step_points(tasks, 300)
        first.append(-1)  # caller mutation must not poison the cache
        second = dbf_step_points(tasks, 300)
        assert -1 not in second
        assert second == sorted(second)

    def test_mutated_taskset_not_served_stale(self):
        # dbf_taskset keys on the task parameters, not the TaskSet
        # object, so adding a task must change the demand immediately.
        tasks = generate_random_taskset(
            seed=11, task_count=3, total_utilization=0.4, name="prop.mut"
        )
        before = dbf_taskset(tasks, 400)
        extra = generate_random_taskset(
            seed=12, task_count=1, total_utilization=0.2, name="prop.extra"
        )
        for task in extra:
            tasks.add(task)
        after = dbf_taskset(tasks, 400)
        assert after > before

    def test_lcm_matches_math(self):
        import math

        rng = random.Random(777)
        for _ in range(100):
            values = [rng.randint(1, 40) for _ in range(rng.randint(1, 6))]
            assert lcm_all(values) == math.lcm(*values)

    def test_timeslot_sbf_cache_consistent(self):
        rng = random.Random(2021)
        for _ in range(20):
            length = rng.randint(4, 60)
            occupied = sorted(
                rng.sample(range(length), rng.randint(0, length // 2))
            )
            table = TimeSlotTable(length, occupied)
            fresh = TimeSlotTable(length, occupied)
            windows = [rng.randint(0, length) for _ in range(30)]
            # Query the cached table twice (cold then warm) against a
            # fresh table queried once.
            assert [table.sbf(w) for w in windows] == [
                fresh.sbf(w) for w in windows
            ]
            assert [table.sbf(w) for w in windows] == [
                fresh.sbf(w) for w in windows
            ]
            assert table.sbf_cache.hits > 0

    def test_clear_caches_resets_stats(self):
        sbf_server(10, 5, 17)
        clear_caches()
        stats = cache_stats()["supply.sbf_server"]
        assert stats["currsize"] == 0
