"""Property-based tests: EDF execution invariants and table construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gsched import ServerSpec
from repro.core.rchannel import RChannel
from repro.core.timeslot import (
    TableOverflowError,
    build_pchannel_table,
    stagger_offsets,
)
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


@st.composite
def runtime_job_specs(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    specs = []
    for i in range(count):
        release = draw(st.integers(min_value=0, max_value=40))
        wcet = draw(st.integers(min_value=1, max_value=5))
        margin = draw(st.integers(min_value=0, max_value=60))
        specs.append((release, wcet, wcet + margin))
    return specs


@st.composite
def predefined_tasksets(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    total = 0.0
    for i in range(count):
        period = draw(st.sampled_from([8, 16, 32, 64]))
        wcet = draw(st.integers(min_value=1, max_value=3))
        if total + wcet / period > 0.7:
            continue
        total += wcet / period
        tasks.append(
            IOTask(
                name=f"p{i}", period=period, wcet=wcet,
                kind=TaskKind.PREDEFINED,
            )
        )
    if not tasks:
        tasks = [IOTask(name="p0", period=16, wcet=1, kind=TaskKind.PREDEFINED)]
    return TaskSet(tasks)


class TestEdfExecutionInvariant:
    @settings(max_examples=60, deadline=None)
    @given(runtime_job_specs())
    def test_never_runs_later_deadline_while_earlier_ready(self, specs):
        """The R-channel executor is EDF: in every slot, the executed
        job's absolute deadline is minimal among all ready jobs."""
        channel = RChannel([ServerSpec(0, 8, 8)])  # full-bandwidth server
        jobs = []
        for i, (release, wcet, deadline) in enumerate(specs):
            task = IOTask(
                name=f"t{i}", period=10_000, wcet=wcet, deadline=deadline,
                vm_id=0,
            )
            jobs.append((release, task.job(release=release, index=0)))
        jobs.sort(key=lambda pair: pair[0])
        cursor = 0
        horizon = max(release for release, _ in jobs) + sum(
            wcet for _, wcet, _d in specs
        ) + 10
        for slot in range(horizon):
            while cursor < len(jobs) and jobs[cursor][0] <= slot:
                channel.submit(jobs[cursor][1])
                cursor += 1
            ready = [
                job for _r, job in jobs[:cursor]
                if job.remaining > 0
            ]
            channel.tick(slot)
            staged = channel.pools[0].shadow
            channel.execute_slot(slot)
            if staged is not None and ready:
                best = min(job.absolute_deadline for job in ready)
                assert staged.absolute_deadline == best

    @settings(max_examples=40, deadline=None)
    @given(runtime_job_specs())
    def test_work_conservation(self, specs):
        """With a full-bandwidth server, the channel never idles while
        work is pending."""
        channel = RChannel([ServerSpec(0, 4, 4)])
        jobs = sorted(
            (
                (release, IOTask(
                    name=f"t{i}", period=10_000, wcet=wcet, deadline=deadline,
                    vm_id=0,
                ).job(release=release, index=0))
                for i, (release, wcet, deadline) in enumerate(specs)
            ),
            key=lambda pair: pair[0],
        )
        cursor = 0
        executed = 0
        total_work = sum(wcet for _r, wcet, _d in specs)
        horizon = max(r for r, _w, _d in specs) + total_work + 5
        for slot in range(horizon):
            while cursor < len(jobs) and jobs[cursor][0] <= slot:
                channel.submit(jobs[cursor][1])
                cursor += 1
            channel.tick(slot)
            had_pending = channel.pending_jobs > 0
            channel.execute_slot(slot)
            if had_pending:
                executed += 1
        assert executed == total_work


class TestTableConstructionProperties:
    @settings(max_examples=60, deadline=None)
    @given(predefined_tasksets())
    def test_occupancy_conservation(self, tasks):
        """Occupied slots == sum over tasks of (H/T) * C."""
        staggered = stagger_offsets(tasks)
        table = build_pchannel_table(staggered)
        expected = sum(
            (table.total_slots // task.period) * task.wcet for task in staggered
        )
        assert table.occupied_slots == expected

    @settings(max_examples=60, deadline=None)
    @given(predefined_tasksets())
    def test_entries_cover_every_occupied_slot(self, tasks):
        staggered = stagger_offsets(tasks)
        table = build_pchannel_table(staggered)
        for slot in table.occupied_indices():
            assert table.entries.get(slot) is not None

    @settings(max_examples=60, deadline=None)
    @given(predefined_tasksets())
    def test_sbf_consistent_with_free_count(self, tasks):
        table = build_pchannel_table(stagger_offsets(tasks))
        assert table.sbf(table.total_slots) == table.free_slots
