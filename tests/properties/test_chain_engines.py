"""Engine differential for the chain-analysis composition path.

PR 5's property suite proved the scalar and vectorized engines agree on
the Theorem 2/4 verdicts; chain analysis adds one more shared kernel --
the per-hop response-time bound, where ``"vectorized"`` routes through
the closed-form supply inverse instead of the scalar fixed-point scan.
This suite pins their equality on every hop bound the chain analysis
produces, across randomized servers, task sets and whole systems.
"""

import pytest

from repro.analysis.response_time import response_time_bound
from repro.api import (
    ChainConfig,
    ChainWorkloadConfig,
    analyze_chains,
    build_chain_system,
    use_engine,
)
from repro.sim.rng import RandomSource
from repro.tasks.generators import generate_random_taskset


class TestResponseTimeEngineDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_server_and_taskset_agree(self, seed):
        rng = RandomSource(seed, "rtb-engines")
        pi = rng.randint(2, 15)
        theta = rng.randint(1, pi)
        tasks = generate_random_taskset(
            seed,
            task_count=rng.randint(1, 5),
            total_utilization=round(rng.uniform(0.1, 0.9), 3),
            period_min=5,
            period_max=120,
            name=f"rtb{seed}",
        )
        for task in tasks:
            scalar = response_time_bound(
                pi, theta, tasks, task.name, engine="scalar"
            )
            vectorized = response_time_bound(
                pi, theta, tasks, task.name, engine="vectorized"
            )
            assert scalar == vectorized, (
                f"engines disagree for {task.name!r} on server "
                f"({pi}, {theta}): scalar={scalar} vectorized={vectorized}"
            )

    def test_divergent_case_agrees_on_none(self):
        tasks = generate_random_taskset(
            3, task_count=4, total_utilization=2.0,
            period_min=5, period_max=40,
        )
        results = {
            engine: [
                response_time_bound(10, 1, tasks, task.name, engine=engine)
                for task in tasks
            ]
            for engine in ("scalar", "vectorized")
        }
        assert results["scalar"] == results["vectorized"]
        # A starved server must actually produce unbounded hops, or this
        # case tests nothing.
        assert any(bound.wcrt is None for bound in results["scalar"])


class TestChainAnalysisEngineDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_whole_chain_reports_agree(self, seed):
        config = ChainConfig(
            seed=seed,
            workload=ChainWorkloadConfig(
                chain_count=3,
                hops_min=1,
                hops_max=4,
                total_utilization=0.5,
                vm_count=2,
                periods=(10, 20, 40, 80),
                period_weights=(4, 3, 2, 1),
            ),
        )
        system, chains = build_chain_system(config)
        scalar = analyze_chains(system, chains, engine="scalar")
        vectorized = analyze_chains(system, chains, engine="vectorized")
        assert scalar.chains == vectorized.chains
        assert scalar.schedulable == vectorized.schedulable
        for chain in chains:
            assert scalar.data_age_bound(chain.name) == (
                vectorized.data_age_bound(chain.name)
            )
            assert scalar.reaction_time_bound(chain.name) == (
                vectorized.reaction_time_bound(chain.name)
            )

    def test_session_default_engine_is_honored(self):
        config = ChainConfig(
            seed=5,
            workload=ChainWorkloadConfig(
                chain_count=2, hops_min=2, hops_max=2,
                total_utilization=0.4, periods=(10, 20),
            ),
        )
        system, chains = build_chain_system(config)
        with use_engine("scalar"):
            scalar = analyze_chains(system, chains)
        with use_engine("vectorized"):
            vectorized = analyze_chains(system, chains)
        assert scalar.engine == "scalar"
        assert vectorized.engine == "vectorized"
        assert scalar.chains == vectorized.chains
