"""Property-based tests for task-set transforms and serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomSource
from repro.tasks.serialization import taskset_from_json, taskset_to_json
from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet
from repro.tasks.workload import pad_to_target_utilization


@st.composite
def arbitrary_tasks(draw, index=0):
    period = draw(st.integers(min_value=2, max_value=10_000))
    wcet = draw(st.integers(min_value=1, max_value=period))
    deadline = draw(st.integers(min_value=wcet, max_value=period))
    return IOTask(
        name=f"t{index}_{draw(st.integers(min_value=0, max_value=10**6))}",
        period=period,
        wcet=wcet,
        deadline=deadline,
        vm_id=draw(st.integers(min_value=0, max_value=7)),
        kind=draw(st.sampled_from(list(TaskKind))),
        criticality=draw(st.sampled_from(list(Criticality))),
        device=draw(st.sampled_from(["eth0", "spi0", "can0"])),
        payload_bytes=draw(st.integers(min_value=1, max_value=4096)),
        offset=draw(st.integers(min_value=0, max_value=100)),
        jitter=draw(st.integers(min_value=0, max_value=50)),
    )


@st.composite
def tasksets(draw):
    count = draw(st.integers(min_value=0, max_value=8))
    tasks = []
    for i in range(count):
        tasks.append(draw(arbitrary_tasks(index=i)))
    # Ensure unique names.
    seen = set()
    unique = []
    for task in tasks:
        if task.name not in seen:
            seen.add(task.name)
            unique.append(task)
    return TaskSet(unique, name="prop")


class TestSerializationProperties:
    @settings(max_examples=80)
    @given(tasksets())
    def test_json_roundtrip_preserves_everything(self, taskset):
        restored = taskset_from_json(taskset_to_json(taskset))
        assert len(restored) == len(taskset)
        for task in taskset:
            twin = restored[task.name]
            for attr in (
                "period", "wcet", "deadline", "vm_id", "kind",
                "criticality", "device", "payload_bytes", "offset", "jitter",
            ):
                assert getattr(twin, attr) == getattr(task, attr), attr


class TestSplitProperties:
    @settings(max_examples=60)
    @given(tasksets(), st.floats(min_value=0.0, max_value=1.0))
    def test_split_preserves_population_and_utilization(self, taskset, fraction):
        split = taskset.split_predefined(fraction)
        assert len(split) == len(taskset)
        assert split.utilization == sum(t.utilization for t in taskset)
        assert {t.name for t in split} == {t.name for t in taskset}

    @settings(max_examples=60)
    @given(tasksets(), st.floats(min_value=0.0, max_value=1.0))
    def test_split_counts_match_fraction(self, taskset, fraction):
        split = taskset.split_predefined(fraction)
        assert len(split.predefined()) == round(fraction * len(taskset))

    @settings(max_examples=40)
    @given(tasksets(), st.integers(min_value=1, max_value=8))
    def test_round_robin_balance(self, taskset, vm_count):
        assigned = taskset.assign_round_robin(vm_count)
        sizes = [len(tasks) for tasks in assigned.by_vm().values()]
        if sizes:
            assert max(sizes) - min(sizes) <= 1


class TestPaddingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.05, max_value=0.5),
        st.floats(min_value=0.0, max_value=1.2),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_padding_hits_target_within_tolerance(
        self, base_util, target, seed
    ):
        period = 1_000
        base = TaskSet([
            IOTask(
                name="base", period=period,
                wcet=max(1, int(base_util * period)),
            )
        ])
        padded = pad_to_target_utilization(
            base, target, RandomSource(seed, "prop")
        )
        if target <= base.utilization:
            assert padded.utilization == base.utilization
        else:
            assert abs(padded.utilization - target) <= 0.03
        # Base tasks always survive padding.
        assert "base" in padded
        # Padding only ever adds synthetic tasks.
        for task in padded:
            if task.name != "base":
                assert task.criticality == Criticality.SYNTHETIC
