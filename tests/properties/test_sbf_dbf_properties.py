"""Property-based tests for the supply/demand bound functions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.demand import dbf_server, dbf_sporadic
from repro.analysis.supply import (
    sbf_server,
    sbf_server_exact_blackout,
    sbf_sigma,
)
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask


patterns = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=24)


@st.composite
def servers(draw):
    pi = draw(st.integers(min_value=1, max_value=20))
    theta = draw(st.integers(min_value=1, max_value=pi))
    return pi, theta


@st.composite
def sporadic_tasks(draw):
    period = draw(st.integers(min_value=2, max_value=50))
    wcet = draw(st.integers(min_value=1, max_value=period))
    deadline = draw(st.integers(min_value=wcet, max_value=period))
    return IOTask(name="h", period=period, wcet=wcet, deadline=deadline)


class TestSbfSigmaProperties:
    @given(patterns, st.integers(min_value=0, max_value=100))
    def test_bounded_by_window_and_free_count(self, pattern, t):
        table = TimeSlotTable.from_pattern(pattern)
        value = sbf_sigma(table, t)
        assert 0 <= value <= t
        # Per hyper-period the supply is exactly F.
        h, f = table.total_slots, table.free_slots
        assert value <= ((t // h) + 1) * f

    @given(patterns, st.integers(min_value=0, max_value=80))
    def test_monotone(self, pattern, t):
        table = TimeSlotTable.from_pattern(pattern)
        assert sbf_sigma(table, t + 1) >= sbf_sigma(table, t)

    @given(patterns, st.integers(min_value=0, max_value=40),
           st.integers(min_value=0, max_value=40))
    def test_superadditive(self, pattern, a, b):
        """Worst windows can only lose supply when split:
        sbf(a+b) >= sbf(a) + sbf(b)."""
        table = TimeSlotTable.from_pattern(pattern)
        assert sbf_sigma(table, a + b) >= sbf_sigma(table, a) + sbf_sigma(table, b)

    @given(patterns, st.integers(min_value=1, max_value=3))
    def test_hyperperiod_additivity(self, pattern, k):
        table = TimeSlotTable.from_pattern(pattern)
        h, f = table.total_slots, table.free_slots
        assert sbf_sigma(table, k * h) == k * f

    @given(patterns, st.integers(min_value=0, max_value=40))
    def test_window_growth_at_most_one(self, pattern, t):
        table = TimeSlotTable.from_pattern(pattern)
        assert sbf_sigma(table, t + 1) - sbf_sigma(table, t) <= 1


class TestSbfServerProperties:
    @settings(max_examples=60)
    @given(servers(), st.integers(min_value=0, max_value=120))
    def test_matches_exact_blackout_reference(self, server, t):
        pi, theta = server
        assert sbf_server(pi, theta, t) == sbf_server_exact_blackout(pi, theta, t)

    @given(servers(), st.integers(min_value=0, max_value=200))
    def test_bounded_by_bandwidth(self, server, t):
        pi, theta = server
        value = sbf_server(pi, theta, t)
        assert 0 <= value <= t
        # Cannot exceed the server bandwidth plus one budget chunk.
        assert value <= t * theta / pi + theta

    @given(servers(), st.integers(min_value=0, max_value=150))
    def test_monotone(self, server, t):
        pi, theta = server
        assert sbf_server(pi, theta, t + 1) >= sbf_server(pi, theta, t)

    @given(servers())
    def test_blackout_length(self, server):
        """Zero supply through the 2*(pi-theta) blackout, positive right
        after the first budget slot must land."""
        pi, theta = server
        blackout = 2 * (pi - theta)
        assert sbf_server(pi, theta, blackout) == 0
        assert sbf_server(pi, theta, blackout + 1) >= 1


class TestDbfProperties:
    @given(sporadic_tasks(), st.integers(min_value=0, max_value=300))
    def test_nonnegative_and_monotone(self, task, t):
        assert dbf_sporadic(task, t) >= 0
        assert dbf_sporadic(task, t + 1) >= dbf_sporadic(task, t)

    @given(sporadic_tasks(), st.integers(min_value=0, max_value=300))
    def test_demand_rate_bounded(self, task, t):
        """dbf never exceeds utilization * t + C (one carry-in job)."""
        assert dbf_sporadic(task, t) <= task.utilization * t + task.wcet

    @given(sporadic_tasks())
    def test_first_jump_at_deadline(self, task):
        assert dbf_sporadic(task, task.deadline - 1) == 0
        assert dbf_sporadic(task, task.deadline) == task.wcet

    @given(servers(), st.integers(min_value=0, max_value=200))
    def test_server_demand_never_exceeds_its_own_supply_need(self, server, t):
        """dbf(Gamma, t) <= sbf would be wrong in general, but demand is
        always within bandwidth * t (implicit deadline servers)."""
        pi, theta = server
        assert dbf_server(pi, theta, t) <= t * theta / pi

    @given(servers(), st.integers(min_value=0, max_value=100))
    def test_supply_covers_demand_shifted_by_blackout(self, server, t):
        """The periodic server honours its own contract:
        sbf(Gamma, t + 2*(pi - theta)) >= dbf(Gamma, t)."""
        pi, theta = server
        blackout = 2 * (pi - theta)
        assert sbf_server(pi, theta, t + blackout) >= dbf_server(pi, theta, t)
