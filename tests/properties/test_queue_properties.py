"""Property-based tests for the random-access priority queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.priority_queue import PriorityQueue, QueueFullError
from repro.tasks.task import IOTask


def make_job(deadline, tag):
    task = IOTask(
        name=f"t{tag}", period=10_000, wcet=1, deadline=min(deadline, 10_000)
    )
    return task.job(release=0, index=0)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=1, max_value=500)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("remove_random"), st.integers(min_value=0, max_value=10)),
    ),
    max_size=60,
)


class TestQueueVsSortedReference:
    @settings(max_examples=80)
    @given(operations)
    def test_matches_reference_model(self, ops):
        """The queue behaves exactly like a sorted-list reference under
        an arbitrary interleaving of inserts, pops and random removals."""
        queue = PriorityQueue(capacity=1000)
        reference = []  # list of jobs, kept sorted by (deadline, seq)
        seq = 0
        for op, arg in ops:
            if op == "insert":
                job = make_job(arg, seq)
                queue.insert(job)
                reference.append((job.absolute_deadline, seq, job))
                reference.sort(key=lambda entry: entry[:2])
                seq += 1
            elif op == "pop":
                if reference:
                    expected = reference.pop(0)[2]
                    assert queue.pop() is expected
            elif op == "remove_random":
                if reference:
                    index = arg % len(reference)
                    _d, _s, job = reference.pop(index)
                    assert queue.remove(job)
            # Invariants after every operation.
            assert len(queue) == len(reference)
            if reference:
                assert queue.peek() is reference[0][2]
            else:
                assert queue.peek() is None

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=300), max_size=30))
    def test_pop_order_is_sorted(self, deadlines):
        queue = PriorityQueue(capacity=100)
        for i, deadline in enumerate(deadlines):
            queue.insert(make_job(deadline, i))
        popped = []
        while queue:
            popped.append(queue.pop().absolute_deadline)
        assert popped == sorted(popped)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30),
    )
    def test_capacity_never_exceeded(self, capacity, deadlines):
        queue = PriorityQueue(capacity=capacity)
        accepted = 0
        for i, deadline in enumerate(deadlines):
            try:
                queue.insert(make_job(deadline, i))
                accepted += 1
            except QueueFullError:
                assert len(queue) == capacity
        assert len(queue) == min(accepted, capacity)
