"""Property-based soundness of the pseudo-polynomial theorems.

Theorem 2 (resp. 4) must agree with the exact Theorem 1 (resp. 3) test
on every instance where both apply -- the pseudo-polynomial horizon is a
sound truncation, not an approximation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.gsched_test import (
    gsched_schedulable,
    gsched_schedulable_exact,
)
from repro.analysis.lsched_test import (
    lsched_schedulable,
    lsched_schedulable_exact,
)
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


@st.composite
def tables(draw):
    pattern = draw(
        st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=16)
    )
    return TimeSlotTable.from_pattern(pattern)


@st.composite
def server_lists(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    result = []
    for _ in range(count):
        pi = draw(st.sampled_from([2, 3, 4, 6, 8, 12]))
        theta = draw(st.integers(min_value=1, max_value=pi))
        result.append((pi, theta))
    return result


@st.composite
def small_tasksets(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for i in range(count):
        period = draw(st.sampled_from([4, 6, 8, 12, 16, 24]))
        wcet = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(
            IOTask(name=f"h{i}", period=period, wcet=wcet, deadline=deadline)
        )
    return TaskSet(tasks)


class TestTheorem2Soundness:
    @settings(max_examples=120, deadline=None)
    @given(tables(), server_lists())
    def test_agrees_with_theorem1(self, table, servers):
        fast = gsched_schedulable(table, servers)
        exact = gsched_schedulable_exact(table, servers)
        assert fast.schedulable == exact.schedulable, (
            table.occupancy_pattern(),
            servers,
            fast.failing_t,
            exact.failing_t,
        )


class TestTheorem4Soundness:
    @settings(max_examples=120, deadline=None)
    @given(
        st.sampled_from([4, 6, 8, 10, 12]),
        st.integers(min_value=1, max_value=12),
        small_tasksets(),
    )
    def test_agrees_with_theorem3(self, pi, theta_raw, tasks):
        theta = min(theta_raw, pi)
        fast = lsched_schedulable(pi, theta, tasks)
        exact = lsched_schedulable_exact(pi, theta, tasks)
        assert fast.schedulable == exact.schedulable, (
            pi,
            theta,
            [(t.period, t.wcet, t.deadline) for t in tasks],
            fast.failing_t,
            exact.failing_t,
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from([4, 6, 8, 10]),
        small_tasksets(),
    )
    def test_budget_monotonicity(self, pi, tasks):
        """If (pi, theta) passes, (pi, theta+1) must pass too."""
        verdicts = [
            lsched_schedulable(pi, theta, tasks).schedulable
            for theta in range(1, pi + 1)
        ]
        for a, b in zip(verdicts, verdicts[1:]):
            assert (not a) or b
