"""Bit-identity of the vectorized analysis engine and the incremental
admission path against the scalar reference implementations.

The vectorized engine (:mod:`repro.analysis.vectorized`) and the
incremental admission curve (:mod:`repro.core.admission`) are pure
optimizations: every value and every verdict must equal the scalar
ground truth exactly.  These properties enforce that contract over
random tasksets/tables, including the edges called out in the engine's
docstring: empty tasksets, full-bandwidth servers (``theta == pi``) and
horizon caps below/above all step points.
"""

from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import linear_test, lsched_test
from repro.analysis import gsched_test
from repro.analysis import vectorized as vec
from repro.analysis.demand import (
    dbf_server,
    dbf_signature_demand,
    dbf_step_points,
    demand_signature,
    server_step_points,
)
from repro.analysis.supply import (
    linear_supply_lower_bound,
    sbf_server,
    sbf_server_inverse,
    sbf_sigma,
)
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

patterns = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=24)


@st.composite
def server_pairs(draw):
    pi = draw(st.integers(min_value=1, max_value=30))
    theta = draw(st.integers(min_value=1, max_value=pi))
    return pi, theta


@st.composite
def tasksets(draw, max_tasks=5):
    count = draw(st.integers(min_value=0, max_value=max_tasks))
    tasks = []
    for index in range(count):
        period = draw(st.integers(min_value=2, max_value=60))
        wcet = draw(st.integers(min_value=1, max_value=period))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(
            IOTask(name=f"h{index}", period=period, wcet=wcet, deadline=deadline)
        )
    return TaskSet(tasks, name="prop")


@contextmanager
def forced_vectorization():
    """Route every window, however small, through the vectorized path.

    The production cutoff (``VECTORIZE_MIN_POINTS``) sends small grids
    to the scalar loop purely for speed; disabling it here makes the
    property actually exercise the numpy/QPA code on the small systems
    hypothesis favours.
    """
    modules = (lsched_test, gsched_test, linear_test)
    saved = [module.VECTORIZE_MIN_POINTS for module in modules]
    try:
        for module in modules:
            module.VECTORIZE_MIN_POINTS = 0
        yield
    finally:
        for module, value in zip(modules, saved):
            module.VECTORIZE_MIN_POINTS = value


class TestKernelsMatchScalar:
    @given(tasksets(), st.integers(min_value=0, max_value=400))
    def test_dbf_taskset_at(self, tasks, horizon):
        signature = demand_signature(tasks)
        ts = np.arange(0, horizon + 1, dtype=np.int64)
        got = vec.dbf_taskset_at(signature, ts)
        expected = [dbf_signature_demand(signature, int(t)) for t in ts]
        assert got.tolist() == expected

    @given(st.lists(server_pairs(), max_size=4),
           st.integers(min_value=0, max_value=300))
    def test_dbf_servers_at(self, servers, horizon):
        ts = np.arange(0, horizon + 1, dtype=np.int64)
        got = vec.dbf_servers_at(servers, ts)
        expected = [
            sum(dbf_server(pi, theta, int(t)) for pi, theta in servers)
            for t in ts
        ]
        assert got.tolist() == expected

    @given(server_pairs(), st.integers(min_value=0, max_value=300))
    def test_sbf_server_at(self, server, horizon):
        pi, theta = server
        ts = np.arange(0, horizon + 1, dtype=np.int64)
        got = vec.sbf_server_at(pi, theta, ts)
        expected = [sbf_server(pi, theta, int(t)) for t in ts]
        assert got.tolist() == expected

    @given(patterns, st.integers(min_value=0, max_value=300))
    def test_sbf_sigma_at(self, pattern, horizon):
        table = TimeSlotTable.from_pattern(pattern)
        ts = np.arange(0, horizon + 1, dtype=np.int64)
        got = vec.sbf_sigma_at(table, ts)
        expected = [sbf_sigma(table, int(t)) for t in ts]
        assert got.tolist() == expected

    @given(server_pairs(), st.integers(min_value=0, max_value=300))
    def test_linear_supply_at(self, server, horizon):
        pi, theta = server
        ts = np.arange(0, horizon + 1, dtype=np.int64)
        got = vec.linear_supply_at(pi, theta, ts)
        expected = [linear_supply_lower_bound(pi, theta, int(t)) for t in ts]
        assert got.tolist() == expected

    @given(tasksets(), st.integers(min_value=0, max_value=500))
    def test_taskset_step_points(self, tasks, horizon):
        signature = demand_signature(tasks)
        got = vec.taskset_step_points(vec.step_pairs(signature), horizon)
        assert got.tolist() == dbf_step_points(tasks, horizon)

    @given(st.lists(server_pairs(), max_size=4),
           st.integers(min_value=0, max_value=500))
    def test_server_step_points(self, servers, horizon):
        periods = [pi for pi, _theta in servers]
        got = vec._dedup_sorted(
            np.sort(vec.server_points_in_range(periods, 0, horizon))
        )
        assert got.tolist() == server_step_points(servers, horizon)

    @given(server_pairs(), st.integers(min_value=1, max_value=2000))
    def test_sbf_server_inverse_minimal(self, server, demand):
        pi, theta = server
        t = sbf_server_inverse(pi, theta, demand)
        assert sbf_server(pi, theta, t) >= demand
        assert t == 0 or sbf_server(pi, theta, t - 1) < demand


class TestResultsMatchScalar:
    @settings(max_examples=60)
    @given(tasksets(), server_pairs())
    def test_lsched(self, tasks, server):
        pi, theta = server
        scalar = lsched_test.lsched_schedulable(pi, theta, tasks, engine="scalar")
        with forced_vectorization():
            fast = lsched_test.lsched_schedulable(
                pi, theta, tasks, engine="vectorized"
            )
        assert scalar == fast

    @settings(max_examples=60)
    @given(tasksets(), server_pairs())
    def test_linear(self, tasks, server):
        pi, theta = server
        scalar = linear_test.lsched_schedulable_linear(
            pi, theta, tasks, engine="scalar"
        )
        with forced_vectorization():
            fast = linear_test.lsched_schedulable_linear(
                pi, theta, tasks, engine="vectorized"
            )
        assert scalar == fast

    @settings(max_examples=60)
    @given(patterns, st.lists(server_pairs(), max_size=3))
    def test_gsched(self, pattern, servers):
        table = TimeSlotTable.from_pattern(pattern)
        scalar = gsched_test.gsched_schedulable(table, servers, engine="scalar")
        with forced_vectorization():
            fast = gsched_test.gsched_schedulable(
                table, servers, engine="vectorized"
            )
        assert scalar == fast

    @settings(max_examples=30)
    @given(tasksets(max_tasks=3), st.integers(min_value=1, max_value=12))
    def test_lsched_exact_horizon_cap_edges(self, tasks, pi):
        """Theorem-3 windows (lcm-based horizons) agree across engines."""
        theta = pi  # full-bandwidth server: zero blackout edge case
        scalar = lsched_test.lsched_schedulable_exact(
            pi, theta, tasks, engine="scalar"
        )
        with forced_vectorization():
            fast = lsched_test.lsched_schedulable_exact(
                pi, theta, tasks, engine="vectorized"
            )
        assert scalar == fast


class TestIncrementalAdmissionMatchesFullRetest:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),   # vm
                st.integers(min_value=5, max_value=120),  # period
                st.integers(min_value=1, max_value=20),   # wcet seed
                st.integers(min_value=0, max_value=100),  # deadline seed
                st.booleans(),                            # withdraw op
            ),
            max_size=12,
        )
    )
    def test_random_admit_withdraw_sequences(self, steps):
        from repro.core.admission import AdmissionController
        from repro.core.gsched import ServerSpec

        def build(incremental):
            return AdmissionController(
                TimeSlotTable.empty(20),
                [ServerSpec(0, 10, 5), ServerSpec(1, 10, 4)],
                incremental=incremental,
            )

        incremental, full = build(True), build(False)
        admitted = {0: [], 1: []}
        for index, (vm, period, wcet_seed, dl_seed, is_withdraw) in enumerate(
            steps
        ):
            if is_withdraw and admitted[vm]:
                name = admitted[vm].pop(dl_seed % len(admitted[vm]))
                assert incremental.withdraw(vm, name).name == name
                assert full.withdraw(vm, name).name == name
                continue
            wcet = 1 + wcet_seed % period
            deadline = wcet + dl_seed % (period - wcet + 1)
            task = IOTask(
                name=f"t{index}", period=period, wcet=wcet,
                deadline=deadline, vm_id=vm,
            )
            fast = incremental.try_admit(task)
            slow = full.try_admit(task)
            assert fast == slow
            assert fast.test_result == slow.test_result
            if fast.schedulable:
                admitted[vm].append(task.name)
        for vm in (0, 1):
            assert (
                [t.name for t in incremental.admitted_tasks(vm)]
                == [t.name for t in full.admitted_tasks(vm)]
            )
