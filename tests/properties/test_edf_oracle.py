"""Property tests: the theorems against a brute-force EDF oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exact import (
    server_worst_pattern,
    simulate_edf,
    simulate_edf_under_server,
)
from repro.analysis.lsched_test import lsched_schedulable
from repro.analysis.supply import sbf_server
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


@st.composite
def small_tasksets(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    tasks = []
    for i in range(count):
        period = draw(st.sampled_from([6, 8, 12, 24]))
        wcet = draw(st.integers(min_value=1, max_value=max(1, period // 3)))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(
            IOTask(name=f"o{i}", period=period, wcet=wcet, deadline=deadline)
        )
    return TaskSet(tasks)


@st.composite
def servers(draw):
    pi = draw(st.sampled_from([4, 6, 8, 12]))
    theta = draw(st.integers(min_value=1, max_value=pi))
    return pi, theta


class TestWorstPatternRealisesSbf:
    @settings(max_examples=60)
    @given(servers(), st.integers(min_value=0, max_value=80))
    def test_pattern_window_minimum_is_sbf(self, server, t):
        """The adversarial pattern's worst window equals sbf(Gamma, t)."""
        pi, theta = server
        pattern = server_worst_pattern(pi, theta)
        horizon = t + 4 * pi
        supply = [1 if pattern(slot) else 0 for slot in range(horizon + t)]
        worst = min(
            sum(supply[start : start + t]) for start in range(horizon)
        ) if t > 0 else 0
        assert worst == sbf_server(pi, theta, t)


class TestTheoremsDominateOracle:
    @settings(max_examples=100, deadline=None)
    @given(servers(), small_tasksets())
    def test_admitted_sets_survive_adversarial_edf(self, server, tasks):
        """Theorem 4 admits a set => brute-force EDF over the worst
        supply with synchronous releases meets every deadline."""
        pi, theta = server
        verdict = lsched_schedulable(pi, theta, tasks)
        if not verdict.schedulable:
            return  # only the admit direction is guaranteed
        outcome = simulate_edf_under_server(pi, theta, tasks)
        assert outcome.all_met, (
            pi, theta,
            [(t.period, t.wcet, t.deadline) for t in tasks],
            outcome.missed[:5],
        )

    @settings(max_examples=50, deadline=None)
    @given(small_tasksets())
    def test_full_supply_equals_plain_edf_bound(self, tasks):
        """With full supply, EDF meets everything iff demand fits: a
        utilization-1 sanity anchor for the oracle itself."""
        outcome = simulate_edf(tasks, lambda slot: True)
        if tasks.utilization <= 1.0 and all(
            task.deadline == task.period for task in tasks
        ):
            # Implicit-deadline synchronous EDF on a unit supply is
            # schedulable iff U <= 1 (Liu & Layland optimality).
            assert outcome.all_met

    def test_oracle_detects_infeasible(self):
        tasks = TaskSet([
            IOTask(name="a", period=4, wcet=3),
            IOTask(name="b", period=4, wcet=3),
        ])
        outcome = simulate_edf(tasks, lambda slot: True)
        assert not outcome.all_met
