"""Property-based tests: whole-system determinism under fixed seeds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BlueVisorSystem,
    IOGuardSystem,
    LegacySystem,
    RTXenSystem,
    TrialConfig,
    prepare_workload,
)
from repro.sim.engine import Simulator, Timeout
from repro.sim.rng import RandomSource
from repro.tasks import generate_random_taskset


class TestSimulatorDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_event_interleaving_reproducible(self, seed):
        """Two runs with identical schedules produce identical traces."""

        def run_once():
            sim = Simulator()
            rng = RandomSource(seed, "det")
            trace = []

            def worker(tag):
                for _ in range(5):
                    yield Timeout(rng.randint(1, 10))
                    trace.append((tag, sim.now))

            for tag in range(4):
                sim.process(worker(tag), name=f"w{tag}")
            sim.run()
            return trace

        assert run_once() == run_once()


class TestTrialDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1_000),
        st.sampled_from(["legacy", "rt-xen", "bv", "ioguard"]),
    )
    def test_trial_reproducible(self, seed, system_name):
        taskset = generate_random_taskset(
            seed, task_count=5, total_utilization=0.4, vm_count=2,
            period_min=50, period_max=400,
        )
        config = TrialConfig(horizon_slots=5_000)
        systems = {
            "legacy": LegacySystem,
            "rt-xen": RTXenSystem,
            "bv": BlueVisorSystem,
            "ioguard": lambda: IOGuardSystem(0.4),
        }
        results = []
        for _ in range(2):
            workload = prepare_workload(
                taskset, config, RandomSource(seed, "wl"),
                target_utilization=0.4,
            )
            system = systems[system_name]()
            result = system.run_trial(workload, RandomSource(seed, "sys"))
            results.append(
                (
                    result.total_completed,
                    result.total_missed,
                    result.bytes_transferred,
                    round(result.response_slots_sum, 6),
                )
            )
        assert results[0] == results[1]
