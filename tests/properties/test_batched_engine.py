"""Bit-identity of the batched analysis engine against both references.

The batched engine (:mod:`repro.analysis.batched`) evaluates whole
columns of Theorem-1/2/4 requests per numpy pass -- hyper-period-tiled
event grids, one lock-step QPA descent, one flat failure sweep.  It is
a pure optimization: every lane of a batch must equal the scalar AND
vectorized per-pair result bit for bit (decision, horizon, slack,
witness triple, method).  These properties enforce that contract over
random batches, including the edges the batch strategy introduces:
ragged outlier lanes, lanes sharing one grid, hyper-period-compressed
(factorized) period draws, overloaded and zero-slack lanes, and the
``theta == pi`` full-bandwidth server.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import batched
from repro.analysis.batched import (
    BatchStats,
    gsched_schedulable_batch,
    lsched_schedulable_batch,
)
from repro.analysis.demand import dbf_signature_demand, demand_signature
from repro.analysis.gsched_test import gsched_schedulable
from repro.analysis.lsched_test import lsched_schedulable
from repro.core.timeslot import TimeSlotTable
from repro.tasks.generators import HyperperiodBasis
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


@st.composite
def server_pairs(draw):
    pi = draw(st.integers(min_value=1, max_value=30))
    theta = draw(st.integers(min_value=1, max_value=pi))
    return pi, theta


@st.composite
def tasksets(draw, max_tasks=5, max_period=60):
    count = draw(st.integers(min_value=0, max_value=max_tasks))
    tasks = []
    for index in range(count):
        period = draw(st.integers(min_value=2, max_value=max_period))
        wcet = draw(st.integers(min_value=1, max_value=period))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(
            IOTask(name=f"b{index}", period=period, wcet=wcet, deadline=deadline)
        )
    return TaskSet(tasks, name="prop")


@st.composite
def factorized_tasksets(draw, max_tasks=5):
    """Task sets whose periods share the bounded factor basis -- the
    regime where the batched engine's hyper-period tiling engages."""
    basis = HyperperiodBasis(factors=(2, 2, 3, 5), period_min=2)
    candidates = basis.candidate_periods()
    count = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = []
    for index in range(count):
        period = draw(st.sampled_from(candidates))
        wcet = draw(st.integers(min_value=1, max_value=period))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(
            IOTask(name=f"f{index}", period=period, wcet=wcet, deadline=deadline)
        )
    return TaskSet(tasks, name="factorized")


lsched_requests = st.lists(
    st.tuples(server_pairs(), tasksets()), min_size=0, max_size=6
)
factorized_requests = st.lists(
    st.tuples(server_pairs(), factorized_tasksets()), min_size=1, max_size=6
)
patterns = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=20)


def assert_lane_equal(result, reference, context):
    assert (
        result.schedulable,
        result.horizon,
        result.slack,
        result.failing_t,
        result.failing_demand,
        result.failing_supply,
        result.method,
        result.server,
        result.task_names,
    ) == (
        reference.schedulable,
        reference.horizon,
        reference.slack,
        reference.failing_t,
        reference.failing_demand,
        reference.failing_supply,
        reference.method,
        reference.server,
        reference.task_names,
    ), context


class TestLSchedBatchMatchesPerPair:
    @settings(max_examples=60, deadline=None)
    @given(lsched_requests)
    def test_random_batches(self, batch):
        requests = [(pi, theta, tasks) for (pi, theta), tasks in batch]
        results = lsched_schedulable_batch(requests)
        assert len(results) == len(requests)
        for lane, (result, (pi, theta, tasks)) in enumerate(
            zip(results, requests)
        ):
            for engine in ("scalar", "vectorized"):
                assert_lane_equal(
                    result,
                    lsched_schedulable(pi, theta, tasks, engine=engine),
                    (lane, engine),
                )

    @settings(max_examples=40, deadline=None)
    @given(factorized_requests)
    def test_hyperperiod_compressed_batches(self, batch):
        requests = [(pi, theta, tasks) for (pi, theta), tasks in batch]
        stats = BatchStats()
        results = lsched_schedulable_batch(requests, stats=stats)
        assert stats.lanes == len(requests)
        for lane, (result, (pi, theta, tasks)) in enumerate(
            zip(results, requests)
        ):
            assert_lane_equal(
                result, lsched_schedulable(pi, theta, tasks), lane
            )

    @settings(max_examples=30, deadline=None)
    @given(tasksets(), st.integers(min_value=1, max_value=30))
    def test_full_bandwidth_server(self, tasks, pi):
        requests = [(pi, pi, tasks)]
        (result,) = lsched_schedulable_batch(requests)
        assert_lane_equal(result, lsched_schedulable(pi, pi, tasks), "theta==pi")

    def test_failing_witness_is_a_true_counterexample(self):
        # Overloaded lane: batch must surface a demand > supply witness.
        tasks = TaskSet(
            [IOTask(name=f"o{i}", period=10, wcet=4) for i in range(3)],
            name="overload",
        )
        (result,) = lsched_schedulable_batch([(10, 7, tasks)])
        assert not result.schedulable
        signature = demand_signature(tasks)
        assert result.failing_demand == dbf_signature_demand(
            signature, result.failing_t
        )
        assert result.failing_demand > result.failing_supply


class TestRaggedAndSharedLanes:
    def test_ragged_outlier_falls_back(self, monkeypatch):
        """A lane whose grid dwarfs the batch median must take the
        per-pair fallback -- and still agree with the reference."""
        monkeypatch.setattr(batched, "RAGGED_FACTOR", 1)
        monkeypatch.setattr(batched, "RAGGED_POINTS_CAP", 4)
        small = TaskSet([IOTask(name="s", period=5, wcet=1)], name="small")
        big = TaskSet(
            [IOTask(name=f"g{i}", period=7 + 4 * i, wcet=1) for i in range(4)],
            name="big",
        )
        requests = [(20, 14, small), (20, 14, big), (20, 14, small)]
        stats = BatchStats()
        results = lsched_schedulable_batch(requests, stats=stats)
        assert stats.fallback_lanes >= 1
        for lane, (result, (pi, theta, tasks)) in enumerate(
            zip(results, requests)
        ):
            assert_lane_equal(
                result, lsched_schedulable(pi, theta, tasks), lane
            )

    def test_identical_lanes_share_one_grid(self):
        tasks = TaskSet(
            [IOTask(name="r", period=12, wcet=2, deadline=9)], name="shared"
        )
        stats = BatchStats()
        results = lsched_schedulable_batch(
            [(20, 14, tasks)] * 4, stats=stats
        )
        reference = lsched_schedulable(20, 14, tasks)
        for result in results:
            assert_lane_equal(result, reference, "shared")
        # Lanes that survive the probe share one (signature, bound) grid.
        if stats.grids_built:
            assert stats.grids_built + stats.grids_shared >= 4
            assert stats.grids_built == 1

    def test_per_pair_engine_degrade(self):
        tasks = TaskSet([IOTask(name="d", period=9, wcet=3)], name="degrade")
        for engine in ("scalar", "vectorized"):
            (result,) = lsched_schedulable_batch(
                [(10, 6, tasks)], engine=engine
            )
            assert_lane_equal(
                result, lsched_schedulable(10, 6, tasks, engine=engine), engine
            )


class TestGSchedBatchMatchesPerPair:
    @settings(max_examples=40, deadline=None)
    @given(
        patterns,
        st.lists(server_pairs(), min_size=0, max_size=3),
    )
    def test_random_batches(self, pattern, servers):
        table = TimeSlotTable.from_pattern(pattern)
        results = gsched_schedulable_batch([(table, servers)])
        reference = gsched_schedulable(table, servers)
        (result,) = results
        assert (
            result.schedulable,
            result.horizon,
            result.failing_t,
            result.failing_demand,
            result.failing_supply,
            result.method,
        ) == (
            reference.schedulable,
            reference.horizon,
            reference.failing_t,
            reference.failing_demand,
            reference.failing_supply,
            reference.method,
        )

    def test_mixed_batch(self):
        lanes = []
        for length in (6, 9, 12):
            table = TimeSlotTable(length, occupied=range(length // 3))
            lanes.append((table, [(4, 1), (6, 2)]))
        lanes.append((TimeSlotTable.empty(8), []))
        results = gsched_schedulable_batch(lanes)
        for (table, servers), result in zip(lanes, results):
            reference = gsched_schedulable(table, servers)
            assert result.schedulable == reference.schedulable
            assert result.failing_t == reference.failing_t


class TestGridBuilders:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(tasksets(max_tasks=4), st.integers(-5, 4000)),
            min_size=0,
            max_size=5,
        )
    )
    def test_fused_builder_matches_per_entry(self, cases):
        entries = [
            (demand_signature(tasks), horizon) for tasks, horizon in cases
        ]
        fused = batched._taskset_grid_demand_many(entries)
        for entry, built in zip(entries, fused):
            points, demand = batched._taskset_grid_demand(*entry)
            assert np.array_equal(points, built[0])
            assert np.array_equal(demand, built[1])

    @settings(max_examples=40, deadline=None)
    @given(tasksets(max_tasks=4), st.integers(0, 4000))
    def test_grid_demand_matches_scalar_dbf(self, tasks, horizon):
        signature = demand_signature(tasks)
        points, demand = batched._taskset_grid_demand(signature, horizon)
        assert points.size == np.unique(points).size
        for t, d in zip(points.tolist(), demand.tolist()):
            assert t <= horizon
            assert d == dbf_signature_demand(signature, t)
