"""Property suite: controller snapshot/restore is bit-identical.

The admission service's warm restarts, shard rebalances and crash
recovery all round-trip through :class:`ControllerSnapshot`; the
contract is *bit*-identity, not equivalence: a restored controller
must serialize to the same canonical JSON as its source and must make
byte-identical decisions (and memoized demand curves) on every future
request -- including snapshots taken immediately after ``withdraw``,
which exercises the memo-invalidation path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import (
    AdmissionController,
    ControllerSnapshot,
    decision_to_dict,
)
from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.tasks.serialization import task_to_dict
from repro.tasks.task import IOTask

#: H=12, three P-channel slots -> F=9 free; the two servers demand at
#: most 7 slots per hyperperiod, so the set is Theorem-2 feasible.
PATTERN = (1, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0)
SERVERS = ((0, 6, 2), (1, 12, 3))


def make_controller(**kwargs):
    return AdmissionController(
        TimeSlotTable.from_pattern(list(PATTERN)),
        [ServerSpec(vm_id, pi, theta) for vm_id, pi, theta in SERVERS],
        **kwargs,
    )


@st.composite
def op_sequences(draw, min_size=0, max_size=14):
    """Admit/withdraw scripts over the two VMs.

    Withdraws target names submitted earlier in the script -- possibly
    already withdrawn or never admitted, so the KeyError path is part
    of the property.
    """
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    ops = []
    submitted = []
    for index in range(count):
        if submitted and draw(st.integers(0, 3)) == 0:
            vm_id, name = draw(st.sampled_from(submitted))
            ops.append(("withdraw", vm_id, name))
        else:
            vm_id = draw(st.integers(0, 1))
            name = f"vm{vm_id}.t{index}"
            period = draw(st.sampled_from((12, 24, 48)))
            wcet = draw(st.integers(1, 3))
            submitted.append((vm_id, name))
            ops.append(("admit", vm_id, name, period, wcet))
    return ops


def apply_op(controller, op):
    """Run one op; return a JSON-comparable outcome."""
    if op[0] == "admit":
        _kind, vm_id, name, period, wcet = op
        decision = controller.try_admit(
            IOTask(name=name, period=period, wcet=wcet, vm_id=vm_id)
        )
        return ("decision", decision_to_dict(decision))
    _kind, vm_id, name = op
    try:
        removed = controller.withdraw(vm_id, name)
    except KeyError:
        return ("missing", vm_id, name)
    return ("withdrawn", task_to_dict(removed))


class TestSnapshotRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(op_sequences())
    def test_restore_is_bit_identical(self, ops):
        controller = make_controller()
        for op in ops:
            apply_op(controller, op)
        snapshot = controller.snapshot()
        restored = AdmissionController.restore(snapshot)
        assert restored.snapshot().to_json() == snapshot.to_json()

    @settings(max_examples=80, deadline=None)
    @given(op_sequences())
    def test_json_round_trip_is_stable(self, ops):
        controller = make_controller()
        for op in ops:
            apply_op(controller, op)
        text = controller.snapshot().to_json()
        assert ControllerSnapshot.from_json(text).to_json() == text

    @settings(max_examples=60, deadline=None)
    @given(op_sequences(max_size=10), op_sequences(max_size=8))
    def test_restored_controller_replays_identically(self, prefix, suffix):
        live = make_controller()
        for op in prefix:
            apply_op(live, op)
        restored = AdmissionController.restore(live.snapshot())
        for op in suffix:
            assert apply_op(live, op) == apply_op(restored, op)
        assert restored.snapshot().to_json() == live.snapshot().to_json()

    @settings(max_examples=60, deadline=None)
    @given(op_sequences(max_size=8), st.integers(1, 3))
    def test_snapshot_immediately_after_withdraw(self, ops, wcet):
        """The post-withdraw memo state must survive the round trip."""
        live = make_controller()
        for op in ops:
            apply_op(live, op)
        anchor = IOTask(name="anchor", period=24, wcet=wcet, vm_id=0)
        if live.try_admit(anchor).schedulable:
            live.withdraw(0, "anchor")
        snapshot = live.snapshot()
        restored = AdmissionController.restore(snapshot)
        assert restored.snapshot().to_json() == snapshot.to_json()
        probe = ("admit", 0, "probe", 12, wcet)
        assert apply_op(live, probe) == apply_op(restored, probe)
        assert restored.snapshot().to_json() == live.snapshot().to_json()


class TestSnapshotCounters:
    def test_ring_state_survives_restore(self):
        """Eviction counters and ring contents are part of the image."""
        controller = make_controller(max_decisions=3)
        for index in range(7):
            controller.try_admit(
                IOTask(name=f"t{index}", period=48, wcet=1, vm_id=index % 2)
            )
        assert controller.dropped_decisions == 4
        restored = AdmissionController.restore(controller.snapshot())
        assert restored.dropped_decisions == 4
        assert restored.admitted_count == controller.admitted_count
        assert restored.rejected_count == controller.rejected_count
        assert [d.task_name for d in restored.decisions] == [
            d.task_name for d in controller.decisions
        ]
        assert restored.snapshot().to_json() == controller.snapshot().to_json()

    def test_non_incremental_controller_round_trips(self):
        controller = make_controller(incremental=False)
        controller.try_admit(IOTask(name="a", period=12, wcet=2, vm_id=0))
        restored = AdmissionController.restore(controller.snapshot())
        assert restored.snapshot().to_json() == controller.snapshot().to_json()
        probe = ("admit", 1, "b", 24, 2)
        assert apply_op(controller, probe) == apply_op(restored, probe)
