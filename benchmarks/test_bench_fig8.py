"""Fig. 8 bench: scalability of area, power and maximum frequency.

Regenerates the eta-sweep (VMs = 2^eta, eta in 0..5) and asserts Obs 5
(linear-ish growth, I/O-GUARD within 20% of legacy) and Obs 6
(hypervisor Fmax always above the legacy system).
"""

from repro.exp.fig8 import fig8_report, render_fig8


def regenerate():
    return fig8_report(eta_max=5), render_fig8(eta_max=5)


def test_bench_fig8(benchmark):
    points, text = benchmark(regenerate)

    # -- Obs 5: area ------------------------------------------------------
    for point in points:
        assert 0 < point.area_overhead < 0.20, point.eta
    legacy_areas = [p.legacy_area for p in points]
    ioguard_areas = [p.ioguard_area for p in points]
    assert legacy_areas == sorted(legacy_areas)
    assert ioguard_areas == sorted(ioguard_areas)
    # Roughly linear in VM count at the top end: doubling VMs from 16 to
    # 32 should not much more than double area.
    assert ioguard_areas[5] / ioguard_areas[4] < 2.2

    # -- Obs 5: power tracks area ------------------------------------------
    for point in points:
        assert point.ioguard.power_mw > point.legacy.power_mw
    powers = [p.ioguard.power_mw for p in points]
    assert powers == sorted(powers)

    # -- Obs 6: hypervisor never the critical path --------------------------
    for point in points:
        assert point.ioguard_fmax_mhz > point.legacy_fmax_mhz, point.eta
        assert point.ioguard_fmax_mhz >= 100  # closes at the platform clock
    print("\n" + text)
