"""Isolation bench: the footnote-1 claim as a measured sweep.

Regenerates the rogue-intensity sweep and asserts the partitioned-pool
mechanism: victim misses stay zero under the I/O-GUARD R-channel while
the conventional shared FIFO collapses once the rogue floods.
"""

from repro.exp.isolation import render_isolation, run_isolation


def test_bench_isolation(benchmark, fig7_horizon):
    result = benchmark.pedantic(
        run_isolation,
        kwargs={
            "rogue_factors": (1.0, 4.0, 8.0, 16.0),
            "horizon_slots": fig7_horizon // 2,
        },
        rounds=1,
        iterations=1,
    )
    ioguard = result.miss_curve("ioguard-rchannel")
    fifo = result.miss_curve("shared-fifo")
    assert all(misses == 0 for misses in ioguard)
    assert fifo[0] == 0
    assert fifo[-1] > 0
    assert fifo == sorted(fifo)  # degradation grows with the flood
    print("\n" + render_isolation(result))
