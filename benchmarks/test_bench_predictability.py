"""Predictability bench: response-time distributions per system.

The paper's motivation (Sec. I): conventional virtualization adds
"significant communication latency and timing variance" to I/O
operations.  This bench regenerates per-task response-time jitter at a
moderate load and asserts the motivating ordering.
"""

from repro.baselines import IOGuardSystem
from repro.exp.fig7 import default_systems
from repro.exp.predictability import render_predictability, run_predictability


def test_bench_predictability(benchmark, fig7_horizon):
    systems = default_systems() + [
        IOGuardSystem(0.4, placement="contiguous")
    ]

    def regenerate():
        return run_predictability(
            target_utilization=0.6,
            trials=2,
            horizon_slots=fig7_horizon // 2,
            systems=systems,
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    # -- motivating shape: software virtualization has the widest timing
    # variance; the hardware hypervisor the tightest ------------------------
    assert result.jitter_of("ioguard-40") < result.jitter_of("rt-xen")
    assert result.jitter_of("ioguard-40") < result.jitter_of("legacy")
    assert result.jitter_of("ioguard-40") < result.jitter_of("bv")

    # Contiguous table layout: the lowest *mean* response of all systems
    # (pre-defined jobs run as bursts at their start times).
    contiguous = result.stats["ioguard-40-contiguous"]
    for baseline in ("legacy", "rt-xen", "bv"):
        assert contiguous.mean < result.stats[baseline].mean

    # Everyone's samples are complete and positive.
    for system, stats in result.stats.items():
        assert stats.count > 500, system
        assert stats.minimum > 0, system
    print("\n" + render_predictability(result))
