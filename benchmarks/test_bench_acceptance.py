"""Acceptance-ratio bench: the schedulability-test precision figure.

Regenerates the acceptance sweep under the (20, 14) server and asserts
the analytic ordering: the bandwidth envelope dominates Theorem 4,
Theorem 4 dominates its linear-supply approximation, and Theorem 4
tracks the envelope closely until near the server bandwidth.
"""

from repro.exp.acceptance import render_acceptance, run_acceptance


def test_bench_acceptance(benchmark):
    result = benchmark.pedantic(
        run_acceptance,
        kwargs={"samples": 40},
        rounds=1,
        iterations=1,
    )
    for point in result.points:
        assert point.ratios["bandwidth"] >= point.ratios["theorem4"]
        assert point.ratios["theorem4"] >= point.ratios["linear"]
    theorem4 = result.curve("theorem4")
    # Implicit-deadline sets well under the server bandwidth are all in.
    assert theorem4[0.3] == 1.0
    assert theorem4[0.5] >= 0.95
    # Past the bandwidth the test must reject what physics rejects.
    assert theorem4[0.7] <= result.curve("bandwidth")[0.7]
    print("\n" + render_acceptance(result))
