"""Weighted-schedulability bench: the server design-space figure.

Regenerates the acceptance grid over (server bandwidth x utilization)
and asserts the design rules it teaches: bandwidth dominates, and at
fixed bandwidth a shorter server period (smaller blackout) dominates.
"""

from repro.exp.weighted import render_weighted, run_weighted


def test_bench_weighted(benchmark):
    result = benchmark.pedantic(
        run_weighted, kwargs={"samples": 25}, rounds=1, iterations=1
    )
    scores = result.scores()
    # Fixed 50% bandwidth: shorter periods never lose.
    assert scores[(10, 5)] >= scores[(20, 10)] >= scores[(40, 20)]
    # 70% bandwidth dominates 50% at equal periods.
    for period in (10, 20, 40):
        high = scores[(period, int(period * 0.7))]
        low = scores[(period, period // 2)]
        assert high >= low
    print("\n" + render_weighted(result))
