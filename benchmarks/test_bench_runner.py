"""Runner/memo benches: the cache layer must earn its keep.

Two claims to hold the line on:

* the memoized analysis kernels (``sbf_server``, the signature-keyed
  demand memo) are measurably faster than the retained uncached
  references on a fig7-scale acceptance sweep;
* the parallel runner's serial path adds no meaningful overhead over
  the plain loop, and any worker count reproduces the serial results.

Timing assertions live here (benchmarks/ is not collected by tier-1),
so a loaded CI box cannot flake the main suite.
"""

import random

import pytest

from repro.analysis.cache import cache_stats, clear_caches
from repro.analysis.lsched_test import lsched_schedulable
from repro.analysis.supply import sbf_server, sbf_server_uncached
from repro.exp.acceptance import run_acceptance
from repro.exp.fig7 import CaseStudyConfig, run_case_study
from repro.exp.runner import ExperimentRunner
from repro.tasks import generate_random_taskset

#: One acceptance-style workload: admission tests over random task sets
#: under a fixed server -- the analysis hot path of the sweeps.
SWEEP_SERVER = (20, 14)
SWEEP_SAMPLES = 40


def _admission_sweep():
    pi, theta = SWEEP_SERVER
    admitted = 0
    for index in range(SWEEP_SAMPLES):
        tasks = generate_random_taskset(
            3000 + index,
            task_count=5,
            total_utilization=0.68,
            period_min=40,
            period_max=400,
            name=f"bench.runner.{index}",
        )
        if lsched_schedulable(pi, theta, tasks).schedulable:
            admitted += 1
    return admitted


def test_bench_admission_sweep_warm_cache(benchmark):
    """The sweep with the memo layer active (steady-state timing)."""
    clear_caches()
    _admission_sweep()  # warm up
    admitted = benchmark.pedantic(_admission_sweep, rounds=3, iterations=1)
    assert 0 < admitted < SWEEP_SAMPLES  # the sweep straddles the boundary
    stats = cache_stats()
    assert stats["supply.sbf_server"]["hits"] > 0
    assert stats["demand.dbf_signature_demand"]["hits"] > 0


def test_bench_sbf_kernel_cached_vs_uncached(benchmark):
    """The memoized supply kernel beats the reference on sweep-shaped
    query streams (many repeated (Pi, Theta, t) triples)."""
    rng = random.Random(8)
    queries = [
        (20, 14, rng.randint(0, 400)) for _ in range(5_000)
    ]

    def uncached():
        return sum(sbf_server_uncached(*q) for q in queries)

    def cached():
        return sum(sbf_server(*q) for q in queries)

    clear_caches()
    cached()  # populate
    expected = uncached()
    result = benchmark.pedantic(cached, rounds=3, iterations=2)
    assert result == expected

    import timeit

    uncached_time = timeit.timeit(uncached, number=3)
    cached_time = timeit.timeit(cached, number=3)
    assert cached_time < uncached_time, (
        f"memoized sbf_server ({cached_time:.4f}s) not faster than "
        f"uncached ({uncached_time:.4f}s)"
    )


def test_bench_acceptance_cached_speedup():
    """Fig7-scale acceptance sweep: warm caches measurably beat cold.

    Cold-vs-warm on the identical sweep isolates exactly what the memo
    layer buys; the >= 10 % bar is far below the observed speedup but
    high enough that an accidentally disabled cache fails loudly.
    """
    import timeit

    kwargs = dict(samples=30, task_count=5, seed=2021)

    def sweep():
        return run_acceptance(**kwargs)

    clear_caches()
    cold_time = timeit.timeit(sweep, number=1)
    warm_time = min(timeit.timeit(sweep, number=1) for _ in range(3))
    assert warm_time < 0.9 * cold_time, (
        f"warm sweep ({warm_time:.3f}s) not measurably faster than cold "
        f"({cold_time:.3f}s); is the memo layer wired in?"
    )


def test_bench_runner_serial_overhead(benchmark, fig7_horizon):
    """The runner's serial path on a reduced fig7 sweep (the common
    jobs=1 case must stay essentially free)."""
    config = CaseStudyConfig(
        utilizations=(0.5, 0.7),
        vm_groups=(4,),
        trials=1,
        horizon_slots=min(10_000, fig7_horizon),
        use_env_scale=False,
    )
    result = benchmark.pedantic(
        run_case_study,
        args=(config,),
        kwargs={"runner": ExperimentRunner(1, progress=False)},
        rounds=1,
        iterations=1,
    )
    assert set(result.groups) == {4}
    assert len(result.groups[4]) == 2 * 5  # utils x systems


def test_bench_runner_parallel_matches_serial(fig7_horizon):
    """Bench-scale restatement of the determinism contract: a parallel
    run returns the very same points as the serial run it must match."""
    config = CaseStudyConfig(
        utilizations=(0.5,),
        vm_groups=(4,),
        trials=1,
        horizon_slots=min(10_000, fig7_horizon),
        use_env_scale=False,
    )
    serial = run_case_study(config, runner=ExperimentRunner(1))
    parallel = run_case_study(config, runner=ExperimentRunner(2))
    assert serial.groups == parallel.groups
