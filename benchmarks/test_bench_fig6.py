"""Fig. 6 bench: run-time software overhead (memory footprint).

Regenerates the per-system, per-component footprint table and asserts
the paper's Obs 1 orderings.
"""

import pytest

from repro.exp.fig6 import fig6_report, render_fig6
from repro.virt.footprint import overhead_vs_legacy, system_footprints


def regenerate():
    report = fig6_report()
    text = render_fig6()
    return report, text


def test_bench_fig6(benchmark):
    report, text = benchmark(regenerate)

    # -- paper shape assertions (Obs 1) ---------------------------------
    # RT-XEN adds ~130% core footprint over legacy.
    assert overhead_vs_legacy("rt-xen") == pytest.approx(1.298, abs=0.01)
    # Hardware-assisted systems reduce the overhead dramatically.
    assert overhead_vs_legacy("bv") < 0.2
    # I/O-GUARD eliminates the software VMM entirely and shrinks the
    # kernel below legacy.
    assert report["ioguard"].hypervisor.total == 0
    assert overhead_vs_legacy("ioguard") < 0
    # Driver footprints: RT-XEN heaviest, I/O-GUARD lightest, per driver.
    for protocol in ("spi", "ethernet", "uart", "can"):
        sizes = {
            system: report[system].drivers[protocol].total
            for system in report
        }
        assert sizes["rt-xen"] > sizes["legacy"] > sizes["bv"] > sizes["ioguard"]
    print("\n" + text)
