"""Table I bench: hardware overhead on FPGA.

Regenerates the six resource rows (the "Proposed" row computed from the
compositional block model at 16 VMs / 2 I/Os) and asserts Obs 2.
"""

import pytest

from repro.exp.table1 import render_table1, table1_report, table1_ratios


def regenerate():
    rows = dict(table1_report(vm_count=16, io_count=2))
    ratios = table1_ratios()
    text = render_table1()
    return rows, ratios, text


def test_bench_table1(benchmark):
    rows, ratios, text = benchmark(regenerate)

    proposed = rows["proposed"]
    # -- Table I anchors -------------------------------------------------
    assert proposed.luts == pytest.approx(2777, rel=0.01)
    assert proposed.registers == pytest.approx(2974, rel=0.01)
    assert proposed.dsp == 0
    assert proposed.ram_kb == 256
    assert proposed.power_mw == pytest.approx(279, rel=0.01)

    # -- Obs 2: cheaper than full-featured processors ---------------------
    assert ratios["vs_microblaze"]["luts"] == pytest.approx(0.566, abs=0.01)
    assert ratios["vs_microblaze"]["registers"] == pytest.approx(0.678, abs=0.01)
    assert ratios["vs_microblaze"]["power"] == pytest.approx(0.777, abs=0.01)
    assert ratios["vs_riscv"]["luts"] == pytest.approx(0.374, abs=0.01)
    assert ratios["vs_riscv"]["registers"] == pytest.approx(0.182, abs=0.01)
    assert ratios["vs_riscv"]["power"] == pytest.approx(0.479, abs=0.01)

    # -- Obs 2: above bare controllers, below/equal BlueIO ----------------
    assert proposed.luts > rows["ethernet"].luts
    assert proposed.luts < rows["blueio"].luts
    assert proposed.registers < rows["blueio"].registers
    assert proposed.ram_kb == rows["blueio"].ram_kb
    print("\n" + text)
