"""Ablation benches for the design choices DESIGN.md calls out.

* **Preload fraction sweep** -- I/O-GUARD-x for x beyond the paper's
  {40, 70}: the P-channel share is a dial, and success should not
  degrade as more load moves to the statically guaranteed channel.
* **Preemption ablation** -- I/O-GUARD with its I/O pools forced to
  FIFO selection recovers BlueVisor-like behaviour: this isolates the
  random-access priority queue + preemptive EDF as the mechanism behind
  the Fig. 7 gap (the paper's central claim).
* **Server dimensioning ablation** -- analytic (Theorem-4 minimal
  budgets) vs proportional dimensioning.
* **Table layout ablation** -- spread+staggered sigma* vs phase-0
  clustering, measured through sbf at small windows.
"""

import pytest

from repro.baselines import IOGuardSystem, TrialConfig, prepare_workload
from repro.core.lsched import fifo_policy
from repro.core.timeslot import build_pchannel_table, stagger_offsets
from repro.sim.rng import RandomSource
from repro.tasks import build_case_study_taskset, pad_to_target_utilization


def run_trial(system, utilization, horizon, seed=11, vm_count=4):
    base = build_case_study_taskset(vm_count=vm_count)
    rng = RandomSource(seed, f"abl{utilization}")
    padded = pad_to_target_utilization(
        base, utilization, rng.spawn("pad"), vm_count=vm_count
    )
    workload = prepare_workload(
        padded,
        TrialConfig(horizon_slots=horizon),
        rng.spawn("wl"),
        target_utilization=utilization,
    )
    return system.run_trial(workload, rng.spawn(system.name))


def test_bench_preload_sweep(benchmark, fig7_horizon):
    """I/O-GUARD-x for x in {0, 20, 40, 60, 80, 100} at 90 % load."""

    def sweep():
        outcomes = {}
        for fraction in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
            system = IOGuardSystem(fraction)
            result = run_trial(system, 0.9, fig7_horizon // 2)
            outcomes[fraction] = result
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for fraction, result in outcomes.items():
        assert result.success, f"preload {fraction} failed at 90% load"
        assert result.total_missed == 0, fraction
    # Preloading trades average latency for a hard guarantee: table-
    # spread P-channel jobs complete anywhere inside their deadline
    # window, so mean response grows with the preload fraction while
    # misses stay at zero.  (The paper's Obs 3 benefit is the guarantee
    # plus lower variance, not lower mean latency.)
    assert (
        outcomes[0.8].mean_response_slots >= outcomes[0.0].mean_response_slots
    )


def test_bench_preemption_ablation(benchmark, fig7_horizon):
    """FIFO pools (BlueVisor-like hardware) vs preemptive-EDF pools."""

    def compare():
        edf = IOGuardSystem(0.0)
        fifo = IOGuardSystem(0.0)
        # Force the conventional FIFO structure inside every I/O pool.
        fifo.name = "ioguard-fifo"
        original = IOGuardSystem._dimension_servers

        edf_result = run_trial(edf, 0.9, fig7_horizon // 2)

        import repro.core.rchannel as rchannel_module

        class FifoRChannel(rchannel_module.RChannel):
            def __init__(self, servers, **kwargs):
                kwargs["policy"] = fifo_policy
                super().__init__(servers, **kwargs)

        import repro.baselines.ioguard_system as ioguard_module

        saved = ioguard_module.RChannel
        ioguard_module.RChannel = FifoRChannel
        try:
            fifo_result = run_trial(fifo, 0.9, fig7_horizon // 2)
        finally:
            ioguard_module.RChannel = saved
        assert original is IOGuardSystem._dimension_servers
        return edf_result, fifo_result

    edf_result, fifo_result = benchmark.pedantic(compare, rounds=1, iterations=1)
    # Preemptive EDF meets everything at 90 %; arrival-order service
    # misses deadlines (head-of-line blocking) -- the paper's core claim.
    assert edf_result.total_missed == 0
    assert fifo_result.total_missed > 0


def test_bench_server_policy_ablation(benchmark, fig7_horizon):
    """Analytic vs proportional server dimensioning at 70 % load."""

    def compare():
        proportional = run_trial(
            IOGuardSystem(0.4, server_policy="proportional"),
            0.7,
            fig7_horizon // 2,
        )
        analytic = run_trial(
            IOGuardSystem(0.4, server_policy="analytic"),
            0.7,
            fig7_horizon // 2,
        )
        return proportional, analytic

    proportional, analytic = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert proportional.success
    assert analytic.success


def test_bench_slot_granularity(benchmark):
    """Slot-size sweep: WCET rounding inflates utilization as slots grow.

    The hypervisor schedules in integer slots; coarser slots waste more
    of each slot on rounding.  The sweep quantifies the inflation of the
    case-study catalog and checks the default 10 us slot stays analysable.
    """
    from repro.analysis import analyze_system
    from repro.tasks.automotive import catalog_utilization

    def sweep():
        outcomes = {}
        for slot_us in (5.0, 10.0, 20.0, 50.0):
            utilization = catalog_utilization(slot_us=slot_us)
            outcomes[slot_us] = utilization
        return outcomes

    outcomes = benchmark(sweep)
    # Inflation grows monotonically with slot size ...
    values = [outcomes[s] for s in sorted(outcomes)]
    assert values == sorted(values)
    # ... the true utilization (~0.38 before rounding) is approached
    # from above as slots shrink, and the default slot stays near 40 %.
    assert outcomes[5.0] < outcomes[10.0] < outcomes[50.0]
    assert 0.36 <= outcomes[10.0] <= 0.44
    # The default-granularity case study remains analysable end to end.
    split = build_case_study_taskset(vm_count=4).split_predefined(0.4)
    assert analyze_system(split).schedulable


def test_bench_table_layout_ablation(benchmark):
    """Staggered+spread sigma* vs phase-0 sigma*: small-window supply."""
    predefined = build_case_study_taskset(vm_count=4).split_predefined(
        0.7
    ).predefined()

    def build_both():
        clustered = build_pchannel_table(predefined)
        spread = build_pchannel_table(stagger_offsets(predefined))
        return clustered, spread

    clustered, spread = benchmark(build_both)
    # The staggered/spread layout never supplies less in small windows.
    window = 200
    assert spread.sbf(window) >= clustered.sbf(window)
    assert spread.free_slots == clustered.free_slots  # same total load
