"""Analysis benches: the schedulability machinery itself.

The paper's analytical contribution is the pseudo-polynomial pair
(Theorems 2 and 4).  These benches time the tests on case-study-sized
inputs and check the pseudo-polynomial horizons undercut the exact
hyper-period horizons -- the whole point of Theorems 2/4.
"""

import pytest

from repro.analysis import (
    analyze_system,
    gsched_schedulable,
    gsched_schedulable_exact,
    lsched_schedulable,
    theorem2_bound,
    theorem4_bound,
)
from repro.analysis.hyperperiod import lcm_all
from repro.core.timeslot import TimeSlotTable, build_pchannel_table, stagger_offsets
from repro.tasks import build_case_study_taskset, generate_random_taskset


@pytest.fixture(scope="module")
def case_study_split():
    return build_case_study_taskset(vm_count=4).split_predefined(0.4)


def test_bench_full_system_analysis(benchmark, case_study_split):
    """End-to-end Sec. IV analysis of the case-study configuration."""
    result = benchmark.pedantic(
        analyze_system, args=(case_study_split,), rounds=1, iterations=2
    )
    assert result.schedulable


def test_bench_table_construction(benchmark, case_study_split):
    predefined = stagger_offsets(case_study_split.predefined())
    table = benchmark(build_pchannel_table, predefined)
    assert table.free_slots > 0


#: Coprime-ish server periods: the exact Theorem-1 horizon is the LCM
#: (which explodes on such sets -- the case Theorem 2 exists for),
#: while the Theorem-2 bound stays at the F*(H-1)/H/c scale.
_THEOREM2_SERVERS = [(49, 8), (41, 6), (83, 10), (100, 12)]


def test_bench_theorem2(benchmark):
    table = TimeSlotTable.from_pattern(([1] + [0] * 4) * 40)  # H=200, 20% busy
    result = benchmark(gsched_schedulable, table, _THEOREM2_SERVERS)
    assert result.schedulable
    # The pseudo-polynomial horizon must be far below the exact one.
    bound = theorem2_bound(table, _THEOREM2_SERVERS)
    exact_horizon = lcm_all(
        [table.total_slots] + [pi for pi, _ in _THEOREM2_SERVERS]
    )
    assert bound * 1000 < exact_horizon


def test_bench_theorem2_vs_exact(benchmark):
    """Exact Theorem-1 on an LCM-friendly variant, for comparison.

    (The exact test on the coprime instance above would walk hundreds of
    millions of slots -- exactly why the paper needs Theorem 2.)
    """
    table = TimeSlotTable.from_pattern(([1] + [0] * 4) * 40)
    servers = [(50, 8), (40, 6), (80, 10), (100, 12)]
    result = benchmark(gsched_schedulable_exact, table, servers)
    assert result.schedulable


def test_bench_theorem4(benchmark):
    tasks = generate_random_taskset(
        3, task_count=10, total_utilization=0.35,
        period_min=50, period_max=1000, name="bench",
    )
    result = benchmark(lsched_schedulable, 40, 24, tasks)
    assert result.schedulable
    bound = theorem4_bound(40, 24, tasks)
    exact_horizon = lcm_all([40] + [task.period for task in tasks])
    assert bound < exact_horizon


def test_bench_sbf_queries(benchmark, case_study_split):
    """sbf(sigma, t) query throughput on a case-study-sized table."""
    table = build_pchannel_table(stagger_offsets(case_study_split.predefined()))

    def query_many():
        total = 0
        for t in range(0, 2 * table.total_slots, 97):
            total += table.sbf(t)
        return total

    total = benchmark(query_many)
    assert total > 0
