"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and
asserts its *shape* (who wins, where the cliffs sit) rather than
absolute numbers -- see EXPERIMENTS.md.  Scale knobs default to values
that keep a full ``pytest benchmarks/ --benchmark-only`` run in the
minutes range; set ``REPRO_SCALE`` to trade time for statistical depth.
"""

import os

import pytest

#: Per-cell trials for the Fig. 7 sweeps (paper: 1000).
FIG7_TRIALS = max(1, int(3 * float(os.environ.get("REPRO_SCALE", "1.0"))))

#: Slots per trial (paper: 100 s = 10M slots; here 0.3 s).
FIG7_HORIZON = 30_000


@pytest.fixture(scope="session")
def fig7_trials():
    return FIG7_TRIALS


@pytest.fixture(scope="session")
def fig7_horizon():
    return FIG7_HORIZON
