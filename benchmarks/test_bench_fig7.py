"""Fig. 7 bench: case-study success ratio + throughput sweeps.

Regenerates the 4-VM and 8-VM sweeps (Fig. 7(a), 7(b)) and the
throughput series (Fig. 7(c)) at reduced scale, and asserts the paper's
Obs 3 / Obs 4 shapes:

* every system is fine at 40 % target utilization;
* BS|RT-XEN and BS|BV collapse in the 65-80 % band, earlier with 8 VMs
  than with 4;
* both I/O-GUARD configurations sustain high success ratios through
  100 % and dominate baseline throughput at high load.
"""

import pytest

from repro.exp.fig7 import CaseStudyConfig, render_fig7, run_case_study


@pytest.fixture(scope="module")
def sweep_result(fig7_trials, fig7_horizon):
    config = CaseStudyConfig(
        utilizations=(0.40, 0.55, 0.65, 0.70, 0.80, 0.90, 1.00),
        vm_groups=(4, 8),
        trials=fig7_trials,
        horizon_slots=fig7_horizon,
        use_env_scale=False,
    )
    return run_case_study(config)


def test_bench_fig7_sweep(benchmark, fig7_trials, fig7_horizon):
    """The timed regeneration: the full (reduced) Fig. 7 sweep, with all
    paper-shape assertions applied to its output.

    The assertions also run against the shared module fixture in
    :class:`TestFig7Shape` for plain ``pytest benchmarks/`` runs; under
    ``--benchmark-only`` (which skips non-benchmark tests) this single
    test still verifies every Obs 3 / Obs 4 claim.
    """
    config = CaseStudyConfig(
        utilizations=(0.40, 0.55, 0.65, 0.70, 0.80, 0.90, 1.00),
        vm_groups=(4, 8),
        trials=fig7_trials,
        horizon_slots=fig7_horizon,
        use_env_scale=False,
    )
    result = benchmark.pedantic(
        run_case_study, args=(config,), rounds=1, iterations=1
    )
    shape = TestFig7Shape()
    shape.test_all_systems_fine_at_40_percent(result)
    shape.test_baselines_collapse_by_80_percent(result)
    shape.test_rtxen_cliff_before_bv(result)
    shape.test_cliffs_move_earlier_with_8_vms(result)
    shape.test_ioguard_sustains_success_through_100(result)
    shape.test_ioguard70_at_least_ioguard40(result)
    shape.test_ioguard_throughput_dominates_at_high_load(result)
    shape.test_throughput_grows_until_saturation(result)
    print("\n" + render_fig7(result))


class TestFig7Shape:
    def test_all_systems_fine_at_40_percent(self, sweep_result):
        for vm_count in (4, 8):
            for system in ("legacy", "rt-xen", "bv", "ioguard-40", "ioguard-70"):
                curve = sweep_result.success_curve(vm_count, system)
                assert curve[0.40] == 1.0, (vm_count, system)

    def test_baselines_collapse_by_80_percent(self, sweep_result):
        """Fig. 7(a)/(b): significant drops at 70-75% (4 VMs)."""
        for vm_count in (4, 8):
            for system in ("legacy", "rt-xen", "bv"):
                curve = sweep_result.success_curve(vm_count, system)
                assert curve[0.90] <= 0.5, (vm_count, system)

    def test_rtxen_cliff_before_bv(self, sweep_result):
        """The paper: RT-XEN drops at 70%, BV at 75% (4 VMs)."""
        rtxen = sweep_result.success_curve(4, "rt-xen")
        bv = sweep_result.success_curve(4, "bv")
        assert rtxen[0.80] <= bv[0.80] + 1e-9
        assert rtxen[0.70] <= bv[0.70] + 1e-9

    def test_cliffs_move_earlier_with_8_vms(self, sweep_result):
        """Obs 4: drops move from 70-75% to 65% with 8 VMs."""
        for system in ("rt-xen", "bv"):
            four = sweep_result.success_curve(4, system)
            eight = sweep_result.success_curve(8, system)
            # At every utilization the 8-VM group does no better.
            for utilization in four:
                assert eight[utilization] <= four[utilization] + 1e-9
            # And strictly worse somewhere in the cliff band.
            assert any(
                eight[u] < four[u] for u in (0.65, 0.70, 0.80)
            ), system

    def test_ioguard_sustains_success_through_100(self, sweep_result):
        """Obs 3/4: I/O-GUARD keeps high success ratios at full load."""
        for vm_count in (4, 8):
            for system in ("ioguard-40", "ioguard-70"):
                curve = sweep_result.success_curve(vm_count, system)
                assert curve[1.00] >= 0.9, (vm_count, system)

    def test_ioguard70_at_least_ioguard40(self, sweep_result):
        for vm_count in (4, 8):
            io40 = sweep_result.success_curve(vm_count, "ioguard-40")
            io70 = sweep_result.success_curve(vm_count, "ioguard-70")
            for utilization in io40:
                assert io70[utilization] >= io40[utilization] - 0.25

    def test_ioguard_throughput_dominates_at_high_load(self, sweep_result):
        """Fig. 7(c): baselines saturate, I/O-GUARD keeps scaling."""
        for vm_count in (4, 8):
            for baseline in ("legacy", "rt-xen", "bv"):
                base_curve = sweep_result.throughput_curve(vm_count, baseline)
                io_curve = sweep_result.throughput_curve(vm_count, "ioguard-70")
                assert io_curve[1.00] > base_curve[1.00] * 1.2, (
                    vm_count, baseline
                )

    def test_throughput_grows_until_saturation(self, sweep_result):
        io70 = sweep_result.throughput_curve(4, "ioguard-70")
        assert io70[1.00] > io70[0.70] > io70[0.40]

    def test_render_smoke(self, sweep_result):
        text = render_fig7(sweep_result)
        assert "4-VM group" in text and "8-VM group" in text
        print("\n" + text)
