"""Library machinery benches: throughput of the core building blocks.

Not paper figures -- engineering numbers for the reproduction itself:
how fast the hypervisor steps slots, how many admission decisions per
second, how fast the event-driven NoC moves packets.  Regressions here
are regressions in every experiment's wall-clock time.
"""

from repro.core.admission import AdmissionController
from repro.core.gsched import ServerSpec
from repro.core.hypervisor import HypervisorConfig, IOGuardHypervisor
from repro.core.driver import VirtualizationDriver
from repro.core.timeslot import TimeSlotTable
from repro.hw.controller import EthernetController
from repro.hw.devices import EchoDevice
from repro.noc.network import NocNetwork
from repro.noc.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet


def test_bench_hypervisor_slot_rate(benchmark):
    """Slots stepped per second with a loaded R-channel."""
    hypervisor = IOGuardHypervisor(HypervisorConfig())
    driver = VirtualizationDriver(
        EthernetController("eth0"), EchoDevice("dev", service_cycles=50)
    )
    predefined = TaskSet([
        IOTask(name="p0", period=20, wcet=3, kind=TaskKind.PREDEFINED,
               device="eth0", payload_bytes=32),
    ])
    hypervisor.attach_device(
        "eth0", driver, predefined,
        [ServerSpec(0, 10, 3), ServerSpec(1, 10, 3)],
    )
    tasks = [
        IOTask(name=f"r{i}", period=40 + 10 * i, wcet=3, vm_id=i % 2,
               device="eth0", payload_bytes=32)
        for i in range(6)
    ]

    state = {"slot": 0}

    def step_block():
        base = state["slot"]
        for offset in range(1_000):
            slot = base + offset
            for task in tasks:
                if slot % task.period == 0:
                    hypervisor.submit(
                        task.job(release=slot, index=slot // task.period)
                    )
            hypervisor.step(slot)
        state["slot"] = base + 1_000
        return hypervisor.pending_jobs

    benchmark(step_block)
    assert hypervisor.completed_jobs


def test_bench_admission_rate(benchmark):
    """Admission decisions per second on a populated controller."""
    rng = RandomSource(5, "bench-adm")
    state = {"counter": 0}

    def admit_batch():
        controller = AdmissionController(
            TimeSlotTable.empty(50),
            [ServerSpec(0, 20, 8), ServerSpec(1, 20, 8)],
        )
        admitted = 0
        for i in range(50):
            state["counter"] += 1
            task = IOTask(
                name=f"t{state['counter']}",
                period=rng.choice([40, 80, 100, 200]),
                wcet=rng.randint(1, 6),
                vm_id=i % 2,
            )
            if controller.try_admit(task).admitted:
                admitted += 1
        return admitted

    admitted = benchmark(admit_batch)
    assert admitted > 0


def test_bench_noc_packet_rate(benchmark):
    """Event-network packets delivered per second (hotspot traffic)."""
    def run_network():
        sim = Simulator()
        network = NocNetwork(sim)
        nodes = [(x, y) for x in range(5) for y in range(5) if (x, y) != (4, 4)]
        for i, source in enumerate(nodes * 8):
            network.inject(
                Packet(
                    source=source,
                    destination=(4, 4),
                    kind=PacketKind.REQUEST,
                    payload_bytes=32,
                )
            )
        sim.run()
        return len(network.delivered)

    delivered = benchmark(run_network)
    assert delivered == 24 * 8
